"""Tests for priority assignment policies."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task, source_task
from repro.sched.priority import (
    assign_audsley,
    assign_deadline_monotonic,
    assign_rate_monotonic,
)
from repro.sched.response_time import SchedulabilityError, analyze_all
from repro.units import ms, us


def build_graph(periods_ms, ecu="e"):
    graph = CauseEffectGraph()
    graph.add_task(source_task("s", ms(10), ecu=ecu))
    prev = "s"
    for i, period in enumerate(periods_ms):
        name = f"t{i}"
        graph.add_task(Task(name, ms(period), us(100), us(10), ecu=ecu))
        graph.add_channel(prev, name)
        prev = name
    return graph


class TestRateMonotonic:
    def test_orders_by_period(self):
        graph = assign_rate_monotonic(build_graph([50, 10, 20]))
        priorities = {name: graph.task(name).priority for name in graph.task_names}
        # s has period 10 too; ties broken by name: "s" < "t1".
        assert priorities["s"] < priorities["t1"] < priorities["t2"] < priorities["t0"]

    def test_unique_per_unit(self):
        graph = assign_rate_monotonic(build_graph([10, 10, 10]))
        values = [graph.task(n).priority for n in graph.task_names]
        assert len(set(values)) == len(values)

    def test_unmapped_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(Task("a", ms(10), us(1), us(1)))
        with pytest.raises(ModelError):
            assign_rate_monotonic(graph)

    def test_per_unit_independence(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e1"))
        graph.add_task(Task("a", ms(10), us(1), us(1), ecu="e1"))
        graph.add_task(Task("b", ms(20), us(1), us(1), ecu="e2"))
        graph.add_channel("s", "a")
        graph.add_channel("a", "b")
        assigned = assign_rate_monotonic(graph)
        # b is alone on e2, so it gets level 0 there.
        assert assigned.task("b").priority == 0


class TestDeadlineMonotonic:
    def test_deadlines_override_periods(self):
        graph = build_graph([10, 20])
        assigned = assign_deadline_monotonic(
            graph, {"t0": ms(50), "t1": ms(1), "s": ms(100)}
        )
        assert assigned.task("t1").priority < assigned.task("t0").priority


class TestAudsley:
    def test_feasible_set_assigned(self):
        graph = build_graph([10, 20, 50])
        assigned = assign_audsley(graph)
        # Result must be schedulable.
        analyze_all(assigned.tasks)

    def test_priorities_unique(self):
        graph = build_graph([10, 20, 50])
        assigned = assign_audsley(graph)
        executing = [t for t in assigned.tasks if not t.is_instantaneous]
        values = [t.priority for t in executing]
        assert len(set(values)) == len(values)

    def test_rescues_non_rm_feasible_sets(self):
        # Non-preemptive schedulability is not RM-optimal; Audsley must
        # at least handle everything RM handles.
        graph = build_graph([10, 20])
        rm = assign_rate_monotonic(graph)
        analyze_all(rm.tasks)
        audsley = assign_audsley(graph)
        analyze_all(audsley.tasks)

    def test_infeasible_raises(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e"))
        graph.add_task(Task("a", ms(10), ms(6), ms(1), ecu="e"))
        graph.add_task(Task("b", ms(10), ms(6), ms(1), ecu="e"))
        graph.add_channel("s", "a")
        graph.add_channel("s", "b")
        with pytest.raises(SchedulabilityError):
            assign_audsley(graph)

"""Property-based tests for the extension modules (hypothesis)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gen.scenario import ScenarioConfig, generate_random_scenario
from repro.io import graph_from_dict, graph_to_dict
from repro.let import bcbt_lower_let, disparity_bound_let, wcbt_upper_let
from repro.model.chain import enumerate_source_chains
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.faults import FaultPlan
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.units import ms, seconds

scenario_params = st.tuples(
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=4, max_value=10),
)


def build_scenario(seed: int, n_tasks: int):
    rng = random.Random(seed)
    config = ScenarioConfig(n_ecus=1, use_bus=False)
    return generate_random_scenario(n_tasks, rng, config), rng


class TestLetProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_let_bounds_ordering(self, params):
        scenario, _ = build_scenario(*params)
        system = scenario.system
        for chain in enumerate_source_chains(system.graph, scenario.sink):
            lo = bcbt_lower_let(chain, system)
            hi = wcbt_upper_let(chain, system)
            assert 0 <= lo <= hi
            # Window width is exactly the sum of per-hop slacks:
            # T per non-source hop + T per source hop.
            hop_slack = sum(
                system.T(producer) for producer, _ in chain.edges()
            )
            assert hi - lo == hop_slack

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_let_simulation_sound(self, params):
        scenario, rng = build_scenario(*params)
        system = scenario.system
        bound = disparity_bound_let(system, scenario.sink)
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor([scenario.sink], warmup=seconds(2))
        simulate(variant, seconds(4), seed=params[0], observers=[monitor],
                 semantics="let")
        assert monitor.disparity(scenario.sink) <= bound


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_roundtrip_preserves_everything(self, params):
        scenario, _ = build_scenario(*params)
        graph = scenario.system.graph
        back = graph_from_dict(graph_to_dict(graph))
        assert tuple(back.task_names) == tuple(graph.task_names)
        for name in graph.task_names:
            assert back.task(name) == graph.task(name)
        assert [(c.src, c.dst, c.capacity) for c in back.channels] == [
            (c.src, c.dst, c.capacity) for c in graph.channels
        ]

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_roundtrip_preserves_analysis(self, params):
        from repro.core.disparity import disparity_bound

        scenario, _ = build_scenario(*params)
        original = scenario.system
        restored = System.build(graph_from_dict(graph_to_dict(original.graph)))
        assert disparity_bound(restored, scenario.sink) == disparity_bound(
            original, scenario.sink
        )


class TestFaultProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        params=scenario_params,
        window=st.tuples(
            st.integers(min_value=0, max_value=1_000),
            st.integers(min_value=1, max_value=2_000),
        ),
    )
    def test_dropouts_never_break_schedule_invariants(self, params, window):
        scenario, _ = build_scenario(*params)
        system = scenario.system
        start_ms, length_ms = window
        sources = list(system.graph.sources())
        plan = FaultPlan().drop(
            sources[0], ms(start_ms), ms(start_ms + length_ms)
        )
        table = JobTableMonitor()
        result = simulate(system, seconds(3), seed=params[0], faults=plan,
                          observers=[table])
        instantaneous = {
            t.name for t in system.graph.tasks if t.is_instantaneous
        }
        table.check_invariants(instantaneous)
        # Conservation: completed <= released; dropped jobs never run.
        assert result.stats.jobs_completed <= result.stats.jobs_released

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_dropout_only_raises_staleness(self, params):
        """A dropout can only make reads *older*, never fresher."""
        from repro.sim.faults import StalenessMonitor

        scenario, _ = build_scenario(*params)
        system = scenario.system
        source = system.graph.sources()[0]
        consumers = system.graph.successors(source)

        healthy = StalenessMonitor(consumers, warmup=seconds(1))
        simulate(system, seconds(3), seed=params[0], observers=[healthy])
        plan = FaultPlan().drop(source, seconds(1), seconds(2))
        faulty = StalenessMonitor(consumers, warmup=seconds(1))
        simulate(system, seconds(3), seed=params[0], faults=plan,
                 observers=[faulty])
        for consumer in consumers:
            h = healthy.age_for(consumer, source)
            f = faulty.age_for(consumer, source)
            if h is not None and f is not None:
                assert f >= h

"""Tests for the response-time analyses (hand-computed fixed points)."""

import pytest

from repro.model.task import ModelError, Task, source_task
from repro.sched.response_time import (
    SchedulabilityError,
    analyze_all,
    blocking_factor,
    higher_priority,
    is_schedulable,
    lower_priority,
    partition_by_unit,
    response_time_np_fp,
    response_time_p_fp,
)
from repro.units import ms


def task(name, period_ms, wcet_ms, priority, ecu="e", bcet_ms=None):
    bcet = ms(bcet_ms) if bcet_ms is not None else ms(wcet_ms)
    return Task(name, ms(period_ms), ms(wcet_ms), bcet, ecu=ecu, priority=priority)


class TestHelpers:
    def test_partition_excludes_sources(self):
        tasks = [source_task("s", ms(10), ecu="e", priority=0), task("a", 10, 1, 1)]
        by_unit = partition_by_unit(tasks)
        assert [t.name for t in by_unit["e"]] == ["a"]

    def test_partition_rejects_unmapped(self):
        with pytest.raises(ModelError):
            partition_by_unit([Task("a", ms(10), ms(1), ms(1))])

    def test_partition_rejects_missing_priority(self):
        with pytest.raises(ModelError):
            partition_by_unit([Task("a", ms(10), ms(1), ms(1), ecu="e")])

    def test_partition_rejects_duplicate_priorities(self):
        with pytest.raises(ModelError):
            partition_by_unit([task("a", 10, 1, 1), task("b", 10, 1, 1)])

    def test_hp_lp_sets(self):
        tasks = [task("a", 10, 1, 0), task("b", 20, 1, 1), task("c", 40, 1, 2)]
        assert [t.name for t in higher_priority(tasks[1], tasks)] == ["a"]
        assert [t.name for t in lower_priority(tasks[1], tasks)] == ["c"]

    def test_hp_ignores_other_units(self):
        a = task("a", 10, 1, 0, ecu="e1")
        b = task("b", 20, 1, 1, ecu="e2")
        assert higher_priority(b, [a, b]) == ()

    def test_blocking_factor(self):
        tasks = [task("a", 10, 1, 0), task("b", 20, 3, 1), task("c", 40, 5, 2)]
        assert blocking_factor(tasks[0], tasks) == ms(5)
        assert blocking_factor(tasks[2], tasks) == 0


class TestNonPreemptive:
    def test_highest_priority_alone(self):
        t = task("a", 10, 2, 0)
        assert response_time_np_fp(t, [t]) == ms(2)

    def test_highest_priority_with_blocking(self):
        # a (hp) blocked by the longest lower-priority job (c: 4ms),
        # then runs 2ms: R = 6ms.
        a = task("a", 20, 2, 0)
        c = task("c", 40, 4, 1)
        assert response_time_np_fp(a, [a, c]) == ms(6)

    def test_low_priority_interference(self):
        # b: blocking 0 (lowest), start delayed by one job of a per
        # 10ms window: s = 2, R = 2 + 3 = 5ms.
        a = task("a", 10, 2, 0)
        b = task("b", 20, 3, 1)
        assert response_time_np_fp(b, [a, b]) == ms(5)

    def test_middle_priority_blocking_and_interference(self):
        # b blocked by c (4ms), a interferes: s = 4 + (floor(s/10)+1)*2.
        # s=4 -> 4+2=6 -> 6: s=6, R = 6+3 = 9ms.
        a = task("a", 10, 2, 0)
        b = task("b", 20, 3, 1)
        c = task("c", 40, 4, 2)
        assert response_time_np_fp(b, [a, b, c]) == ms(9)

    def test_multiple_hp_jobs_in_window(self):
        # b blocked by c (9ms): s = 9 + (floor(s/10)+1)*2;
        # s=9 -> 9+2=11 -> 9+4=13 -> 13: R = 13+1 = 14ms.
        a = task("a", 10, 2, 0)
        b = task("b", 20, 1, 1)
        c = task("c", 40, 9, 2)
        assert response_time_np_fp(b, [a, b, c]) == ms(14)

    def test_source_task_zero(self):
        s = source_task("s", ms(10), ecu="e", priority=0)
        assert response_time_np_fp(s, [s, task("a", 10, 1, 1)]) == 0

    def test_unschedulable_raises(self):
        a = task("a", 10, 6, 0)
        b = task("b", 10, 6, 1)
        with pytest.raises(SchedulabilityError):
            response_time_np_fp(b, [a, b])

    def test_other_unit_ignored(self):
        a = task("a", 10, 5, 0, ecu="e1")
        b = task("b", 10, 5, 0, ecu="e2")
        assert response_time_np_fp(b, [a, b]) == ms(5)


class TestPreemptive:
    def test_classic_recurrence(self):
        # Joseph & Pandya example: R_b = 3 + ceil(R/10)*2:
        # 3 -> 5 -> 5: R = 5ms.
        a = task("a", 10, 2, 0)
        b = task("b", 20, 3, 1)
        assert response_time_p_fp(b, [a, b]) == ms(5)

    def test_no_blocking_term(self):
        # Preemptive: highest priority never blocked.
        a = task("a", 20, 2, 0)
        c = task("c", 40, 9, 1)
        assert response_time_p_fp(a, [a, c]) == ms(2)

    def test_unschedulable_raises(self):
        a = task("a", 10, 6, 0)
        b = task("b", 10, 6, 1)
        with pytest.raises(SchedulabilityError):
            response_time_p_fp(b, [a, b])


class TestAnalyzeAll:
    def test_table(self):
        tasks = [
            source_task("s", ms(10), ecu="e", priority=0),
            task("a", 10, 2, 1),
            task("b", 20, 3, 2),
        ]
        table = analyze_all(tasks)
        assert table["s"] == 0
        assert table["a"] == ms(5)  # blocked by b (3), then 2
        assert table["b"] == ms(5)  # s=2 (one job of a), +3

    def test_unknown_task_lookup(self):
        table = analyze_all([task("a", 10, 1, 0)])
        with pytest.raises(ModelError):
            table["ghost"]
        assert "a" in table

    def test_is_schedulable(self):
        good = [task("a", 10, 2, 0), task("b", 20, 3, 1)]
        bad = [task("a", 10, 6, 0), task("b", 10, 6, 1)]
        assert is_schedulable(good)
        assert not is_schedulable(bad)

    def test_np_blocking_can_exceed_preemptive(self):
        # The same set analyzed both ways: NP adds blocking for the
        # high-priority task.
        a = task("a", 20, 2, 0)
        c = task("c", 40, 9, 1)
        np_table = analyze_all([a, c])
        p_table = analyze_all([a, c], preemptive=True)
        assert np_table["a"] == ms(11) > p_table["a"] == ms(2)

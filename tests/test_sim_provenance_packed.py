"""Property-based equivalence: packed provenance == dict provenance.

The engine's fast path merges provenance as interned bitmask + stamp
arrays (:class:`repro.sim.provenance.ProvenancePacker`); these tests
pin it to the reference dict implementation (:func:`merge_provenance`)
over randomized inputs, including full simulated DAG runs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import generate_random_scenario
from repro.sim.engine import Simulator, randomize_offsets
from repro.sim.metrics import DisparityMonitor
from repro.sim.provenance import (
    ProvenancePacker,
    disparity_of,
    merge_provenance,
)
from repro.model.system import System

SOURCES = tuple(f"s{i}" for i in range(9))


@st.composite
def provenance_dicts(draw):
    """A random provenance mapping over the fixed source pool."""
    names = draw(
        st.lists(st.sampled_from(SOURCES), unique=True, max_size=len(SOURCES))
    )
    out = {}
    for name in names:
        lo = draw(st.integers(min_value=0, max_value=10**9))
        hi = lo + draw(st.integers(min_value=0, max_value=10**9))
        out[name] = (lo, hi)
    return out


@settings(max_examples=250, deadline=None)
@given(st.lists(provenance_dicts(), max_size=6))
def test_packed_merge_matches_dict_merge(parts):
    packer = ProvenancePacker(SOURCES)
    reference = merge_provenance(parts)
    packed = packer.merge(packer.pack(part) for part in parts)
    assert packer.unpack(packed) == reference
    assert packer.disparity(packed) == disparity_of(reference)


@settings(max_examples=250, deadline=None)
@given(provenance_dicts())
def test_pack_unpack_roundtrip(provenance):
    packer = ProvenancePacker(SOURCES)
    assert packer.unpack(packer.pack(provenance)) == provenance


@settings(max_examples=250, deadline=None)
@given(
    st.sampled_from(SOURCES),
    st.integers(min_value=0, max_value=10**12),
)
def test_source_token_packed(name, timestamp):
    packer = ProvenancePacker(SOURCES)
    assert packer.unpack(packer.source(name, timestamp)) == {
        name: (timestamp, timestamp)
    }


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
)
def test_dag_run_provenance_matches_reference_loop(seed, n_tasks):
    """Fast-path provenance on a random DAG run == classic-loop dicts.

    Runs the same scenario through the specialized engine (packed
    provenance) and the classic inlined loop (dict provenance) and
    compares every monitored token's provenance mapping.
    """
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    system = System(
        graph=graph, response_times=scenario.system.response_times
    )
    duration = 4 * max(task.period for task in graph.tasks)

    tokens = {}
    for loop in ("fast", "classic"):
        monitor = DisparityMonitor(track_pairs=True)
        Simulator(
            system, duration, seed=seed, observers=[monitor], loop=loop
        ).run()
        tokens[loop] = (
            monitor.max_disparity,
            monitor.samples,
            monitor.pair_max,
        )
    assert tokens["fast"] == tokens["classic"]

"""Equivalence of the batched replication engine with sequential runs.

``run_batch`` must be byte-identical to N independent ``simulate()``
calls under the same generator: per replication, an execution-time
seed is drawn first, then one offset in ``[1, T]`` per task in graph
order — exactly the ``AnalysisSession.observed_disparity`` discipline.
The suite pins that identity for the compiled loop (uniform and
WCET-pinned policies), the pure-python release-stream fallback (numpy
absent), and the per-replication simulator fallback (ineligible
scenarios).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.batch as batch_mod
from repro.api import AnalysisSession
from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.batch import BatchResult, CompiledScenario, run_batch
from repro.sim.metrics import DisparityMonitor


def _scenario(seed: int, n_tasks: int):
    scenario = generate_random_scenario(n_tasks, random.Random(seed))
    return scenario.system, scenario.sink


def _sequential(system, task, *, sims, duration, warmup, rng, policy):
    """The reference: N independent simulator runs, shared generator."""
    session = AnalysisSession(system)
    out = []
    for _ in range(sims):
        monitor = DisparityMonitor([task], warmup=warmup)
        session.simulate(
            duration,
            seed=rng.randrange(2**31),
            policy=policy,
            observers=[monitor],
            offsets_rng=rng,
        )
        out.append(monitor.disparity(task))
    return tuple(out)


def _assert_batch_matches(system, task, *, sims, duration, warmup, seed,
                          policy, engine=("columnar", "compiled")):
    """``engine`` names the acceptable tiers: auto-selection takes the
    columnar engine where numpy and the C kernel are available and the
    compiled loop otherwise, so batched-tier tests accept either."""
    result = run_batch(
        system,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        policy=policy,
    )
    expected = _sequential(
        system,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        policy=policy,
    )
    allowed = engine if isinstance(engine, tuple) else (engine,)
    assert result.engine in allowed
    assert result.disparities == expected
    assert result.max_disparity == max(expected, default=0)
    return result


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
    policy=st.sampled_from(["uniform", "wcet"]),
)
def test_batch_matches_sequential(seed, n_tasks, policy):
    system, sink = _scenario(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_batch_matches(
        system,
        sink,
        sims=3,
        duration=duration,
        warmup=duration // 4,
        seed=seed,
        policy=policy,
    )


def test_batch_pure_python_release_stream(monkeypatch):
    """The sorted()-based release stream (no numpy) is identical too."""
    system, sink = _scenario(77, 9)
    duration = 3 * max(task.period for task in system.graph.tasks)
    with_numpy = run_batch(
        system, sink, sims=4, duration=duration, rng=random.Random(5)
    )
    monkeypatch.setattr(batch_mod, "_np", None)
    without_numpy = run_batch(
        system, sink, sims=4, duration=duration, rng=random.Random(5)
    )
    assert without_numpy.engine == "compiled"
    assert without_numpy.disparities == with_numpy.disparities


def test_zero_bcet_replays_through_compiled_loop():
    """Zero-BCET scenarios are compiled-eligible via the cascade table.

    The compiled loop carries the same cascade-depth side table as the
    fast path's phase 2, so instantaneous finish-cascades order
    identically and the per-replication simulator fallback is no longer
    needed here.
    """
    system, sink = _scenario(13, 8)
    graph = system.graph.copy()
    victim = next(t for t in graph.tasks if not t.is_instantaneous)
    graph.replace_task(replace(victim, bcet=0))
    lowered = System(graph=graph, response_times=system.response_times)
    compiled = CompiledScenario(lowered, sink)
    assert compiled.eligible
    assert compiled.ineligible_reason is None
    duration = 2 * max(task.period for task in graph.tasks)
    for policy in ("uniform", "bcet"):
        _assert_batch_matches(
            lowered,
            sink,
            sims=3,
            duration=duration,
            warmup=0,
            seed=21,
            policy=policy,
        )


def test_ineligible_reason_collects_all_failed_rules():
    """Every failed eligibility rule is reported, not just the first."""
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(2), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(3), ms(1), ecu="e", priority=2))
    graph.add_task(Task("c", ms(20), ms(1), ms(1), ecu="f", priority=1))
    graph.add_channel("src", "a")
    graph.add_channel("a", "b")
    graph.add_channel("b", "c")
    built = System.build(graph)
    # Collide priorities *and* strip a unit assignment after analysis so
    # two independent rules fail at once (the analysis itself would
    # reject either graph, so surgery happens on the analyzed system).
    mangled = built.graph.copy()
    mangled.replace_task(replace(mangled.task("b"), priority=1))
    mangled.replace_task(replace(mangled.task("c"), ecu=None))
    system = System(graph=mangled, response_times=built.response_times)
    compiled = CompiledScenario(system, "c")
    assert not compiled.eligible
    assert len(compiled.ineligible_reasons) == 2
    assert any("no unit assignment" in r for r in compiled.ineligible_reasons)
    assert any(
        "duplicate priorities" in r for r in compiled.ineligible_reasons
    )
    joined = compiled.ineligible_reason
    for reason in compiled.ineligible_reasons:
        assert reason in joined


def test_ineligible_duplicate_priorities_falls_back_identically():
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(2), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(3), ms(1), ecu="e", priority=2))
    graph.add_channel("src", "a")
    graph.add_channel("a", "b")
    built = System.build(graph)
    # The response-time analysis itself rejects duplicate priorities,
    # so lower b's priority afterwards and keep the analyzed table
    # (the simulator never consults it).
    collided = built.graph.copy()
    collided.replace_task(replace(collided.task("b"), priority=1))
    system = System(graph=collided, response_times=built.response_times)
    compiled = CompiledScenario(system, "b")
    assert not compiled.eligible
    assert "duplicate priorities" in compiled.ineligible_reason
    _assert_batch_matches(
        system,
        "b",
        sims=3,
        duration=ms(200),
        warmup=ms(40),
        seed=3,
        policy="uniform",
        engine="simulator",
    )


def test_session_observed_batch_caches_compiled_scenario():
    system, sink = _scenario(42, 7)
    duration = 2 * max(task.period for task in system.graph.tasks)
    session = AnalysisSession(system)
    first = session.observed_batch(sink, sims=2, duration=duration, seed=1)
    compiled = session._compiled[(sink, "implicit")]
    second = session.observed_batch(sink, sims=2, duration=duration, seed=1)
    # reused, not recompiled
    assert session._compiled[(sink, "implicit")] is compiled
    assert first.disparities == second.disparities
    assert second.compile_s == 0.0
    assert session.observed_disparity(
        sink, sims=2, duration=duration, seed=1
    ) == first.max_disparity


def test_run_batch_validation():
    system, sink = _scenario(4, 6)
    with pytest.raises(ModelError):
        run_batch(system, sink, sims=-1, duration=10**9)
    other = next(
        t.name for t in system.graph.tasks if t.name != sink
    )
    compiled = CompiledScenario(system, sink)
    with pytest.raises(ModelError):
        run_batch(
            system, other, sims=1, duration=10**9, compiled=compiled
        )
    empty = run_batch(system, sink, sims=0, duration=10**9)
    assert empty.sims == 0
    assert empty.max_disparity == 0


def test_percentiles():
    result = BatchResult(
        task="t",
        disparities=(5, 1, 4, 2, 3),
        engine="compiled",
        compile_s=0.0,
        run_s=0.0,
    )
    assert result.percentile(0) == 1
    assert result.percentile(50) == 3
    assert result.percentile(100) == 5
    assert result.percentiles() == {"p50": 3, "p90": 5, "p99": 5, "max": 5}
    with pytest.raises(ModelError):
        result.percentile(101)
    empty = BatchResult(
        task="t", disparities=(), engine="compiled", compile_s=0.0, run_s=0.0
    )
    assert empty.percentile(90) == 0
    assert empty.max_disparity == 0

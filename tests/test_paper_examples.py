"""Tests that re-create the paper's running examples.

* Fig. 2's six-task cause-effect graph (two sources, fork-join around
  tau3 and tau6): chain enumeration and the Section III decomposition
  example ("the chains {t1,t3,t4,t6} and {t2,t3,t5,t6} ... can divide
  them into sub-chains {t1,t3}, {t3,t4,t6} and {t2,t3}, {t3,t5,t6}").
* Fig. 4's frequency-design observation: raising tau3's sampling
  frequency does *not* reduce the worst-case time disparity when the
  binding term is WCBT on the other chain against BCBT on tau3's chain.
"""

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound, worst_case_disparity
from repro.model.chain import Chain, decompose_pair, enumerate_source_chains
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import Task, source_task
from repro.units import ms, us


def build_fig2_graph() -> CauseEffectGraph:
    """The topology of the paper's Fig. 2 (timing values are ours)."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("t1", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("t2", ms(20), ecu="ecu0", priority=1))
    graph.add_task(Task("t3", ms(10), us(500), us(100), ecu="ecu0", priority=2))
    graph.add_task(Task("t4", ms(20), us(500), us(100), ecu="ecu0", priority=3))
    graph.add_task(Task("t5", ms(20), us(500), us(100), ecu="ecu0", priority=4))
    graph.add_task(Task("t6", ms(40), us(500), us(100), ecu="ecu0", priority=5))
    graph.add_channel("t1", "t3")
    graph.add_channel("t2", "t3")
    graph.add_channel("t3", "t4")
    graph.add_channel("t3", "t5")
    graph.add_channel("t4", "t6")
    graph.add_channel("t5", "t6")
    return graph


class TestFig2:
    def test_sources(self):
        graph = build_fig2_graph()
        assert set(graph.sources()) == {"t1", "t2"}

    def test_chain_enumeration(self):
        graph = build_fig2_graph()
        chains = enumerate_source_chains(graph, "t6")
        assert {chain.tasks for chain in chains} == {
            ("t1", "t3", "t4", "t6"),
            ("t1", "t3", "t5", "t6"),
            ("t2", "t3", "t4", "t6"),
            ("t2", "t3", "t5", "t6"),
        }

    def test_section3_decomposition_example(self):
        # Verbatim from the paper: common tasks t3 and t6; sub-chains
        # {t1,t3},{t3,t4,t6} and {t2,t3},{t3,t5,t6}.
        graph = build_fig2_graph()
        lam = Chain.of("t1", "t3", "t4", "t6")
        nu = Chain.of("t2", "t3", "t5", "t6")
        decomposition = decompose_pair(lam, nu, graph)
        assert decomposition.joints == ("t3", "t6")
        assert decomposition.alphas[0].tasks == ("t1", "t3")
        assert decomposition.alphas[1].tasks == ("t3", "t4", "t6")
        assert decomposition.betas[0].tasks == ("t2", "t3")
        assert decomposition.betas[1].tasks == ("t3", "t5", "t6")

    def test_fig3_pair_theorem2_not_worse(self):
        # The Fig. 3 pair: same source, common task t3.  Theorem 2 must
        # be no worse than Theorem 1 here (the paper's motivation).
        system = System.build(build_fig2_graph())
        cache = BackwardBoundsCache(system)
        from repro.core.pairwise import (
            disparity_bound_forkjoin,
            disparity_bound_independent,
        )

        lam = Chain.of("t1", "t3", "t5", "t6")
        nu = Chain.of("t1", "t3", "t4", "t6")
        s = disparity_bound_forkjoin(lam, nu, cache).bound
        p = disparity_bound_independent(lam, nu, cache).bound
        assert s <= p

    def test_task_level_bounds_safe_vs_simulation(self):
        import random

        from repro.sim.engine import randomize_offsets, simulate
        from repro.sim.metrics import DisparityMonitor
        from repro.units import seconds

        system = System.build(build_fig2_graph())
        s_diff = disparity_bound(system, "t6", method="forkjoin")
        rng = random.Random(42)
        for _ in range(3):
            graph = randomize_offsets(system.graph, rng)
            variant = System(graph=graph, response_times=system.response_times)
            monitor = DisparityMonitor(["t6"], warmup=seconds(1))
            simulate(variant, seconds(4), seed=rng.randrange(2**31),
                     observers=[monitor])
            assert monitor.disparity("t6") <= s_diff


def build_fig4_system(t3_period_ms: int) -> System:
    """A Fig. 4-style system where tau3's period is a design choice.

    Chain lam = (t1, t3, t5) is the fast camera path; chain
    nu = (t2, t4, t5) is the slow path whose WCBT dominates.  The
    worst-case disparity is driven by W(nu) - B(lam), and B(lam) does
    not depend on T(t3) — so raising tau3's frequency cannot help.
    """
    graph = CauseEffectGraph()
    graph.add_task(source_task("t1", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("t2", ms(30), ecu="ecu0", priority=1))
    graph.add_task(
        Task("t3", ms(t3_period_ms), us(500), us(100), ecu="ecu0", priority=2)
    )
    graph.add_task(Task("t4", ms(30), us(500), us(100), ecu="ecu0", priority=3))
    graph.add_task(Task("t5", ms(30), us(500), us(100), ecu="ecu0", priority=4))
    graph.add_channel("t1", "t3")
    graph.add_channel("t2", "t4")
    graph.add_channel("t3", "t5")
    graph.add_channel("t4", "t5")
    return System.build(graph)


class TestSection4OversamplingRemark:
    def test_two_thirds_of_tokens_never_propagate(self):
        """Section IV: "when T(tau3) = 10ms, two-thirds of input data
        tokens of tau3 may not propagate to the next task since tau5's
        period is 30ms" — measured on the register between them."""
        import random

        from repro.model.graph import CauseEffectGraph
        from repro.model.system import System
        from repro.sim.engine import Simulator
        from repro.sim.exec_time import wcet_policy
        from repro.units import seconds

        graph = CauseEffectGraph()
        graph.add_task(source_task("t1", ms(10), ecu="e", priority=0))
        graph.add_task(Task("t3", ms(10), us(500), us(100), ecu="e", priority=1))
        graph.add_task(Task("t5", ms(30), us(500), us(100), ecu="e", priority=2))
        graph.add_channel("t1", "t3")
        graph.add_channel("t3", "t5")
        system = System.build(graph)
        simulator = Simulator(system, seconds(3), policy=wcet_policy)
        simulator.run()
        channel = simulator.channel_state("t3", "t5")
        # Each write that evicts an unread token is a wasted sample;
        # with a 10ms producer and a 30ms consumer, 2 of every 3
        # tokens are overwritten before the consumer's next read...
        # the register sees ~300 writes and ~299 evictions (every
        # write after the first evicts); the *useful* fraction is the
        # consumer's read rate over the producer's write rate = 1/3.
        reads_per_write = (seconds(3) // ms(30)) / channel.writes
        assert reads_per_write == pytest.approx(1 / 3, rel=0.05)


class TestFig4FrequencyDesign:
    def test_raising_frequency_does_not_reduce_disparity(self):
        slow = build_fig4_system(30)
        fast = build_fig4_system(10)
        bound_slow = disparity_bound(slow, "t5", method="forkjoin")
        bound_fast = disparity_bound(fast, "t5", method="forkjoin")
        # The paper's counter-intuitive observation: the worst-case
        # time disparity does not improve.
        assert bound_fast == bound_slow

    def test_binding_term_is_cross_term(self):
        # Sanity: the dominating term is W(nu) - B(lam), which is
        # independent of T(t3).
        system = build_fig4_system(30)
        cache = BackwardBoundsCache(system)
        lam = Chain.of("t1", "t3", "t5")
        nu = Chain.of("t2", "t4", "t5")
        w_lam = cache.wcbt(lam)
        b_lam = cache.bcbt(lam)
        w_nu = cache.wcbt(nu)
        b_nu = cache.bcbt(nu)
        assert abs(w_nu - b_lam) > abs(w_lam - b_nu)

    def test_buffering_helps_where_frequency_does_not(self):
        # The paper's proposed alternative: buffer the slow chain's
        # counterpart (shift the early window) instead of raising
        # frequency.
        from repro.buffers.sizing import design_buffers_multi

        system = build_fig4_system(10)
        design = design_buffers_multi(system, "t5")
        assert design.bound_after < design.bound_before

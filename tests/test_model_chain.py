"""Tests for chains, enumeration, decomposition, and suffix truncation."""

import pytest

from repro.model.chain import (
    Chain,
    common_tasks,
    decompose_pair,
    enumerate_all_chains,
    enumerate_source_chains,
    truncate_common_suffix,
)
from repro.model.task import ModelError


class TestChainBasics:
    def test_of(self):
        chain = Chain.of("a", "b", "c")
        assert chain.head == "a"
        assert chain.tail == "c"
        assert len(chain) == 3

    def test_iteration_and_indexing(self):
        chain = Chain.of("a", "b", "c")
        assert list(chain) == ["a", "b", "c"]
        assert chain[1] == "b"
        assert chain.index("c") == 2

    def test_edges(self):
        assert Chain.of("a", "b", "c").edges() == (("a", "b"), ("b", "c"))

    def test_sub(self):
        assert Chain.of("a", "b", "c", "d").sub(1, 3).tasks == ("b", "c")

    def test_empty_sub_rejected(self):
        with pytest.raises(ModelError):
            Chain.of("a", "b").sub(1, 1)

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            Chain(())

    def test_repeated_task_rejected(self):
        with pytest.raises(ModelError):
            Chain.of("a", "b", "a")

    def test_singleton_chain(self):
        chain = Chain.of("a")
        assert chain.head == chain.tail == "a"

    def test_validate_against_graph(self, diamond_graph):
        Chain.of("s", "a", "m").validate(diamond_graph)
        with pytest.raises(ModelError):
            Chain.of("s", "m").validate(diamond_graph)

    def test_resolve(self, diamond_graph):
        tasks = Chain.of("s", "a").resolve(diamond_graph)
        assert [t.name for t in tasks] == ["s", "a"]


class TestEnumeration:
    def test_source_chains_to_sink(self, diamond_graph):
        chains = enumerate_source_chains(diamond_graph, "sink")
        assert len(chains) == 4
        assert all(chain.head == "s" and chain.tail == "sink" for chain in chains)

    def test_source_chains_to_middle(self, diamond_graph):
        chains = enumerate_source_chains(diamond_graph, "m")
        assert {chain.tasks for chain in chains} == {
            ("s", "a", "m"),
            ("s", "b", "m"),
        }

    def test_source_chain_of_source(self, diamond_graph):
        chains = enumerate_source_chains(diamond_graph, "s")
        assert chains == (Chain(("s",)),)

    def test_two_source_graph(self, two_source_graph):
        chains = enumerate_source_chains(two_source_graph, "fuse")
        assert {chain.tasks for chain in chains} == {
            ("cam", "fuse"),
            ("lidar", "fuse"),
        }

    def test_enumerate_all(self, merged_graph):
        chains = enumerate_all_chains(merged_graph)
        assert {chain.tasks for chain in chains} == {
            ("sa", "pa", "sink"),
            ("sb", "pb", "sink"),
        }


class TestCommonTasks:
    def test_excludes_sources_by_default(self, diamond_graph):
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        assert common_tasks(lam, nu, diamond_graph) == ("m", "sink")

    def test_includes_sources_on_request(self, diamond_graph):
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        assert common_tasks(lam, nu, diamond_graph, include_sources=True) == (
            "s",
            "m",
            "sink",
        )

    def test_disjoint_chains(self, merged_graph):
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        assert common_tasks(lam, nu, merged_graph) == ("sink",)


class TestDecomposition:
    def test_diamond_pair(self, diamond_graph):
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        decomposition = decompose_pair(lam, nu, diamond_graph)
        assert decomposition.joints == ("m", "sink")
        assert decomposition.c == 2
        assert decomposition.alphas[0].tasks == ("s", "a", "m")
        assert decomposition.betas[0].tasks == ("s", "b", "m")
        assert decomposition.alphas[1].tasks == ("m", "x", "sink")
        assert decomposition.betas[1].tasks == ("m", "y", "sink")

    def test_disjoint_pair_single_joint(self, merged_graph):
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        decomposition = decompose_pair(lam, nu, merged_graph)
        assert decomposition.joints == ("sink",)
        assert decomposition.alphas[0] == lam
        assert decomposition.betas[0] == nu

    def test_mismatched_tails_rejected(self, diamond_graph):
        with pytest.raises(ModelError):
            decompose_pair(
                Chain.of("s", "a", "m"),
                Chain.of("s", "b", "m", "x"),
                diamond_graph,
            )


class TestSuffixTruncation:
    def test_shared_suffix_cut(self):
        lam = Chain.of("sa", "a1", "m", "k", "sink")
        nu = Chain.of("sb", "b1", "m", "k", "sink")
        cut_lam, cut_nu, tail = truncate_common_suffix(lam, nu)
        assert tail == "m"
        assert cut_lam.tasks == ("sa", "a1", "m")
        assert cut_nu.tasks == ("sb", "b1", "m")

    def test_no_shared_suffix_beyond_tail(self):
        lam = Chain.of("sa", "a1", "sink")
        nu = Chain.of("sb", "b1", "sink")
        cut_lam, cut_nu, tail = truncate_common_suffix(lam, nu)
        assert tail == "sink"
        assert cut_lam == lam and cut_nu == nu

    def test_identical_chains_degenerate(self):
        lam = Chain.of("s", "a", "sink")
        cut_lam, cut_nu, tail = truncate_common_suffix(lam, lam)
        assert tail == "s"
        assert cut_lam.tasks == ("s",)
        assert cut_nu.tasks == ("s",)

    def test_diamond_not_truncated_through_divergence(self):
        # Shared suffix is only the sink; the diamond (x vs y) blocks
        # further truncation even though m is common.
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        cut_lam, cut_nu, tail = truncate_common_suffix(lam, nu)
        assert tail == "sink"
        assert cut_lam == lam

    def test_mismatched_tails_rejected(self):
        with pytest.raises(ModelError):
            truncate_common_suffix(Chain.of("a", "b"), Chain.of("a", "c"))

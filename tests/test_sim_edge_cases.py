"""Edge-case tests: multi-path provenance, horizon boundaries, combos."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.engine import Simulator, simulate
from repro.sim.exec_time import wcet_policy
from repro.sim.faults import FaultPlan
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.units import ms, us


class TestSameSourceMultiPath:
    """Section IV's counter-intuitive case: one sensor, two paths.

    An output can originate from two raw data of the *same* source
    that travelled through paths of different depths; the disparity of
    that output is the spread of the source's own timestamps.
    """

    def build(self) -> System:
        # s -> fast -> sink (1 hop) and s -> slow1 -> slow2 -> sink
        # (2 hops): the deep path delivers older samples.  slow2
        # deliberately outranks slow1, so within each period it runs
        # *before* its input stage and reads the previous sample —
        # with priorities aligned to the flow the whole pipeline would
        # complete within one period and both paths would deliver the
        # same sample (zero disparity).
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("fast", ms(10), ms(1), ms(1), ecu="e", priority=1))
        graph.add_task(Task("slow1", ms(10), ms(1), ms(1), ecu="e", priority=3))
        graph.add_task(Task("slow2", ms(10), ms(1), ms(1), ecu="e", priority=2))
        graph.add_task(Task("sink", ms(10), ms(1), ms(1), ecu="e", priority=4))
        graph.add_channel("s", "fast")
        graph.add_channel("s", "slow1")
        graph.add_channel("slow1", "slow2")
        graph.add_channel("fast", "sink")
        graph.add_channel("slow2", "sink")
        return System.build(graph)

    def test_same_source_disparity_observed(self):
        system = self.build()
        monitor = DisparityMonitor(["sink"], warmup=ms(60), track_pairs=True)
        simulate(system, ms(300), observers=[monitor], policy=wcet_policy)
        # The sink mixes a fresh and a 2-periods-older sample of s.
        assert monitor.disparity("sink") > 0
        assert monitor.disparity("sink") % ms(10) == 0  # multiple of T(s)
        # The same-source pair is where the disparity lives.
        assert monitor.pair_max[("sink", "s", "s")] == monitor.disparity("sink")

    def test_bound_covers_same_source_case(self):
        from repro.core.disparity import disparity_bound

        system = self.build()
        bound = disparity_bound(system, "sink", method="forkjoin")
        monitor = DisparityMonitor(["sink"], warmup=ms(60))
        simulate(system, ms(600), observers=[monitor], policy=wcet_policy)
        assert 0 < monitor.disparity("sink") <= bound
        # Shared source: the bound is floored to a multiple of T(s).
        assert bound % ms(10) == 0


class TestHorizonBoundaries:
    def build_simple(self) -> System:
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("t", ms(10), ms(2), ms(2), ecu="e", priority=1))
        graph.add_channel("s", "t")
        return System.build(graph)

    def test_release_exactly_at_horizon_processed(self):
        system = self.build_simple()
        monitor = JobTableMonitor()
        simulate(system, ms(20), observers=[monitor], policy=wcet_policy)
        # Releases at 0, 10, 20: the t=20 release is on the horizon and
        # its job starts at 20 but finishes at 22 > horizon -> only the
        # first two jobs complete.
        assert len(monitor.by_task("t")) == 2

    def test_job_finishing_after_horizon_not_reported(self):
        system = self.build_simple()
        monitor = JobTableMonitor()
        result = simulate(system, ms(11), observers=[monitor], policy=wcet_policy)
        # Job 0 finishes at 2 (reported); job 1 (released at 10) would
        # finish at 12 > horizon.
        assert len(monitor.by_task("t")) == 1
        assert result.stats.jobs_released >= result.stats.jobs_completed

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            simulate(self.build_simple(), -1)


class TestCombinations:
    def test_let_with_fifo_channel(self):
        # LET semantics and a buffered channel compose: the observed
        # backward time carries both the LET hop delay and the FIFO lag.
        from repro.let import bcbt_lower_let, wcbt_upper_let
        from repro.model.chain import Chain
        from repro.sim.metrics import BackwardTimeMonitor

        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("a", ms(10), ms(1), ms(1), ecu="e", priority=1))
        graph.add_task(Task("b", ms(10), ms(1), ms(1), ecu="e", priority=2))
        graph.add_channel("s", "a")
        graph.add_channel("a", "b")
        system = System.build(graph).with_channel_capacity("s", "a", 3)

        monitor = BackwardTimeMonitor(["b"], warmup=ms(100))
        simulate(system, ms(600), observers=[monitor], policy=wcet_policy,
                 semantics="let")
        observed = monitor.range_for("b", "s")
        chain = Chain.of("s", "a", "b")
        assert observed.samples > 0
        assert observed.lo >= bcbt_lower_let(chain, system)
        assert observed.hi <= wcbt_upper_let(chain, system)

    def test_let_with_faults(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1))
        graph.add_channel("s", "t")
        system = System.build(graph)
        plan = FaultPlan().drop("s", ms(50), ms(100))
        table = JobTableMonitor()
        result = simulate(system, ms(200), faults=plan, observers=[table],
                          semantics="let", policy=wcet_policy)
        assert result.stats.jobs_dropped == 5
        table.check_invariants({"s"})

    def test_channel_state_inspection(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1))
        graph.add_channel("s", "t")
        simulator = Simulator(System.build(graph), ms(50), policy=wcet_policy)
        simulator.run()
        state = simulator.channel_state("s", "t")
        assert state.writes == 6  # releases at 0..50 inclusive
        with pytest.raises(KeyError):
            simulator.channel_state("t", "s")

"""Differential suite for the columnar batch engine.

The columnar tier advances every replication's NP-FP schedule in one
C-kernel call and derives provenance/disparity columns in bulk, so its
correctness contract is strict equality with the tiers below it: for
any eligible scenario, ``run_batch(engine="columnar")`` must return the
same per-replication disparities as the compiled per-replication loop
(``engine="compiled"``), which in turn matches ``sims`` independent
``Simulator`` runs.  The suite pins that identity across implicit and
LET semantics, all four batchable policies, zero-BCET cascades, and
the fallback edges (unbatchable policies, ineligible scenarios, numpy
or C toolchain absent) — plus the jobs-invariance of campaign CSVs
with the columnar engine active underneath.

Columnar-only tests skip when the engine cannot run here (no numpy or
no C toolchain); the fallback-parity tests still run, which is exactly
the coverage the forced no-numpy CI leg relies on.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.batch as batch_mod
from repro.api import AnalysisSession
from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.batch import ADV_CACHE_SIZE, CompiledScenario, run_batch
from repro.sim.exec_time import per_task_policy, wcet_policy
from repro.sim.metrics import DisparityMonitor


def _columnar_available() -> bool:
    if batch_mod._np is None:
        return False
    from repro.sim import ckernel

    kernel, _why = ckernel.load_kernel()
    return kernel is not None


needs_columnar = pytest.mark.skipif(
    not _columnar_available(),
    reason="columnar engine unavailable (numpy or C toolchain missing)",
)


def _scenario(seed: int, n_tasks: int):
    scenario = generate_random_scenario(n_tasks, random.Random(seed))
    return scenario.system, scenario.sink


def _sequential(system, task, *, sims, duration, warmup, rng, policy,
                semantics="implicit"):
    """The ground truth: N independent simulator runs, shared generator."""
    session = AnalysisSession(system, semantics=semantics)
    out = []
    for _ in range(sims):
        monitor = DisparityMonitor([task], warmup=warmup)
        session.simulate(
            duration,
            seed=rng.randrange(2**31),
            policy=policy,
            observers=[monitor],
            offsets_rng=rng,
        )
        out.append(monitor.disparity(task))
    return tuple(out)


def _run(system, task, *, sims, duration, warmup, seed, policy,
         semantics="implicit", engine="auto"):
    return run_batch(
        system,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        policy=policy,
        semantics=semantics,
        engine=engine,
    )


@needs_columnar
@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
    policy=st.sampled_from(["uniform", "wcet", "bcet", "extremes"]),
)
def test_columnar_matches_compiled_and_simulator(seed, n_tasks, policy):
    system, sink = _scenario(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    shape = dict(
        sims=3, duration=duration, warmup=duration // 4, seed=seed,
        policy=policy,
    )
    columnar = _run(system, sink, engine="columnar", **shape)
    compiled = _run(system, sink, engine="compiled", **shape)
    simulator = _run(system, sink, engine="simulator", **shape)
    assert columnar.engine == "columnar"
    assert columnar.reason is None
    assert compiled.engine == "compiled"
    assert simulator.engine == "simulator"
    assert columnar.disparities == compiled.disparities
    assert columnar.disparities == simulator.disparities


@needs_columnar
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=10),
    policy=st.sampled_from(["uniform", "wcet", "extremes"]),
)
def test_columnar_let_matches_compiled_and_sequential(seed, n_tasks, policy):
    system, sink = _scenario(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    shape = dict(
        sims=3, duration=duration, warmup=duration // 4, seed=seed,
        policy=policy, semantics="let",
    )
    columnar = _run(system, sink, engine="columnar", **shape)
    compiled = _run(system, sink, engine="compiled", **shape)
    assert columnar.engine == "columnar"
    assert compiled.engine == "compiled"
    assert columnar.disparities == compiled.disparities
    expected = _sequential(
        system, sink, sims=3, duration=duration, warmup=duration // 4,
        rng=random.Random(seed), policy=policy, semantics="let",
    )
    assert columnar.disparities == expected


@needs_columnar
@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=10),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_columnar_zero_bcet_cascades(seed, n_tasks, semantics):
    """Instantaneous finish-cascades order identically in lockstep."""
    system, sink = _scenario(seed, n_tasks)
    graph = system.graph.copy()
    for task in graph.tasks:
        if not task.is_instantaneous:
            graph.replace_task(replace(task, bcet=0))
    lowered = System(graph=graph, response_times=system.response_times)
    duration = 2 * max(task.period for task in graph.tasks)
    for policy in ("uniform", "bcet"):
        shape = dict(
            sims=3, duration=duration, warmup=0, seed=seed, policy=policy,
            semantics=semantics,
        )
        columnar = _run(lowered, sink, engine="columnar", **shape)
        compiled = _run(lowered, sink, engine="compiled", **shape)
        assert columnar.disparities == compiled.disparities


def test_unbatchable_policy_falls_back_to_compiled():
    """Per-task policies (fault injection) keep the compiled tier."""
    system, sink = _scenario(31, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    hog = next(t.name for t in system.graph.tasks if not t.is_instantaneous)
    policy = per_task_policy({hog: wcet_policy})
    result = _run(
        system, sink, sims=3, duration=duration, warmup=0, seed=5,
        policy=policy,
    )
    assert result.engine == "compiled"
    # With numpy gated off (REPRO_NO_NUMPY leg) that shortfall is
    # reported before the policy is even examined.
    if batch_mod._np is not None:
        assert "not a batchable named policy" in (result.reason or "")
    else:
        assert "numpy unavailable" in (result.reason or "")
    expected = _sequential(
        system, sink, sims=3, duration=duration, warmup=0,
        rng=random.Random(5), policy=policy,
    )
    assert result.disparities == expected
    with pytest.raises(ModelError) as err:
        _run(
            system, sink, sims=3, duration=duration, warmup=0, seed=5,
            policy=policy, engine="columnar",
        )
    assert "columnar engine unavailable" in str(err.value)


def test_duplicate_priorities_fall_back_to_simulator():
    """Compiled-ineligible scenarios reach the simulator on auto, with
    the same results, and a forced columnar run refuses with reasons."""
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(2), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(3), ms(1), ecu="e", priority=2))
    graph.add_channel("src", "a")
    graph.add_channel("a", "b")
    built = System.build(graph)
    collided = built.graph.copy()
    collided.replace_task(replace(collided.task("b"), priority=1))
    system = System(graph=collided, response_times=built.response_times)
    auto = _run(
        system, "b", sims=3, duration=ms(200), warmup=ms(40), seed=3,
        policy="uniform",
    )
    assert auto.engine == "simulator"
    assert "duplicate priorities" in (auto.reason or "")
    expected = _sequential(
        system, "b", sims=3, duration=ms(200), warmup=ms(40),
        rng=random.Random(3), policy="uniform",
    )
    assert auto.disparities == expected
    with pytest.raises(ModelError) as err:
        _run(
            system, "b", sims=3, duration=ms(200), warmup=ms(40), seed=3,
            policy="uniform", engine="columnar",
        )
    assert "columnar engine unavailable" in str(err.value)
    assert "duplicate priorities" in str(err.value)


def test_unknown_engine_rejected():
    system, sink = _scenario(4, 6)
    with pytest.raises(ModelError):
        run_batch(system, sink, sims=1, duration=10**9, engine="warp")


@needs_columnar
def test_let_violation_parity_across_engines():
    """All three tiers raise the identical LET-violation ModelError."""
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("hog", ms(10), ms(2), ms(2), ecu="e", priority=1))
    graph.add_task(Task("late", ms(10), ms(2), ms(2), ecu="e", priority=2))
    graph.add_channel("src", "hog")
    graph.add_channel("hog", "late")
    built = System.build(graph)
    overloaded_graph = built.graph.copy()
    overloaded_graph.replace_task(
        replace(overloaded_graph.task("hog"), wcet=ms(9), bcet=ms(9))
    )
    overloaded = System(
        graph=overloaded_graph, response_times=built.response_times
    )
    messages = []
    for engine in ("columnar", "compiled", "simulator"):
        with pytest.raises(ModelError) as err:
            _run(
                overloaded, "late", sims=3, duration=ms(100), warmup=0,
                seed=9, policy="uniform", semantics="let", engine=engine,
            )
        messages.append(str(err.value))
    assert "LET violation" in messages[0]
    assert messages[0] == messages[1] == messages[2]


@needs_columnar
def test_adv_cache_aliasing_and_hits():
    """The columnar advance memo follows the ``_sched_cache`` rules:
    capacity-only siblings alias it, period edits start fresh, and a
    repeated batch at the same draws hits instead of re-advancing."""
    system, sink = _scenario(42, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    compiled = CompiledScenario(system, sink)
    assert compiled._adv_cache.maxsize == ADV_CACHE_SIZE
    first = run_batch(
        system, sink, sims=3, duration=duration, rng=random.Random(7),
        compiled=compiled, engine="columnar",
    )
    assert compiled._adv_cache.entries
    assert compiled._adv_cache.hits == 0
    again = run_batch(
        system, sink, sims=3, duration=duration, rng=random.Random(7),
        compiled=compiled, engine="columnar",
    )
    assert again.disparities == first.disparities
    assert compiled._adv_cache.hits == 1

    edge = next((c.src, c.dst) for c in system.graph.channels)
    capacity_view = compiled.edit(capacities={edge: 3})
    assert capacity_view.compiled._adv_cache is compiled._adv_cache
    victim = next(
        t for t in system.graph.tasks if not t.is_instantaneous
    )
    period_view = compiled.edit(periods={victim.name: victim.period * 2})
    assert period_view.compiled._adv_cache is not compiled._adv_cache


def test_no_numpy_falls_back_to_compiled(monkeypatch):
    system, sink = _scenario(77, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    reference = _run(
        system, sink, sims=3, duration=duration, warmup=0, seed=5,
        policy="uniform", engine="compiled",
    )
    monkeypatch.setattr(batch_mod, "_np", None)
    result = _run(
        system, sink, sims=3, duration=duration, warmup=0, seed=5,
        policy="uniform",
    )
    assert result.engine == "compiled"
    assert "numpy unavailable" in (result.reason or "")
    assert result.disparities == reference.disparities
    with pytest.raises(ModelError) as err:
        _run(
            system, sink, sims=3, duration=duration, warmup=0, seed=5,
            policy="uniform", engine="columnar",
        )
    assert "numpy unavailable" in str(err.value)


@pytest.mark.skipif(
    batch_mod._np is None,
    reason="needs numpy so the kernel is the only missing piece",
)
def test_no_ckernel_falls_back_to_compiled(monkeypatch):
    from repro.sim import columnar as columnar_mod

    system, sink = _scenario(78, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    reference = _run(
        system, sink, sims=3, duration=duration, warmup=0, seed=6,
        policy="uniform", engine="compiled",
    )
    monkeypatch.setattr(
        columnar_mod.ckernel, "load_kernel", lambda: (None, "cc missing")
    )
    result = _run(
        system, sink, sims=3, duration=duration, warmup=0, seed=6,
        policy="uniform",
    )
    assert result.engine == "compiled"
    assert "advance kernel unavailable" in (result.reason or "")
    assert result.disparities == reference.disparities


def test_campaign_csv_is_jobs_invariant():
    """Fig. 6 CSV bytes don't depend on the worker count with the
    columnar engine active underneath the campaign."""
    from repro.experiments.config import Fig6ABConfig
    from repro.experiments.fig6 import run_fig6_ab
    from repro.experiments.reporting import csv_ab
    from repro.units import seconds

    config = Fig6ABConfig(
        x_values=(5, 7),
        graphs_per_point=2,
        sims_per_graph=2,
        sim_duration=seconds(1),
        warmup=seconds(0.5),
        seed=7,
    )
    serial = csv_ab(run_fig6_ab(config))
    parallel = csv_ab(run_fig6_ab(config, jobs=2))
    assert serial == parallel

"""Property-based equivalence: BackwardBoundsTable == per-chain bounds.

The DAG-shared prefix DP (:class:`BackwardBoundsTable`) must reproduce
the per-chain Lemma 4/5 sums (:func:`backward_bounds`) exactly, for
every chain and sub-chain of randomly generated WATERS scenarios.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chains.backward import (
    BackwardBoundsCache,
    BackwardBoundsTable,
    backward_bounds,
)
from repro.core.disparity import worst_case_disparity
from repro.gen import generate_random_scenario
from repro.model.chain import Chain, enumerate_source_chains
from repro.model.task import ModelError


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=14),
)
def test_table_matches_per_chain_bounds(seed, n_tasks):
    """Every chain (and contiguous sub-chain) of a random WATERS graph."""
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    system, sink = scenario.system, scenario.sink
    table = BackwardBoundsTable(system)
    for chain in enumerate_source_chains(system.graph, sink):
        tasks = chain.tasks
        for i in range(len(tasks)):
            for j in range(i, len(tasks)):
                sub = Chain(tasks[i : j + 1])
                reference = backward_bounds(sub, system)
                shared = table.bounds(sub)
                assert shared.wcbt == reference.wcbt
                assert shared.bcbt == reference.bcbt


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    method=st.sampled_from(["independent", "forkjoin", "best"]),
)
def test_disparity_identical_with_table(seed, method):
    """End-to-end: theorems fed by the table give identical bounds."""
    rng = random.Random(seed)
    scenario = generate_random_scenario(rng.randint(5, 12), rng)
    system, sink = scenario.system, scenario.sink
    via_cache = worst_case_disparity(
        system, sink, method=method, cache=BackwardBoundsCache(system)
    )
    via_table = worst_case_disparity(system, sink, method=method)
    assert via_table.bound == via_cache.bound
    assert [p.bound for p in via_table.pair_results] == [
        p.bound for p in via_cache.pair_results
    ]


def test_table_rejects_non_chain():
    rng = random.Random(7)
    scenario = generate_random_scenario(8, rng)
    system = scenario.system
    names = system.graph.task_names
    # Two tasks with no channel between them (a sink never feeds back).
    sink = scenario.sink
    other = next(n for n in names if n != sink)
    table = BackwardBoundsTable(system)
    with pytest.raises(ModelError):
        table.bounds(Chain((sink, other)))


def test_table_register_warms_every_prefix():
    rng = random.Random(11)
    scenario = generate_random_scenario(10, rng)
    system, sink = scenario.system, scenario.sink
    table = BackwardBoundsTable(system)
    chains = enumerate_source_chains(system.graph, sink)
    table.register(chains)
    assert len(table) >= len(chains)

"""Tests for token provenance and the disparity metric."""

import pytest

from repro.sim.provenance import (
    Token,
    disparity_of,
    merge_provenance,
    pairwise_disparity_of,
    source_token,
)


class TestSourceToken:
    def test_fields(self):
        token = source_token("cam", 100)
        assert token.producer == "cam"
        assert token.produced_at == 100
        assert token.producer_release == 100
        assert token.provenance == {"cam": (100, 100)}


class TestMerge:
    def test_disjoint_sources(self):
        merged = merge_provenance([{"cam": (10, 10)}, {"lidar": (30, 30)}])
        assert merged == {"cam": (10, 10), "lidar": (30, 30)}

    def test_same_source_extremes(self):
        merged = merge_provenance([{"cam": (10, 20)}, {"cam": (5, 15)}])
        assert merged == {"cam": (5, 20)}

    def test_empty(self):
        assert merge_provenance([]) == {}
        assert merge_provenance([{}, {}]) == {}

    def test_merge_does_not_mutate_inputs(self):
        first = {"cam": (10, 10)}
        merge_provenance([first, {"cam": (0, 0)}])
        assert first == {"cam": (10, 10)}


class TestDisparity:
    def test_none_for_empty(self):
        assert disparity_of({}) is None

    def test_zero_for_single_timestamp(self):
        assert disparity_of({"cam": (10, 10)}) == 0

    def test_two_sources(self):
        assert disparity_of({"cam": (10, 10), "lidar": (40, 40)}) == 30

    def test_same_source_spread(self):
        # Two raw data items of one sensor via different paths count
        # (the counter-intuitive case of Section IV).
        assert disparity_of({"cam": (10, 50)}) == 40

    def test_global_extremes(self):
        provenance = {"cam": (10, 20), "lidar": (15, 60), "radar": (5, 8)}
        assert disparity_of(provenance) == 60 - 5


class TestPairwiseDisparity:
    def test_two_sources(self):
        provenance = {"cam": (10, 20), "lidar": (40, 50)}
        assert pairwise_disparity_of(provenance, "cam", "lidar") == 40
        assert pairwise_disparity_of(provenance, "lidar", "cam") == 40

    def test_same_source(self):
        assert pairwise_disparity_of({"cam": (10, 30)}, "cam", "cam") == 20

    def test_missing_source(self):
        assert pairwise_disparity_of({"cam": (10, 20)}, "cam", "lidar") is None

"""Tests for the task-level worst-case disparity analysis."""

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import (
    all_sink_disparities,
    check_disparity_requirement,
    disparity_bound,
    worst_case_disparity,
)
from repro.model.task import ModelError
from repro.units import ms


class TestWorstCaseDisparity:
    def test_diamond_sink(self, diamond_system):
        result = worst_case_disparity(diamond_system, "sink", method="independent")
        assert result.bound == ms(90)
        assert result.n_pairs == 6  # C(4, 2)
        assert result.worst_pair is not None

    def test_diamond_forkjoin(self, diamond_system):
        result = worst_case_disparity(diamond_system, "sink", method="forkjoin")
        assert result.bound == ms(90)

    def test_diamond_middle_task(self, diamond_system):
        # Chains into m: (s,a,m) and (s,b,m); S-diff = 30 (see pairwise
        # tests).
        assert disparity_bound(diamond_system, "m", method="forkjoin") == ms(30)

    def test_two_source_fusion(self, two_source_system):
        assert disparity_bound(two_source_system, "fuse") == ms(31)

    def test_source_task_zero(self, diamond_system):
        result = worst_case_disparity(diamond_system, "s")
        assert result.bound == 0
        assert result.n_pairs == 0

    def test_single_chain_task_zero(self, diamond_system):
        # a has exactly one chain (s,a): no pairs, no disparity.
        assert disparity_bound(diamond_system, "a") == 0

    def test_best_method_minimum(self, diamond_system):
        best = disparity_bound(diamond_system, "sink", method="best")
        independent = disparity_bound(diamond_system, "sink", method="independent")
        forkjoin = disparity_bound(diamond_system, "sink", method="forkjoin")
        assert best <= min(independent, forkjoin)

    def test_unknown_method_rejected(self, diamond_system):
        with pytest.raises(ModelError):
            disparity_bound(diamond_system, "sink", method="magic")

    def test_shared_cache_consistency(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        with_cache = disparity_bound(diamond_system, "sink", cache=cache)
        without = disparity_bound(diamond_system, "sink")
        assert with_cache == without

    def test_pair_results_recorded(self, diamond_system):
        result = worst_case_disparity(diamond_system, "sink", method="forkjoin")
        bounds = sorted(pair.bound for pair in result.pair_results)
        assert bounds[-1] == result.bound
        # The two truncated pairs come out at 30 ms.
        assert bounds[0] == ms(30)


class TestConvenience:
    def test_all_sink_disparities(self, merged_system):
        results = all_sink_disparities(merged_system)
        assert set(results) == {"sink"}
        assert results["sink"].bound == ms(102)

    def test_requirement_check(self, two_source_system):
        assert check_disparity_requirement(two_source_system, "fuse", ms(31))
        assert not check_disparity_requirement(two_source_system, "fuse", ms(30))

"""Tests for the discrete-event simulator semantics."""

import random

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.engine import Simulator, randomize_offsets, simulate
from repro.sim.exec_time import wcet_policy
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.units import ms


def build_system(tasks, edges):
    graph = CauseEffectGraph()
    for task in tasks:
        graph.add_task(task)
    for src, dst in edges:
        graph.add_channel(src, dst)
    return System.build(graph)


class TestReleasesAndCounts:
    def test_periodic_job_count(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0),
                Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1),
            ],
            [("s", "t")],
        )
        monitor = JobTableMonitor()
        result = simulate(system, ms(95), observers=[monitor], policy=wcet_policy)
        # Releases at 0, 10, ..., 90 = 10 jobs each.
        assert len(monitor.by_task("s")) == 10
        assert len(monitor.by_task("t")) == 10
        assert result.stats.jobs_released == 20

    def test_offsets_delay_first_release(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0, offset=ms(4)),
                Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1),
            ],
            [("s", "t")],
        )
        monitor = JobTableMonitor()
        simulate(system, ms(30), observers=[monitor], policy=wcet_policy)
        releases = [record.release for record in monitor.by_task("s")]
        assert releases == [ms(4), ms(14), ms(24)]


class TestScheduling:
    def test_priority_order_on_simultaneous_release(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=9),
                Task("hi", ms(10), ms(2), ms(2), ecu="e", priority=0),
                Task("lo", ms(10), ms(5), ms(5), ecu="e", priority=1),
            ],
            [("s", "hi"), ("s", "lo")],
        )
        monitor = JobTableMonitor()
        simulate(system, ms(19), observers=[monitor], policy=wcet_policy)
        hi = monitor.by_task("hi")
        lo = monitor.by_task("lo")
        assert [(j.start, j.finish) for j in hi] == [(0, ms(2)), (ms(10), ms(12))]
        assert [(j.start, j.finish) for j in lo] == [(ms(2), ms(7)), (ms(12), ms(17))]

    def test_non_preemption(self):
        # lo starts at 0; hi released at 1 must wait for lo to finish.
        system = build_system(
            [
                source_task("s", ms(20), ecu="e", priority=9),
                Task("hi", ms(20), ms(2), ms(2), ecu="e", priority=0, offset=ms(1)),
                Task("lo", ms(20), ms(5), ms(5), ecu="e", priority=1),
            ],
            [("s", "hi"), ("s", "lo")],
        )
        monitor = JobTableMonitor()
        simulate(system, ms(19), observers=[monitor], policy=wcet_policy)
        lo = monitor.by_task("lo")[0]
        hi = monitor.by_task("hi")[0]
        assert (lo.start, lo.finish) == (0, ms(5))
        assert (hi.start, hi.finish) == (ms(5), ms(7))

    def test_units_are_independent(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e1", priority=9),
                Task("a", ms(10), ms(5), ms(5), ecu="e1", priority=0),
                Task("b", ms(10), ms(5), ms(5), ecu="e2", priority=0),
            ],
            [("s", "a"), ("a", "b")],
        )
        monitor = JobTableMonitor()
        simulate(system, ms(9), observers=[monitor], policy=wcet_policy)
        # Both run [0,5] in parallel on their own units.
        assert monitor.by_task("a")[0].start == 0
        assert monitor.by_task("b")[0].start == 0

    def test_invariants_hold_on_random_system(self, rng):
        from repro.gen import generate_random_scenario

        scenario = generate_random_scenario(10, rng)
        monitor = JobTableMonitor()
        simulate(scenario.system, ms(500), seed=3, observers=[monitor])
        instantaneous = {
            t.name for t in scenario.system.graph.tasks if t.is_instantaneous
        }
        monitor.check_invariants(instantaneous)


class TestCommunication:
    def test_source_token_timestamp_is_release(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0, offset=ms(3)),
                Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1),
            ],
            [("s", "t")],
        )
        monitor = DisparityMonitor(["t"])
        simulator = Simulator(system, ms(25), observers=[monitor], policy=wcet_policy)
        simulator.run()
        token = simulator.channel_state("s", "t").read()
        assert token is not None
        assert token.provenance["s"][0] % ms(10) == ms(3)

    def test_write_at_finish_visible_to_same_time_start(self):
        # p finishes at t=3 and c starts at t=3: c must read p's token
        # (Definition 1 uses "no later than").
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0),
                Task("p", ms(10), ms(3), ms(3), ecu="e", priority=1),
                Task("c", ms(10), ms(1), ms(1), ecu="e", priority=2),
            ],
            [("s", "p"), ("p", "c")],
        )
        monitor = JobTableMonitor()
        disparity = DisparityMonitor(["c"])
        simulate(system, ms(9), observers=[monitor, disparity], policy=wcet_policy)
        c = monitor.by_task("c")[0]
        assert c.start == ms(3)
        assert disparity.samples.get("c", 0) == 1  # provenance present

    def test_reads_at_start_not_at_finish(self):
        # c starts at t=0 (higher priority than p); p's output at t=5
        # must NOT appear in c's first output.
        system = build_system(
            [
                source_task("s", ms(30), ecu="e", priority=9),
                Task("c", ms(30), ms(2), ms(2), ecu="e", priority=0),
                Task("p", ms(30), ms(3), ms(3), ecu="e", priority=1),
            ],
            [("s", "p"), ("p", "c")],
        )
        disparity = DisparityMonitor(["c"])
        simulate(system, ms(29), observers=[disparity], policy=wcet_policy)
        # c's only job starts at 0 with an empty input channel: no
        # provenance, so no disparity sample.
        assert disparity.samples.get("c", 0) == 0

    def test_register_overwrite_latest_wins(self):
        # Fast producer (10ms) into slow consumer (30ms): the consumer
        # reads the latest token, so observed backward time < 10ms + R.
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0),
                Task("slow", ms(30), ms(1), ms(1), ecu="e", priority=1),
            ],
            [("s", "slow")],
        )
        from repro.sim.metrics import BackwardTimeMonitor

        monitor = BackwardTimeMonitor(["slow"])
        simulate(system, ms(300), observers=[monitor], policy=wcet_policy)
        observed = monitor.range_for("slow", "s")
        assert observed.samples > 0
        assert observed.hi < ms(10)  # always reads a fresh token

    def test_fifo_lag_matches_lemma6(self):
        # Capacity-3 FIFO: in steady state the consumer reads data
        # exactly 2 producer periods older than a register would give.
        tasks = [
            source_task("s", ms(10), ecu="e", priority=0),
            Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1),
        ]
        register_system = build_system(tasks, [("s", "t")])
        fifo_system = register_system.with_channel_capacity("s", "t", 3)

        from repro.sim.metrics import BackwardTimeMonitor

        results = {}
        for label, system in (("reg", register_system), ("fifo", fifo_system)):
            monitor = BackwardTimeMonitor(["t"], warmup=ms(50))
            simulate(system, ms(300), observers=[monitor], policy=wcet_policy)
            results[label] = monitor.range_for("t", "s")
        assert results["fifo"].lo == results["reg"].lo + 2 * ms(10)
        assert results["fifo"].hi == results["reg"].hi + 2 * ms(10)


class TestPoliciesAndErrors:
    def test_bad_policy_rejected(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0),
                Task("t", ms(10), ms(1), ms(1), ecu="e", priority=1),
            ],
            [("s", "t")],
        )

        def rogue_policy(task, job_index, rng):
            return task.wcet + 1

        with pytest.raises(ModelError):
            simulate(system, ms(20), policy=rogue_policy)

    def test_zero_duration_rejected(self, two_source_system):
        with pytest.raises(ModelError):
            simulate(two_source_system, 0)

    def test_deterministic_given_seed(self, two_source_system):
        def run(seed):
            monitor = DisparityMonitor(["fuse"])
            simulate(two_source_system, ms(500), seed=seed, observers=[monitor])
            return monitor.disparity("fuse")

        assert run(7) == run(7)

    def test_utilization_stats(self):
        system = build_system(
            [
                source_task("s", ms(10), ecu="e", priority=0),
                Task("t", ms(10), ms(2), ms(2), ecu="e", priority=1),
            ],
            [("s", "t")],
        )
        result = simulate(system, ms(100), policy=wcet_policy)
        assert result.stats.utilization("e") == pytest.approx(0.2, abs=0.02)


class TestRandomizeOffsets:
    def test_offsets_in_range(self, diamond_graph, rng):
        shifted = randomize_offsets(diamond_graph, rng)
        for task in shifted.tasks:
            assert 1 <= task.offset <= task.period

    def test_original_untouched(self, diamond_graph, rng):
        randomize_offsets(diamond_graph, rng)
        assert all(task.offset == 0 for task in diamond_graph.tasks)

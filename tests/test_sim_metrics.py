"""Tests for the simulation metric observers."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import Task, source_task
from repro.sim.engine import simulate
from repro.sim.exec_time import (
    bcet_policy,
    extremes_policy,
    named_policy,
    per_task_policy,
    uniform_policy,
    wcet_policy,
)
from repro.sim.metrics import (
    BackwardTimeMonitor,
    DataAgeMonitor,
    DisparityMonitor,
    JobTableMonitor,
    ObservedRange,
)
from repro.model.task import ModelError
from repro.units import ms


def fusion_system():
    # The lidar offset desynchronizes the sensors: with all offsets at
    # zero the 10/30/30 ms periods align perfectly and the observed
    # disparity is identically zero.
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(30), ecu="e", priority=1, offset=ms(1)))
    graph.add_task(Task("fuse", ms(30), ms(2), ms(1), ecu="e", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


class TestDisparityMonitor:
    def test_records_max(self):
        monitor = DisparityMonitor(["fuse"])
        simulate(fusion_system(), ms(600), observers=[monitor], policy=wcet_policy)
        assert monitor.samples["fuse"] > 0
        assert 0 < monitor.disparity("fuse") <= ms(31)

    def test_warmup_skips_early_jobs(self):
        early = DisparityMonitor(["fuse"])
        late = DisparityMonitor(["fuse"], warmup=ms(500))
        simulate(
            fusion_system(), ms(600), observers=[early, late], policy=wcet_policy
        )
        assert late.samples["fuse"] < early.samples["fuse"]

    def test_unmonitored_task_zero(self):
        monitor = DisparityMonitor(["fuse"])
        simulate(fusion_system(), ms(100), observers=[monitor], policy=wcet_policy)
        assert monitor.disparity("cam") == 0

    def test_monitor_all_tasks(self):
        monitor = DisparityMonitor()
        simulate(fusion_system(), ms(100), observers=[monitor], policy=wcet_policy)
        # Source jobs have single-timestamp provenance: disparity 0.
        assert monitor.disparity("cam") == 0
        assert "fuse" in monitor.samples

    def test_pair_tracking(self):
        monitor = DisparityMonitor(["fuse"], track_pairs=True)
        simulate(fusion_system(), ms(600), observers=[monitor], policy=wcet_policy)
        key = ("fuse", "cam", "lidar")
        assert key in monitor.pair_max
        assert monitor.pair_max[key] == monitor.disparity("fuse")


class TestBackwardTimeMonitor:
    def test_range_within_analytical_bounds(self):
        from repro.chains.backward import bcbt_lower, wcbt_upper
        from repro.model.chain import Chain

        system = fusion_system()
        monitor = BackwardTimeMonitor(["fuse"], warmup=ms(60))
        simulate(system, ms(600), observers=[monitor], policy=wcet_policy)
        for source in ("cam", "lidar"):
            chain = Chain.of(source, "fuse")
            observed = monitor.range_for("fuse", source)
            assert observed.samples > 0
            assert observed.lo >= bcbt_lower(chain, system)
            assert observed.hi <= wcbt_upper(chain, system)

    def test_missing_pair_empty_range(self):
        monitor = BackwardTimeMonitor(["fuse"])
        observed = monitor.range_for("fuse", "ghost")
        assert observed.samples == 0
        assert observed.lo is None


class TestDataAgeMonitor:
    def test_age_bounded(self):
        from repro.chains.latency import max_data_age
        from repro.model.chain import Chain

        system = fusion_system()
        monitor = DataAgeMonitor(["fuse"], warmup=ms(60))
        simulate(system, ms(600), observers=[monitor], policy=wcet_policy)
        for source in ("cam", "lidar"):
            observed = monitor.range_for("fuse", source)
            assert observed.samples > 0
            assert observed.hi <= max_data_age(Chain.of(source, "fuse"), system)
            assert observed.lo >= 0  # age is never negative


class TestObservedRange:
    def test_add(self):
        observed = ObservedRange()
        for value in (5, -2, 9):
            observed.add(value)
        assert observed.lo == -2
        assert observed.hi == 9
        assert observed.samples == 3


class TestExecPolicies:
    def test_named_lookup(self):
        assert named_policy("uniform") is uniform_policy
        assert named_policy("wcet") is wcet_policy
        with pytest.raises(ModelError):
            named_policy("nope")

    def test_policy_ranges(self, rng):
        task = Task("t", ms(10), ms(5), ms(1), ecu="e", priority=0)
        for policy in (uniform_policy, wcet_policy, bcet_policy, extremes_policy):
            for index in range(20):
                value = policy(task, index, rng)
                assert task.bcet <= value <= task.wcet

    def test_extremes_only_endpoints(self, rng):
        task = Task("t", ms(10), ms(5), ms(1), ecu="e", priority=0)
        values = {extremes_policy(task, i, rng) for i in range(50)}
        assert values <= {task.bcet, task.wcet}
        assert len(values) == 2  # both endpoints show up

    def test_per_task_policy(self, rng):
        fast = Task("fast", ms(10), ms(5), ms(1), ecu="e", priority=0)
        slow = Task("slow", ms(10), ms(5), ms(1), ecu="e", priority=1)
        policy = per_task_policy({"fast": bcet_policy}, default=wcet_policy)
        assert policy(fast, 0, rng) == fast.bcet
        assert policy(slow, 0, rng) == slow.wcet

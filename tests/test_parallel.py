"""The parallel experiment engine: parity, chunking, checkpoint/resume.

The headline guarantee is determinism: because every Fig. 6 graph task
carries a pre-derived seed and results are collected in input order,
``jobs=1`` and ``jobs=N`` must produce byte-identical CSVs.  These
tests pin that guarantee at every layer — the generic pool map, the
campaign orchestration, and the rendered CSV text.
"""

from __future__ import annotations

import json
from functools import partial

import pytest

from repro.experiments.config import SMOKE_AB, SMOKE_CD
from repro.experiments.fig6 import (
    graph_tasks,
    run_fig6_ab,
    run_fig6_ab_timed,
    run_fig6_cd,
    run_graph_ab,
)
from repro.experiments.reporting import csv_ab, csv_cd
from repro.parallel import (
    CampaignCheckpoint,
    PoolRunner,
    config_fingerprint,
    default_chunk_size,
    resolve_jobs,
    run_campaign,
)
from repro.units import seconds

def _double(value: int) -> int:
    return 2 * value


TINY_AB = SMOKE_AB.scaled(
    x_values=(5, 8), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)
TINY_CD = SMOKE_CD.scaled(
    x_values=(4, 6), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)


class TestPoolEngine:
    def test_map_ordered_serial(self):
        config = TINY_AB
        tasks = graph_tasks(config)
        with PoolRunner(1) as pool:
            results, stats = pool.map_ordered(
                partial(run_graph_ab, config), tasks
            )
        assert [r.seed for r in results] == [t.seed for t in tasks]
        assert stats.n_items == len(tasks)
        assert stats.busy_s > 0.0
        assert stats.wall_s >= stats.busy_s * 0.5  # sanity, same process

    def test_map_ordered_parallel_matches_serial(self):
        config = TINY_AB
        tasks = graph_tasks(config)
        fn = partial(run_graph_ab, config)
        with PoolRunner(1) as pool:
            serial, _ = pool.map_ordered(fn, tasks)
        with PoolRunner(3, chunk_size=1) as pool:
            parallel, stats = pool.map_ordered(fn, tasks)

        def measured(result):
            # Everything except the wall-clock timing, which varies.
            return (result.n_tasks, result.graph_index, result.seed,
                    result.sim_ms, result.p_diff_ms, result.s_diff_ms)

        assert [measured(r) for r in serial] == [measured(r) for r in parallel]
        assert stats.jobs == 3
        assert stats.n_chunks == len(tasks)

    def test_completion_order_callback_covers_every_item(self):
        config = TINY_AB
        tasks = graph_tasks(config)
        seen = []
        with PoolRunner(2) as pool:
            results, _ = pool.map_ordered(
                partial(run_graph_ab, config),
                tasks,
                on_item=lambda index, result: seen.append(index),
            )
        assert sorted(seen) == list(range(len(tasks)))
        assert all(r is not None for r in results)

    def test_map_consume_streams_without_retaining(self):
        config = TINY_AB
        tasks = graph_tasks(config)
        seen = {}
        beats = []
        with PoolRunner(2) as pool:
            stats = pool.map_consume(
                partial(run_graph_ab, config),
                tasks,
                on_item=lambda i, r, elapsed: seen.setdefault(i, r),
                heartbeat=beats.append,
            )
        assert sorted(seen) == list(range(len(tasks)))
        assert all(seen[i].seed == t.seed for i, t in enumerate(tasks))
        assert stats.completed == len(tasks)
        assert beats and beats[-1].completed == len(tasks)

    def test_adaptive_chunks_stay_within_bounds(self):
        # Fast items with no explicit chunk_size: the adaptive sizer
        # may batch many per chunk but must cover every item exactly
        # once and report chunk extents.
        items = list(range(200))
        with PoolRunner(2) as pool:
            results, stats = pool.map_ordered(_double, items)
        assert results == [2 * i for i in items]
        assert stats.n_items == 200
        assert 1 <= stats.chunk_min <= stats.chunk_max
        assert stats.n_chunks >= 1

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 1) == 100
        assert default_chunk_size(100, 4) == 6
        assert default_chunk_size(2, 8) == 1  # never zero


class TestSeedDerivation:
    def test_seeds_fixed_per_task_regardless_of_filter(self):
        config = TINY_AB
        full = {(t.x, t.graph_index): t.seed for t in graph_tasks(config)}
        only_last = graph_tasks(config, x_values=(config.x_values[-1],))
        for task in only_last:
            assert full[(task.x, task.graph_index)] == task.seed

    def test_seeds_distinct(self):
        seeds = [t.seed for t in graph_tasks(SMOKE_AB)]
        assert len(set(seeds)) == len(seeds)


class TestCsvParity:
    def test_ab_jobs1_vs_jobs4_identical_csv(self):
        serial = csv_ab(run_fig6_ab(TINY_AB, jobs=1))
        parallel = csv_ab(run_fig6_ab(TINY_AB, jobs=4))
        assert serial == parallel

    def test_cd_jobs1_vs_jobs4_identical_csv(self):
        serial = csv_cd(run_fig6_cd(TINY_CD, jobs=1))
        parallel = csv_cd(run_fig6_cd(TINY_CD, jobs=4))
        assert serial == parallel


class TestTiming:
    def test_stage_breakdown_and_utilization(self):
        rows, timing = run_fig6_ab_timed(TINY_AB, jobs=2)
        assert len(rows) == len(TINY_AB.x_values)
        assert timing.wall_s > 0.0
        assert 0.0 < timing.utilization <= 1.0
        totals = timing.stage_totals()
        assert totals["simulate_s"] > 0.0
        report = timing.to_dict()
        assert [p["x"] for p in report["points"]] == list(TINY_AB.x_values)
        json.dumps(report)  # must be JSON-serializable as-is


class TestCheckpoint:
    def test_round_trip_resumes_every_point(self, tmp_path):
        path = str(tmp_path / "ab.ckpt.json")
        rows, first = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert first.resumed_points == 0
        again, second = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert again == rows
        assert second.resumed_points == len(TINY_AB.x_values)

    def test_partial_checkpoint_resumes_prefix(self, tmp_path):
        path = str(tmp_path / "ab.ckpt.json")
        rows, _ = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        # Drop the last record line, as if the run had been killed
        # between two appends.
        lines = open(path).read().splitlines(keepends=True)
        open(path, "w").writelines(lines[:-1])
        again, timing = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert again == rows
        assert timing.resumed_points == len(TINY_AB.x_values) - 1

    def test_torn_final_line_skipped_and_truncated(self, tmp_path):
        # A kill mid-append leaves a torn (newline-less) final line:
        # resume must keep every intact record, lose only the torn one,
        # and truncate it away so the log stays valid JSONL.
        path = str(tmp_path / "ab.ckpt.json")
        rows, _ = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        lines = open(path).read().splitlines(keepends=True)
        torn = lines[:-1] + [lines[-1][: len(lines[-1]) // 2].rstrip("\n")]
        open(path, "w").writelines(torn)
        again, timing = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert again == rows
        assert timing.resumed_points == len(TINY_AB.x_values) - 1
        for line in open(path).read().splitlines():
            json.loads(line)  # every surviving line parses

    def test_legacy_whole_json_checkpoint_invalidated(self, tmp_path):
        # The pre-JSONL format stored one whole JSON document; its
        # first line is not a matching header, so it loads as empty
        # and the run starts fresh instead of crashing.
        path = str(tmp_path / "ab.ckpt.json")
        legacy = {"fingerprint": "old", "order": ["5"], "rows": {"5": {}}}
        open(path, "w").write(json.dumps(legacy, indent=2) + "\n")
        rows, timing = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert timing.resumed_points == 0
        assert len(rows) == len(TINY_AB.x_values)

    def test_fully_resumed_campaign_reports_zero_utilization(self, tmp_path):
        # Every point resumed -> no graph ran -> utilization must be
        # 0.0, not a ZeroDivisionError from busy/(wall * jobs).
        path = str(tmp_path / "ab.ckpt.json")
        run_fig6_ab_timed(TINY_AB, checkpoint=path)
        _, timing = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert timing.resumed_points == len(TINY_AB.x_values)
        assert timing.utilization == 0.0
        json.dumps(timing.to_dict())

    def test_config_change_invalidates_checkpoint(self, tmp_path):
        path = str(tmp_path / "ab.ckpt.json")
        run_fig6_ab_timed(TINY_AB, checkpoint=path)
        changed = TINY_AB.scaled(seed=TINY_AB.seed + 1)
        _, timing = run_fig6_ab_timed(changed, checkpoint=path)
        assert timing.resumed_points == 0

    def test_corrupt_checkpoint_is_ignored(self, tmp_path):
        path = str(tmp_path / "ab.ckpt.json")
        open(path, "w").write("not json {")
        rows, timing = run_fig6_ab_timed(TINY_AB, checkpoint=path)
        assert timing.resumed_points == 0
        assert len(rows) == len(TINY_AB.x_values)

    def test_fingerprint_covers_part_and_config(self):
        assert config_fingerprint("ab", TINY_AB) != config_fingerprint(
            "cd", TINY_AB
        )
        assert config_fingerprint("ab", TINY_AB) != config_fingerprint(
            "ab", TINY_AB.scaled(graphs_per_point=3)
        )

    def test_store_survives_reload(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = CampaignCheckpoint(path, "fp")
        store.record(5, {"n_tasks": 5, "sim_ms": 1.0})
        store.close()
        fresh = CampaignCheckpoint(path, "fp")
        assert fresh.load() == 1
        assert fresh.completed(5) == {"n_tasks": 5, "sim_ms": 1.0}
        assert fresh.completed(8) is None


class TestCampaign:
    def test_unknown_part_rejected(self):
        with pytest.raises(ValueError):
            run_campaign("xy", TINY_AB)

    def test_progress_lines_cover_points_and_summary(self):
        lines = []
        run_campaign("ab", TINY_AB, progress=lines.append)
        assert len(lines) == len(TINY_AB.x_values) + 1
        assert "wall" in lines[-1]

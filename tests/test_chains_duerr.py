"""Tests for the scheduling-agnostic baseline bounds."""

import pytest

from repro.chains.backward import bcbt_lower, wcbt_upper
from repro.chains.duerr import (
    bcbt_lower_agnostic,
    bcbt_lower_trivial,
    wcbt_upper_agnostic,
)
from repro.model.chain import Chain
from repro.units import ms


class TestAgnosticWcbt:
    def test_sum_of_t_plus_r(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        # (T+R) per producer: s: 10+0, a: 10+2, m: 20+4, x: 20+5.
        assert wcbt_upper_agnostic(chain, diamond_system) == ms(71)

    def test_never_tighter_than_np_bound(self, diamond_system):
        for tasks in (
            ("s", "a", "m", "x", "sink"),
            ("s", "b", "m", "y", "sink"),
            ("s", "a", "m"),
        ):
            chain = Chain.of(*tasks)
            assert wcbt_upper_agnostic(chain, diamond_system) >= wcbt_upper(
                chain, diamond_system
            )

    def test_singleton(self, diamond_system):
        assert wcbt_upper_agnostic(Chain.of("s"), diamond_system) == 0

    def test_cross_unit_hops_equal(self):
        # On a fully distributed chain every hop is "different units",
        # so Lemma 4 degenerates to the agnostic bound.
        from repro.model.graph import CauseEffectGraph
        from repro.model.system import System
        from repro.model.task import Task, source_task

        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e0", priority=0))
        graph.add_task(Task("a", ms(10), ms(1), ms(1), ecu="e1", priority=0))
        graph.add_task(Task("b", ms(20), ms(1), ms(1), ecu="e2", priority=0))
        graph.add_channel("s", "a")
        graph.add_channel("a", "b")
        system = System.build(graph)
        chain = Chain.of("s", "a", "b")
        assert wcbt_upper_agnostic(chain, system) == wcbt_upper(chain, system)


class TestAgnosticBcbt:
    def test_matches_lemma5(self, diamond_system):
        # Lemma 5's proof does not use non-preemption.
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert bcbt_lower_agnostic(chain, diamond_system) == bcbt_lower(
            chain, diamond_system
        )

    def test_trivial_weaker(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert bcbt_lower_trivial(chain, diamond_system) <= bcbt_lower(
            chain, diamond_system
        )
        assert bcbt_lower_trivial(chain, diamond_system) == -diamond_system.R("sink")

    def test_trivial_singleton(self, diamond_system):
        assert bcbt_lower_trivial(Chain.of("s"), diamond_system) == 0

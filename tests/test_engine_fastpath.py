"""Equivalence of the two-phase fast path with the classic event loop.

Every observable of a run — job tables, stats counters, channel
states, disparity/backward-time/data-age metrics — must be identical
between ``loop="fast"`` (schedule-only phase + lazy data-flow
reconstruction) and ``loop="classic"`` (the reference inlined loop).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dataclasses import replace

from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.engine import Simulator, randomize_offsets
from repro.sim.exec_time import bcet_policy, extremes_policy, wcet_policy
from repro.sim.metrics import (
    BackwardTimeMonitor,
    DataAgeMonitor,
    DisparityMonitor,
    JobTableMonitor,
)


def _random_system(seed: int, n_tasks: int) -> System:
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    return System(graph=graph, response_times=scenario.system.response_times)


def _zero_bcet_system(seed: int, n_tasks: int) -> System:
    """A random system where some CPU tasks can execute in zero time.

    Response times depend on WCETs only, so the analyzed table carries
    over unchanged when BCETs are lowered.
    """
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    zeroed = graph.copy()
    hit = False
    for task in graph.tasks:
        if task.is_instantaneous:
            continue
        if not hit or rng.random() < 0.5:
            zeroed.replace_task(replace(task, bcet=0))
            hit = True
    return System(
        graph=zeroed, response_times=scenario.system.response_times
    )


def _run(system, duration, seed, loop, policy=None):
    job_table = JobTableMonitor()
    disparity = DisparityMonitor(warmup=duration // 4)
    backward = BackwardTimeMonitor()
    age = DataAgeMonitor()
    kwargs = {} if policy is None else {"policy": policy}
    sim = Simulator(
        system,
        duration,
        seed=seed,
        observers=[job_table, disparity, backward, age],
        loop=loop,
        **kwargs,
    )
    result = sim.run()
    return sim, result, job_table, disparity, backward, age


def _assert_equivalent(system, duration, seed, policy=None):
    fast = _run(system, duration, seed, "fast", policy)
    classic = _run(system, duration, seed, "classic", policy)
    sim_f, res_f, jobs_f, disp_f, back_f, age_f = fast
    sim_c, res_c, jobs_c, disp_c, back_c, age_c = classic

    # Stats counters.
    assert res_f.stats.jobs_released == res_c.stats.jobs_released
    assert res_f.stats.jobs_completed == res_c.stats.jobs_completed
    assert res_f.stats.events_processed == res_c.stats.events_processed
    assert res_f.stats.busy_time == res_c.stats.busy_time

    # Full job table, in notification order.
    assert jobs_f.jobs == jobs_c.jobs
    instantaneous = {
        task.name for task in system.graph.tasks if task.is_instantaneous
    }
    jobs_f.check_invariants(instantaneous)

    # Metrics.
    assert disp_f.max_disparity == disp_c.max_disparity
    assert disp_f.samples == disp_c.samples
    assert back_f.ranges.keys() == back_c.ranges.keys()
    for key in back_f.ranges:
        assert back_f.ranges[key] == back_c.ranges[key]
    for key in age_f.ranges:
        assert age_f.ranges[key] == age_c.ranges[key]

    # Channel states (lazily reconstructed on the fast path).
    for channel in system.graph.channels:
        state_f = sim_f.channel_state(channel.src, channel.dst)
        state_c = sim_c.channel_state(channel.src, channel.dst)
        assert state_f.writes == state_c.writes
        assert state_f.evictions == state_c.evictions
        snap_f, snap_c = state_f.snapshot(), state_c.snapshot()
        assert len(snap_f) == len(snap_c)
        for tok_f, tok_c in zip(snap_f, snap_c):
            assert tok_f.produced_at == tok_c.produced_at
            assert tok_f.producer == tok_c.producer
            assert tok_f.producer_release == tok_c.producer_release
            assert tok_f.provenance == tok_c.provenance
        state_f.validate_fifo_order()


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=14),
)
def test_fastpath_matches_classic_uniform(seed, n_tasks):
    system = _random_system(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fastpath_matches_classic_other_policies(seed):
    system = _random_system(seed, 8)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed, policy=wcet_policy)
    _assert_equivalent(system, duration, seed, policy=extremes_policy)


def test_fastpath_matches_classic_with_buffers():
    system = _random_system(123, 10)
    # Enlarge every channel into a small FIFO (Lemma 6 territory).
    plan = {
        (c.src, c.dst): 1 + (i % 3)
        for i, c in enumerate(system.graph.channels)
    }
    buffered = system.with_buffer_plan(plan)
    duration = 4 * max(task.period for task in buffered.graph.tasks)
    _assert_equivalent(buffered, duration, 123)


def test_loop_validation_happens_at_construction():
    """Misconfigured loop/semantics/faults combinations fail in __init__.

    LET is fast-path eligible (``loop="fast"`` works, ``"classic"``
    does not reconstruct LET data flow).  Fault plans compile to
    release tables, so faulted runs are fast-path eligible too; only
    the classic loop (arithmetic releases, no fault hook) rejects
    them.  Every rejection must fire at construction, before
    ``.run()``.
    """
    system = _random_system(5, 6)
    assert Simulator(system, 10**9, semantics="let")._resolved_loop == "fast"
    assert (
        Simulator(system, 10**9, semantics="let", loop="fast")._resolved_loop
        == "fast"
    )
    with pytest.raises(ModelError):
        Simulator(system, 10**9, semantics="let", loop="classic")
    from repro.sim.faults import FaultPlan

    task = next(t.name for t in system.graph.tasks)
    plan = FaultPlan().drop(task, 0, 10**8)
    assert Simulator(system, 10**9, faults=plan)._resolved_loop == "fast"
    assert (
        Simulator(system, 10**9, faults=plan, loop="fast")._resolved_loop
        == "fast"
    )
    with pytest.raises(ModelError):
        Simulator(system, 10**9, faults=plan, loop="classic")
    # Non-periodic release models follow the same rule.
    from repro.model.task import ReleaseModel

    jittered = system.graph.copy()
    for t in system.graph.tasks:
        jittered.replace_task(
            t.with_release_model(ReleaseModel.jittered(max(1, t.period // 8)))
        )
    jsys = System(graph=jittered, response_times=system.response_times)
    assert Simulator(jsys, 10**9, seed=1)._resolved_loop == "fast"
    with pytest.raises(ModelError):
        Simulator(jsys, 10**9, seed=1, loop="classic")


def test_auto_uses_fastpath_for_zero_bcet():
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(
        Task("s", period=ms(10), wcet=0, bcet=0, offset=ms(1), ecu="e", priority=2)
    )
    graph.add_task(
        Task(
            "t",
            period=ms(10),
            wcet=ms(2),
            bcet=0,
            offset=ms(2),
            ecu="e",
            priority=1,
        )
    )
    graph.add_channel("s", "t")
    system = System.build(graph)
    sim = Simulator(system, ms(100))
    assert sim._select_loop() == "fast"
    _assert_equivalent(system, ms(100), 7)
    # All-zero execution times: every CPU finish cascades at its own
    # release instant — the worst case for sub-instant ordering.
    _assert_equivalent(system, ms(100), 7, policy=bcet_policy)


def test_fastpath_cascade_chain_on_one_unit():
    """A same-unit chain of zero-BCET tasks with identical offsets.

    Under ``bcet_policy`` every job executes in zero time, so each
    release instant processes the whole chain as a cascade of
    finish-triggered dispatches; the sub-instant visibility keys must
    replay the classic loop's sub-batch order exactly.
    """
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(
        Task(
            "src",
            period=ms(5),
            wcet=0,
            bcet=0,
            offset=ms(1),
            ecu="e",
            priority=5,
        )
    )
    names = ["src"]
    for i, prio in enumerate((4, 1, 3, 2)):
        name = f"t{i}"
        graph.add_task(
            Task(
                name,
                period=ms(5),
                wcet=ms(1),
                bcet=0,
                offset=ms(1),
                ecu="e",
                priority=prio,
            )
        )
        graph.add_channel(names[-1], name)
        names.append(name)
    system = System.build(graph)
    for seed in (0, 1, 2):
        _assert_equivalent(system, ms(60), seed, policy=bcet_policy)
        _assert_equivalent(system, ms(60), seed)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
)
def test_fastpath_matches_classic_zero_bcet(seed, n_tasks):
    system = _zero_bcet_system(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed)
    # bcet_policy pins every draw to zero for the zeroed tasks,
    # maximizing same-instant cascades.
    _assert_equivalent(system, duration, seed, policy=bcet_policy)

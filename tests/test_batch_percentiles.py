"""Property tests: ``BatchResult.percentile`` vs a naive nearest-rank oracle.

The docstring contract is the nearest-rank definition: for ``n``
observations and ``0 < q <= 100``, the percentile is the value at rank
``max(1, ceil(q * n / 100))`` of the sorted disparities (``q = 0``
gives the minimum, the empty batch reports 0, and ties occupy one rank
each — never interpolated).  The oracle below restates that definition
as literally as possible — count-up-from-the-bottom over the sorted
list with exact ``Fraction`` arithmetic — so the production
implementation cannot share a bug with it.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.task import ModelError
from repro.sim.batch import BatchResult


def _naive_nearest_rank(values, q):
    """Smallest sorted value whose rank covers the ``q``-th percentile."""
    if not values:
        return 0
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    n = len(ordered)
    for rank in range(1, n + 1):
        # rank/n is the fraction of observations at or below this value.
        if Fraction(rank, n) >= Fraction(q) / 100:
            return ordered[rank - 1]
    return ordered[-1]


def _result(values):
    return BatchResult(
        task="t",
        disparities=tuple(values),
        engine="compiled",
        compile_s=0.0,
        run_s=0.0,
    )


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=50), max_size=30),
    q=st.one_of(
        st.integers(min_value=0, max_value=100),
        st.fractions(min_value=0, max_value=100),
        st.floats(
            min_value=0, max_value=100, allow_nan=False, allow_infinity=False
        ),
    ),
)
def test_percentile_matches_naive_nearest_rank(values, q):
    """Any q in [0, 100] (int, Fraction or float) matches the oracle.

    Small max_value forces ties; max_size=30 with q near rank
    boundaries exercises the ceil edge (the old ``int(q * n)``
    truncation bug lived exactly there, at non-integer q).
    """
    assert _result(values).percentile(q) == _naive_nearest_rank(values, q)


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=30
    )
)
def test_percentile_endpoints_and_monotonicity(values):
    result = _result(values)
    assert result.percentile(0) == min(values)
    assert result.percentile(100) == max(values)
    samples = [result.percentile(q) for q in range(0, 101, 5)]
    assert samples == sorted(samples)
    assert set(samples) <= set(values)


def test_percentile_ties_occupy_one_rank_each():
    # Five observations, three tied at 7: p20 is the single 1, and the
    # tied value answers every q in (20, 80].
    result = _result([7, 1, 7, 7, 9])
    assert result.percentile(20) == 1
    assert result.percentile(21) == 7
    assert result.percentile(80) == 7
    assert result.percentile(81) == 9


def test_percentile_fractional_q_rounds_up_to_next_rank():
    # n = 5: ranks change at exact multiples of 20.  q = 20.0 still
    # maps to rank 1; any epsilon above needs rank 2 (this is where
    # truncating q before the ceil-division went wrong).
    result = _result([10, 20, 30, 40, 50])
    assert result.percentile(20) == 10
    assert result.percentile(20.1) == 20
    assert result.percentile(Fraction(201, 10)) == 20
    assert result.percentile(40.00001) == 30


def test_percentile_empty_and_out_of_range():
    empty = _result([])
    assert empty.percentile(0) == 0
    assert empty.percentile(50) == 0
    assert empty.percentile(100) == 0
    loaded = _result([1, 2])
    for bad in (-1, 100.5, 101):
        with pytest.raises(ModelError):
            loaded.percentile(bad)


def test_percentiles_summary_uses_same_ranks():
    result = _result(list(range(1, 101)))
    assert result.percentiles() == {
        "p50": 50,
        "p90": 90,
        "p99": 99,
        "max": 100,
    }

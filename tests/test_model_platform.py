"""Tests for the platform model and message-task insertion."""

import random

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.platform import (
    DEFAULT_FRAME_TIME,
    Platform,
    ProcessingUnit,
    assign_random,
    assign_round_robin,
    insert_message_tasks,
)
from repro.model.task import ModelError, Task, source_task
from repro.units import ms, us


def cross_ecu_graph() -> CauseEffectGraph:
    graph = CauseEffectGraph()
    graph.add_task(source_task("s", ms(10), ecu="ecu0"))
    graph.add_task(Task("a", ms(10), us(10), us(1), ecu="ecu0"))
    graph.add_task(Task("b", ms(20), us(10), us(1), ecu="ecu1"))
    graph.add_channel("s", "a")
    graph.add_channel("a", "b")
    return graph


class TestPlatform:
    def test_symmetric(self):
        platform = Platform.symmetric(3)
        assert len(platform.ecus) == 3
        assert len(platform.buses) == 1
        assert platform.buses[0].name == "can0"

    def test_symmetric_no_bus(self):
        platform = Platform.symmetric(2, bus=False)
        assert platform.buses == ()

    def test_single_ecu(self):
        platform = Platform.single_ecu()
        assert len(platform.ecus) == 1

    def test_unit_lookup(self):
        platform = Platform.symmetric(2)
        assert platform.unit("ecu1").name == "ecu1"
        assert "ecu0" in platform
        with pytest.raises(ModelError):
            platform.unit("nope")

    def test_duplicate_units_rejected(self):
        with pytest.raises(ModelError):
            Platform((ProcessingUnit("x"), ProcessingUnit("x")))

    def test_bus_only_rejected(self):
        with pytest.raises(ModelError):
            Platform((ProcessingUnit("can0", is_bus=True),))

    def test_zero_ecus_rejected(self):
        with pytest.raises(ModelError):
            Platform.symmetric(0)

    def test_empty_unit_name_rejected(self):
        with pytest.raises(ModelError):
            ProcessingUnit("")


class TestMessageInsertion:
    def test_cross_ecu_edge_gets_message(self):
        platform = Platform.symmetric(2)
        deployed = insert_message_tasks(cross_ecu_graph(), platform)
        assert "msg_a__b" in deployed
        message = deployed.task("msg_a__b")
        assert message.ecu == "can0"
        assert message.period == ms(10)  # producer's period
        assert message.wcet == DEFAULT_FRAME_TIME
        assert deployed.has_channel("a", "msg_a__b")
        assert deployed.has_channel("msg_a__b", "b")
        assert not deployed.has_channel("a", "b")

    def test_same_ecu_edge_untouched(self):
        platform = Platform.symmetric(2)
        deployed = insert_message_tasks(cross_ecu_graph(), platform)
        assert deployed.has_channel("s", "a")

    def test_message_priorities_rate_monotonic(self):
        graph = cross_ecu_graph()
        graph.add_task(Task("c", ms(50), us(10), us(1), ecu="ecu1"))
        graph.add_channel("a", "c")
        platform = Platform.symmetric(2)
        deployed = insert_message_tasks(graph, platform)
        # Both messages have period 10ms (producer a); ties broken by
        # name, priorities unique.
        p1 = deployed.task("msg_a__b").priority
        p2 = deployed.task("msg_a__c").priority
        assert p1 != p2
        assert {p1, p2} == {0, 1}

    def test_buffered_channel_capacity_preserved_on_receive_hop(self):
        graph = cross_ecu_graph()
        graph.set_channel_capacity("a", "b", 3)
        deployed = insert_message_tasks(graph, Platform.symmetric(2))
        assert deployed.channel("a", "msg_a__b").capacity == 1
        assert deployed.channel("msg_a__b", "b").capacity == 3

    def test_unmapped_task_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10)))
        graph.add_task(Task("a", ms(10), us(10), us(1), ecu="ecu0"))
        graph.add_channel("s", "a")
        with pytest.raises(ModelError):
            insert_message_tasks(graph, Platform.symmetric(2))

    def test_no_bus_rejected(self):
        with pytest.raises(ModelError):
            insert_message_tasks(
                cross_ecu_graph(), Platform.symmetric(2, bus=False)
            )

    def test_explicit_unknown_bus_rejected(self):
        with pytest.raises(ModelError):
            insert_message_tasks(
                cross_ecu_graph(), Platform.symmetric(2), bus="can9"
            )


class TestAssignment:
    def test_round_robin_maps_everything(self, diamond_graph):
        # Strip the conftest mapping first.
        for task in diamond_graph.tasks:
            diamond_graph.replace_task(task.with_mapping("ecu0"))
        mapped = assign_round_robin(diamond_graph, Platform.symmetric(2))
        assert all(task.ecu in ("ecu0", "ecu1") for task in mapped.tasks)

    def test_random_colocates_sources(self, diamond_graph):
        rng = random.Random(1)
        mapped = assign_random(diamond_graph, Platform.symmetric(3), rng)
        source_ecu = mapped.task("s").ecu
        first_successor_ecus = {mapped.task(n).ecu for n in mapped.successors("s")}
        assert source_ecu in first_successor_ecus

    def test_random_is_deterministic_per_seed(self, diamond_graph):
        mapped1 = assign_random(diamond_graph, Platform.symmetric(3), random.Random(5))
        mapped2 = assign_random(diamond_graph, Platform.symmetric(3), random.Random(5))
        assert [t.ecu for t in mapped1.tasks] == [t.ecu for t in mapped2.tasks]

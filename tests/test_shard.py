"""Sharded campaign execution: partition, resume, byte-identical merge.

The headline property (satellite of the sharding tentpole) is that for
*any* shard count and *any* order of the shard result files, the merged
rows render to CSV text byte-identical to a serial ``--jobs 1`` run —
under implicit **and** LET semantics.  The hypothesis test below checks
exactly that: per-graph results are computed once (they are pure
functions of ``(config, seed)``), re-partitioned into synthesized shard
files for the drawn shard count, permuted, merged, and compared to the
serial bytes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import SMOKE_AB
from repro.experiments.fig6 import AB_PART
from repro.parallel import (
    ShardSpec,
    config_fingerprint,
    merge_shards,
    run_campaign,
    run_shard,
)
from repro.parallel.shard import SHARD_FORMAT
from repro.units import seconds

TINY = SMOKE_AB.scaled(
    x_values=(5, 8), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)
CONFIGS = {"implicit": TINY, "let": TINY.scaled(semantics="let")}


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(0, 0)
        with pytest.raises(ValueError):
            ShardSpec(3, 3)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)

    def test_parse_round_trip(self):
        spec = ShardSpec.parse("2/5")
        assert spec == ShardSpec(2, 5)
        assert str(spec) == "2/5"
        assert ShardSpec.parse(" 0/1 ") == ShardSpec(0, 1)

    def test_parse_rejects_garbage(self):
        for bad in ("", "2", "2/", "/3", "a/b", "1/2/3", "-1/2"):
            with pytest.raises(ValueError):
                ShardSpec.parse(bad)

    @given(
        shard_count=st.integers(min_value=1, max_value=64),
        ordinal=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_ordinal_owned_by_exactly_one_shard(
        self, shard_count, ordinal
    ):
        owners = [
            index
            for index in range(shard_count)
            if ShardSpec(index, shard_count).owns(ordinal)
        ]
        assert len(owners) == 1


@pytest.fixture(scope="module")
def baselines(tmp_path_factory):
    """Per-semantics serial CSV bytes + the full per-graph record set.

    Graphs are pure functions of ``(config, seed)``, so one shard run
    at ``0/1`` yields the records every other partition would produce;
    the hypothesis test re-partitions them instead of re-simulating.
    """
    out = {}
    root = tmp_path_factory.mktemp("shards")
    for semantics, config in CONFIGS.items():
        rows, _ = run_campaign(AB_PART, config, jobs=1)
        path = root / f"all-{semantics}.jsonl"
        run_shard(AB_PART, config, ShardSpec(0, 1), str(path))
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines[1:]]
        out[semantics] = {
            "csv": AB_PART.to_csv(rows),
            "records": sorted(records, key=lambda r: r["ordinal"]),
        }
    return out


def _write_shard_file(
    path: Path, config, shard: ShardSpec, records, rng
) -> None:
    header = {
        "format": SHARD_FORMAT,
        "part": AB_PART.name,
        "fingerprint": config_fingerprint(AB_PART.name, config),
        "shard_index": shard.shard_index,
        "shard_count": shard.shard_count,
    }
    owned = [r for r in records if shard.owns(r["ordinal"])]
    rng.shuffle(owned)  # record order within a file must not matter
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in owned:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class TestMergeParity:
    @settings(max_examples=20, deadline=None)
    @given(
        semantics=st.sampled_from(("implicit", "let")),
        shard_count=st.integers(min_value=1, max_value=5),
        order_seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    def test_any_shard_count_and_order_matches_serial_bytes(
        self, baselines, tmp_path_factory, semantics, shard_count, order_seed,
        data,
    ):
        import random

        config = CONFIGS[semantics]
        base = baselines[semantics]
        rng = random.Random(order_seed)
        root = tmp_path_factory.mktemp("merge")
        paths = []
        for index in range(shard_count):
            path = root / f"s{index}.jsonl"
            _write_shard_file(
                path, config, ShardSpec(index, shard_count),
                base["records"], rng,
            )
            paths.append(str(path))
        permuted = data.draw(st.permutations(paths))
        merged = merge_shards(AB_PART, config, permuted)
        assert AB_PART.to_csv(merged) == base["csv"]

    def test_real_shard_runs_merge_to_serial_bytes(
        self, baselines, tmp_path
    ):
        # End to end with actual run_shard executions, not synthesized
        # files, under both semantics.
        for semantics, config in CONFIGS.items():
            paths = []
            for index in range(3):
                path = str(tmp_path / f"{semantics}-{index}.jsonl")
                report = run_shard(
                    AB_PART, config, ShardSpec(index, 3), path
                )
                assert report.n_run == report.n_owned
                paths.append(path)
            merged = merge_shards(AB_PART, config, list(reversed(paths)))
            assert AB_PART.to_csv(merged) == baselines[semantics]["csv"]


class TestShardResume:
    def test_torn_shard_file_resumes_and_merges(self, baselines, tmp_path):
        config = CONFIGS["implicit"]
        paths = []
        for index in range(2):
            path = str(tmp_path / f"s{index}.jsonl")
            run_shard(AB_PART, config, ShardSpec(index, 2), path)
            paths.append(path)
        # Tear the last record of shard 0 mid-line, as a kill would.
        lines = open(paths[0]).read().splitlines(keepends=True)
        torn = lines[:-1] + [lines[-1][: len(lines[-1]) // 2].rstrip("\n")]
        open(paths[0], "w").writelines(torn)
        report = run_shard(AB_PART, config, ShardSpec(0, 2), paths[0])
        assert report.n_resumed == report.n_owned - 1
        assert report.n_run == 1
        merged = merge_shards(AB_PART, config, paths)
        assert AB_PART.to_csv(merged) == baselines["implicit"]["csv"]

    def test_complete_shard_rerun_is_a_no_op(self, tmp_path):
        config = CONFIGS["implicit"]
        path = str(tmp_path / "s0.jsonl")
        first = run_shard(AB_PART, config, ShardSpec(0, 2), path)
        again = run_shard(AB_PART, config, ShardSpec(0, 2), path)
        assert first.n_run == first.n_owned
        assert again.n_resumed == again.n_owned
        assert again.n_run == 0


class TestMergeValidation:
    def test_missing_shard_named_in_error(self, tmp_path):
        config = CONFIGS["implicit"]
        path = str(tmp_path / "s0.jsonl")
        run_shard(AB_PART, config, ShardSpec(0, 3), path)
        with pytest.raises(ValueError) as err:
            merge_shards(AB_PART, config, [path])
        message = str(err.value)
        # The error attributes every missing ordinal to the shard that
        # owns it and says no file was supplied for those shards.
        assert "merge incomplete" in message
        assert "ordinal(s) 1" in message
        assert "ordinal(s) 2" in message
        assert "no file supplied for shard 1/3" in message
        assert "no file supplied for shard 2/3" in message

    def test_partial_file_named_with_its_missing_ordinals(self, tmp_path):
        # Regression: a shard file that is present but lost records must
        # be named as the expected owner of the missing ordinals, not
        # just summarized as "shard absent or partial".
        config = CONFIGS["implicit"]
        paths = []
        for index in range(2):
            path = str(tmp_path / f"s{index}.jsonl")
            run_shard(AB_PART, config, ShardSpec(index, 2), path)
            paths.append(path)
        lines = open(paths[1]).read().splitlines(keepends=True)
        dropped = json.loads(lines[-1])["ordinal"]
        open(paths[1], "w").writelines(lines[:-1])
        with pytest.raises(ValueError) as err:
            merge_shards(AB_PART, config, paths)
        message = str(err.value)
        assert f"ordinal(s) {dropped}" in message
        assert f"expected in {paths[1]} (file present but partial)" in message

    def test_disagreeing_shard_counts_rejected(self, tmp_path):
        config = CONFIGS["implicit"]
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        run_shard(AB_PART, config, ShardSpec(0, 2), a)
        run_shard(AB_PART, config, ShardSpec(0, 3), b)
        with pytest.raises(ValueError, match="disagrees"):
            merge_shards(AB_PART, config, [a, b])

    def test_foreign_config_file_rejected(self, tmp_path):
        config = CONFIGS["implicit"]
        other = config.scaled(seed=config.seed + 1)
        path = str(tmp_path / "other.jsonl")
        run_shard(AB_PART, other, ShardSpec(0, 1), path)
        with pytest.raises(ValueError, match="not a shard result file"):
            merge_shards(AB_PART, config, [path])

"""Differential suite for structural delta compilation (``edit`` views).

A :meth:`CompiledScenario.edit` view derives a sibling compiled
scenario that recomputes only the tables its edit touches — release
grids and stream tables for ``periods``, per-unit rank tables for
``priorities``, channel tables for ``capacities`` — and shares the
rest with its base.  Every view's results must be byte-identical to

* a *fresh* ``compile_scenario`` of the edited system evaluated at the
  same offsets (pins that selective invalidation never reuses a stale
  table), and
* the plain simulator run on the edited system (an independent
  reference that shares none of the delta code).

Both identities are exercised on hypothesis-generated systems, under
both communication semantics, for single, composed and chained edits,
and for views forced off the delta path (duplicate priorities, offsets
pushed outside ``[0, T]`` by a period shrink), where the view must
fall back to the per-replication simulator rather than replaying the
compiled tables.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.batch import (
    CompiledScenario,
    OffsetView,
    ScenarioView,
    StructuralView,
    compile_scenario,
)
from repro.sim.engine import simulate
from repro.sim.exec_time import named_policy
from repro.sim.metrics import DisparityMonitor


def _scenario(seed: int, n_tasks: int):
    scenario = generate_random_scenario(n_tasks, random.Random(seed))
    return scenario.system, scenario.sink


def _offset_vector(system, seed: int):
    """One in-domain candidate vector, offsets in ``[1, T]``."""
    rng = random.Random(seed)
    return tuple(
        rng.randint(1, task.period) for task in system.graph.tasks
    )


def _edited_system(
    system, *, periods=None, priorities=None, capacities=None
):
    """The edit applied to the graph directly — the pre-view recipe."""
    graph = system.graph.copy()
    for name, period in (periods or {}).items():
        graph.replace_task(replace(graph.task(name), period=period))
    for name, priority in (priorities or {}).items():
        graph.replace_task(graph.task(name).with_priority(priority))
    for (src, dst), capacity in (capacities or {}).items():
        graph.set_channel_capacity(src, dst, capacity)
    return System(graph=graph, response_times=system.response_times)


def _simulator_reference(
    system, task, offsets, *, seed, duration, warmup, policy, semantics
):
    """Independent oracle: offsets applied to the graph, plain simulate."""
    graph = system.graph.copy()
    for tid, t in enumerate(graph.tasks):
        graph.replace_task(t.with_offset(offsets[tid]))
    variant = System(graph=graph, response_times=system.response_times)
    monitor = DisparityMonitor([task], warmup=warmup)
    simulate(
        variant,
        duration,
        seed=seed,
        policy=named_policy(policy),
        observers=[monitor],
        semantics=semantics,
    )
    return monitor.disparity(task)


def _structural_edits(system):
    """Representative single and composed edits of ``system``.

    Period edits only scale periods *up*, so base-domain offsets stay
    in the edited domain and views keep the delta-replay path.
    """
    compute = [t for t in system.graph.tasks if not t.is_instantaneous]
    channel = system.graph.channels[0]
    edge = (channel.src, channel.dst)
    edits = [
        {"periods": {compute[0].name: compute[0].period * 2}},
        {"capacities": {edge: channel.capacity + 2}},
        {
            "periods": {compute[-1].name: compute[-1].period * 3},
            "capacities": {edge: 2},
        },
    ]
    by_unit = {}
    for t in compute:
        if t.ecu is not None:
            by_unit.setdefault(t.ecu, []).append(t)
    for unit_tasks in by_unit.values():
        if len(unit_tasks) >= 2:
            a, b = unit_tasks[0], unit_tasks[1]
            edits.append(
                {"priorities": {a.name: b.priority, b.name: a.priority}}
            )
            break
    return edits


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
    semantics=st.sampled_from(["implicit", "let"]),
    policy=st.sampled_from(["uniform", "wcet"]),
)
def test_structural_views_match_fresh_compile_and_simulator(
    seed, n_tasks, semantics, policy
):
    system, sink = _scenario(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    shared = compile_scenario(system, sink, semantics=semantics)
    vector = _offset_vector(system, seed ^ 0x5A)
    for index, changes in enumerate(_structural_edits(system)):
        view = shared.edit(offsets=vector, **changes)
        assert isinstance(view, StructuralView)
        assert view.base is shared
        run_seed = seed + index
        got = view.disparity(run_seed, duration, warmup, policy)
        edited = _edited_system(system, **changes)
        fresh = (
            compile_scenario(edited, sink, semantics=semantics)
            .with_offsets(vector)
            .disparity(run_seed, duration, warmup, policy)
        )
        assert got == fresh
        assert got == _simulator_reference(
            edited,
            sink,
            vector,
            seed=run_seed,
            duration=duration,
            warmup=warmup,
            policy=policy,
            semantics=semantics,
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_chained_edits_compose_and_earlier_views_stay_valid(seed, semantics):
    """``view.edit`` stacks edits; later edits never corrupt earlier views."""
    system, sink = _scenario(seed, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    shared = compile_scenario(system, sink, semantics=semantics)
    vector = _offset_vector(system, seed)
    compute = [t for t in system.graph.tasks if not t.is_instantaneous]
    channel = system.graph.channels[-1]
    periods = {compute[0].name: compute[0].period * 2}
    capacities = {(channel.src, channel.dst): 3}

    first = shared.edit(periods=periods, offsets=vector)
    before = first.disparity(seed, duration, warmup, "wcet")
    second = first.edit(capacities=capacities)
    assert second.offsets == first.offsets
    combined = _edited_system(system, periods=periods, capacities=capacities)
    assert second.disparity(seed, duration, warmup, "wcet") == (
        compile_scenario(combined, sink, semantics=semantics)
        .with_offsets(vector)
        .disparity(seed, duration, warmup, "wcet")
    )
    # The chained edit derived a sibling; the first view still replays
    # against its own tables and must reproduce its result exactly.
    assert first.disparity(seed, duration, warmup, "wcet") == before


def test_edit_offsets_only_is_the_offset_view():
    """``edit(offsets=v)`` is ``with_offsets(v)`` — same type, same result."""
    system, sink = _scenario(7, 6)
    duration = 2 * max(task.period for task in system.graph.tasks)
    shared = compile_scenario(system, sink)
    vector = _offset_vector(system, 7)
    via_edit = shared.edit(offsets=vector)
    via_alias = shared.with_offsets(vector)
    assert type(via_edit) is OffsetView
    assert via_edit.offsets == via_alias.offsets
    assert via_edit.disparity(3, duration) == via_alias.disparity(3, duration)
    assert isinstance(via_edit, ScenarioView)
    # Empty structural mappings degrade to the offset-only view.
    assert type(shared.edit(capacities={}, offsets=vector)) is OffsetView


def test_unknown_or_empty_edit_keys_raise_value_error():
    system, sink = _scenario(7, 6)
    shared = compile_scenario(system, sink)
    with pytest.raises(ValueError, match="capacities"):
        shared.edit(capacity={(1, 2): 3})
    with pytest.raises(ValueError, match="periods"):
        shared.edit(period={"x": 10})
    with pytest.raises(ValueError):
        shared.edit()
    with pytest.raises(ModelError):
        shared.edit(periods={"no-such-task": 10})


def test_duplicate_priority_falls_back_identically():
    """A priority edit that collides per-unit leaves the delta path."""
    system, sink = _scenario(19, 9)
    shared = compile_scenario(system, sink)
    assert shared.eligible
    by_unit = {}
    for t in system.graph.tasks:
        if not t.is_instantaneous and t.ecu is not None:
            by_unit.setdefault(t.ecu, []).append(t)
    pair = next(ts for ts in by_unit.values() if len(ts) >= 2)
    a, b = pair[0], pair[1]
    vector = _offset_vector(system, 19)
    view = shared.edit(priorities={a.name: b.priority}, offsets=vector)
    assert not view.delta_replay
    assert "duplicate priorities" in view.reason
    duration = 2 * max(task.period for task in system.graph.tasks)
    edited = _edited_system(system, priorities={a.name: b.priority})
    assert view.disparity(5, duration, duration // 4, "uniform") == (
        _simulator_reference(
            edited,
            sink,
            vector,
            seed=5,
            duration=duration,
            warmup=duration // 4,
            policy="uniform",
            semantics="implicit",
        )
    )


def test_period_shrink_can_push_offsets_out_of_domain():
    """Offsets beyond the edited period force the simulator fallback."""
    system, sink = _scenario(23, 7)
    shared = compile_scenario(system, sink)
    compute = [t for t in system.graph.tasks if not t.is_instantaneous]
    target = compute[0]
    tid = [t.name for t in system.graph.tasks].index(target.name)
    new_period = max(1, target.period // 2)
    vector = tuple(
        new_period + 1 if index == tid else 1
        for index in range(len(system.graph.tasks))
    )
    view = shared.edit(periods={target.name: new_period}, offsets=vector)
    assert not view.in_domain
    assert not view.delta_replay
    assert "offsets outside" in view.reason
    duration = 2 * max(task.period for task in system.graph.tasks)
    edited = _edited_system(system, periods={target.name: new_period})
    assert view.disparity(3, duration, duration // 4, "uniform") == (
        _simulator_reference(
            edited,
            sink,
            vector,
            seed=3,
            duration=duration,
            warmup=duration // 4,
            policy="uniform",
            semantics="implicit",
        )
    )


def test_capacity_view_shares_streams_grids_and_schedule_memo():
    """Capacity edits invalidate only channel tables; the rest aliases."""
    system, sink = _scenario(31, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    base = CompiledScenario(system, sink)
    channel = system.graph.channels[0]
    vector = _offset_vector(system, 31)
    base.with_offsets(vector).disparity(1, duration, warmup, "wcet")
    before = base._sched_cache.stats()
    view = base.edit(capacities={(channel.src, channel.dst): 4}, offsets=vector)
    derived = view.compiled
    assert derived._grid_cache is base._grid_cache
    assert derived._stream_cache is base._stream_cache
    assert derived._sched_cache is base._sched_cache
    assert derived.in_edges is not base.in_edges
    # WCET is deterministic: the view's evaluation — even at another
    # seed — replays the memoized schedule instead of re-simulating.
    view.disparity(2, duration, warmup, "wcet")
    after = base._sched_cache.stats()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_period_view_gets_fresh_stream_and_schedule_caches():
    """Period edits invalidate streams and schedules but share grids."""
    import repro.sim.batch as batch_mod

    system, sink = _scenario(37, 8)
    base = CompiledScenario(system, sink)
    compute = [t for t in system.graph.tasks if not t.is_instantaneous]
    target = compute[0]
    view = base.edit(periods={target.name: target.period * 2})
    derived = view.compiled
    assert derived._grid_cache is base._grid_cache
    assert derived._stream_cache is not base._stream_cache
    assert derived._sched_cache is not base._sched_cache
    # Unedited tasks reuse the base's cached (period, duration) grids
    # (grids only materialize on the numpy delta path; the pure-python
    # fallback regenerates releases per candidate).
    duration = 2 * max(task.period for task in system.graph.tasks)
    view.disparity(1, duration, duration // 4, "wcet")
    other = compute[1]
    if batch_mod._np is not None:
        assert (other.period, duration) in base._grid_cache


def _nonperiodic_variant(system, seed: int):
    """Some tasks re-released with jittered/sporadic models."""
    from repro.model.task import ReleaseModel

    rng = random.Random(seed)
    graph = system.graph.copy()
    converted = 0
    for task in system.graph.tasks:
        u = rng.random()
        if u < 0.35:
            jitter = max(1, task.period // 4)
            model = ReleaseModel.jittered(min(task.period - 1, jitter))
        elif u < 0.6:
            model = ReleaseModel.sporadic(
                max(1, task.period // 2), task.period + task.period // 2
            )
        else:
            continue
        graph.replace_task(task.with_release_model(model))
        converted += 1
    if not converted:
        first = next(iter(system.graph.tasks))
        graph.replace_task(
            first.with_release_model(
                ReleaseModel.jittered(max(1, first.period // 4))
            )
        )
    return System(graph=graph, response_times=system.response_times)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_offset_edits_redraw_nonperiodic_release_tables(seed, semantics):
    """Offset views of jittered/sporadic scenarios never reuse stale tables.

    The release streams are keyed on the task *name*, so an offset
    edit must yield the exact tables of a fresh compile of the
    offset-edited system — pinned against both a fresh compile and the
    plain simulator.
    """
    base_system, sink = _scenario(seed, 7)
    system = _nonperiodic_variant(base_system, seed ^ 0x0FF5E7)
    duration = 2 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    shared = compile_scenario(system, sink, semantics=semantics)
    for index in range(2):
        vector = _offset_vector(system, (seed ^ 0x51) + index)
        view = shared.edit(offsets=vector)
        assert type(view) is OffsetView
        got = view.disparity(seed + index, duration, warmup, "uniform")
        fresh = (
            compile_scenario(system, sink, semantics=semantics)
            .with_offsets(vector)
            .disparity(seed + index, duration, warmup, "uniform")
        )
        assert got == fresh
        assert got == _simulator_reference(
            system,
            sink,
            vector,
            seed=seed + index,
            duration=duration,
            warmup=warmup,
            policy="uniform",
            semantics=semantics,
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_structural_edits_on_nonperiodic_tasks_match_fresh_compile(seed):
    """Period/capacity edits compose with non-periodic release tables."""
    base_system, sink = _scenario(seed, 7)
    system = _nonperiodic_variant(base_system, seed ^ 0xE417)
    duration = 2 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    shared = compile_scenario(system, sink)
    vector = _offset_vector(system, seed ^ 0x5A)
    compute = [t for t in system.graph.tasks if not t.is_instantaneous]
    channel = system.graph.channels[0]
    changes = {
        "periods": {compute[0].name: compute[0].period * 2},
        "capacities": {(channel.src, channel.dst): 2},
    }
    view = shared.edit(offsets=vector, **changes)
    got = view.disparity(seed, duration, warmup, "wcet")
    edited = _edited_system(system, **changes)
    fresh = (
        compile_scenario(edited, sink)
        .with_offsets(vector)
        .disparity(seed, duration, warmup, "wcet")
    )
    assert got == fresh
    assert got == _simulator_reference(
        edited,
        sink,
        vector,
        seed=seed,
        duration=duration,
        warmup=warmup,
        policy="wcet",
        semantics="implicit",
    )

"""Tests for steady-state measurement and offset search."""

import random

import pytest

from repro.core.disparity import disparity_bound
from repro.exact import (
    OffsetSearchResult,
    maximize_disparity_offsets,
    steady_state_disparity,
    warmup_horizon,
)
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.engine import simulate
from repro.sim.exec_time import wcet_policy
from repro.sim.metrics import DisparityMonitor
from repro.units import ms, seconds


def fusion_system(lidar_offset_ms: int = 0) -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(
        source_task("lidar", ms(30), ecu="e", priority=1, offset=ms(lidar_offset_ms))
    )
    graph.add_task(Task("fuse", ms(30), ms(2), ms(2), ecu="e", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


class TestSteadyState:
    def test_synchronous_offsets_zero_disparity(self):
        # All-zero offsets, harmonic periods: perfectly aligned reads.
        result = steady_state_disparity(fusion_system(0), "fuse")
        assert result.converged
        assert result.disparity == 0
        assert result.hyperperiod == ms(30)

    def test_offset_creates_disparity(self):
        result = steady_state_disparity(fusion_system(1), "fuse")
        assert result.converged
        # fuse reads a lidar sample 29 ms older than alignment.
        assert result.disparity == ms(29)

    def test_deterministic(self):
        a = steady_state_disparity(fusion_system(7), "fuse")
        b = steady_state_disparity(fusion_system(7), "fuse")
        assert a == b

    def test_below_analytic_bound(self):
        system = fusion_system(13)
        bound = disparity_bound(system, "fuse")
        result = steady_state_disparity(system, "fuse")
        assert result.disparity <= bound

    def test_max_windows_validated(self):
        with pytest.raises(ModelError):
            steady_state_disparity(fusion_system(), "fuse", max_windows=1)

    def test_warmup_horizon_covers_offsets_and_buffers(self):
        system = fusion_system(25).with_channel_capacity("cam", "fuse", 4)
        horizon = warmup_horizon(system)
        assert horizon >= ms(25)  # offset
        assert horizon >= 3 * ms(10)  # buffer fill


class TestOffsetSearch:
    def test_beats_or_matches_random_draws(self):
        # Aggregated over several seeds: a budget-matched random
        # baseline must not beat the coordinate ascent in total
        # (individual seeds are noisy on a system this small).
        system = fusion_system(0)
        searched_total = 0
        baseline_total = 0
        for seed in range(4):
            searched = maximize_disparity_offsets(
                system,
                "fuse",
                random.Random(seed),
                restarts=2,
                sweeps=2,
                candidates_per_task=5,
            )
            searched_total += searched.disparity
            baseline_rng = random.Random(seed)
            baseline = 0
            for _ in range(searched.evaluations):
                offsets = {
                    t.name: baseline_rng.randint(1, t.period)
                    for t in system.graph.tasks
                }
                graph = system.graph.copy()
                for name, off in offsets.items():
                    graph.replace_task(graph.task(name).with_offset(off))
                variant = System(
                    graph=graph, response_times=system.response_times
                )
                value = steady_state_disparity(variant, "fuse").disparity
                baseline = max(baseline, value)
            baseline_total += baseline
        assert searched_total >= baseline_total

    def test_search_result_sound(self):
        system = fusion_system(0)
        bound = disparity_bound(system, "fuse")
        result = maximize_disparity_offsets(
            system, "fuse", random.Random(1), restarts=1, sweeps=1,
            candidates_per_task=2,
        )
        assert result.disparity <= bound
        # The searched offsets actually reproduce the reported value.
        graph = system.graph.copy()
        for name, off in result.offsets.items():
            graph.replace_task(graph.task(name).with_offset(off))
        variant = System(graph=graph, response_times=system.response_times)
        check = steady_state_disparity(variant, "fuse")
        assert check.disparity == result.disparity

    def test_finds_near_worst_case_on_small_system(self):
        # For the 2-sensor fusion the analytic bound is T(lidar)+R-ish;
        # the search should reach a large fraction of it.
        system = fusion_system(0)
        bound = disparity_bound(system, "fuse")
        result = maximize_disparity_offsets(
            system, "fuse", random.Random(7), restarts=3, sweeps=2,
            candidates_per_task=5,
        )
        assert result.disparity >= 0.75 * bound

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            maximize_disparity_offsets(
                fusion_system(), "fuse", random.Random(0), restarts=0
            )
        with pytest.raises(ModelError):
            maximize_disparity_offsets(
                fusion_system(), "fuse", random.Random(0), max_windows=1
            )

    def test_jobs_invariant(self):
        # Restarts carry their own derived seeds, so fanning them over
        # worker processes must not change anything.
        system = fusion_system(0)
        serial = maximize_disparity_offsets(
            system, "fuse", random.Random(11), restarts=3, sweeps=1,
            candidates_per_task=2,
        )
        parallel = maximize_disparity_offsets(
            system, "fuse", random.Random(11), restarts=3, sweeps=1,
            candidates_per_task=2, jobs=2,
        )
        assert serial == parallel


class TestCompiledObjective:
    """The compiled steady-state objective must equal the reference."""

    def test_matches_reference_on_random_scenarios(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.exact.search import _CompiledObjective, _apply_offsets
        from repro.gen import generate_random_scenario

        @settings(max_examples=20, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            n_tasks=st.integers(min_value=4, max_value=9),
            max_windows=st.integers(min_value=2, max_value=5),
        )
        def check(seed, n_tasks, max_windows):
            rng = random.Random(seed)
            scenario = generate_random_scenario(n_tasks, rng)
            system, sink = scenario.system, scenario.sink
            objective = _CompiledObjective(
                system, sink, wcet_policy, max_windows
            )
            offsets = {
                t.name: rng.randint(1, t.period)
                for t in system.graph.tasks
            }
            expected = steady_state_disparity(
                _apply_offsets(system, offsets),
                sink,
                policy=wcet_policy,
                max_windows=max_windows,
            ).disparity
            assert objective.value(offsets) == expected

        check()

    def test_matches_reference_on_fusion(self):
        from repro.exact.search import _CompiledObjective, _apply_offsets

        system = fusion_system(0)
        objective = _CompiledObjective(system, "fuse", wcet_policy, 4)
        rng = random.Random(5)
        for _ in range(25):
            offsets = {
                t.name: rng.randint(1, t.period)
                for t in system.graph.tasks
            }
            expected = steady_state_disparity(
                _apply_offsets(system, offsets),
                "fuse",
                policy=wcet_policy,
                max_windows=4,
            ).disparity
            assert objective.value(offsets) == expected


class TestSteadyStateEarlyExit:
    """The warmup+3H convergence probe must not change any result."""

    @staticmethod
    def _reference(system, task, max_windows=8):
        """The pre-probe algorithm: one full-horizon run, then scan."""
        from repro.exact.hyperperiod import _window_values

        hyperperiod = system.graph.hyperperiod()
        warmup = warmup_horizon(system)
        values = _window_values(
            system,
            task,
            policy=wcet_policy,
            seed=0,
            semantics="implicit",
            warmup=warmup,
            hyperperiod=hyperperiod,
            horizon_windows=max_windows,
            count=max_windows,
        )
        for index in range(1, max_windows):
            if values[index] == values[index - 1]:
                return (values[index], True, index + 1)
        return (max(values), False, max_windows)

    def test_probe_matches_full_run_on_random_scenarios(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.gen import generate_random_scenario

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            n_tasks=st.integers(min_value=5, max_value=10),
        )
        def check(seed, n_tasks):
            scenario = generate_random_scenario(n_tasks, random.Random(seed))
            system, sink = scenario.system, scenario.sink
            result = steady_state_disparity(system, sink)
            reference = self._reference(system, sink)
            assert (
                result.disparity,
                result.converged,
                result.windows_used,
            ) == reference

        check()

    def test_probe_matches_full_run_on_fusion_offsets(self):
        for offset in (0, 3, 7, 15, 29):
            system = fusion_system(offset)
            result = steady_state_disparity(system, "fuse")
            assert (
                result.disparity,
                result.converged,
                result.windows_used,
            ) == self._reference(system, "fuse")

"""The :class:`repro.api.AnalysisSession` facade and top-level API.

Covers the session's cache-reuse contract (repeated queries return the
*same object* without recomputation), method-name normalization, the
bounded compiled-scenario LRU, the session-level ``edit_scenario``
accessor, and the removal of the PR-1 deprecation shims from the
top-level package (the functional forms live on in
:mod:`repro.core.disparity`).
"""

from __future__ import annotations

import random

import pytest

import repro
import repro.api
from repro import AnalysisSession, generate_random_scenario, seconds
from repro.core.disparity import METHOD_ALIASES, normalize_method
from repro.sim.metrics import DisparityMonitor


@pytest.fixture(scope="module")
def scenario():
    return generate_random_scenario(10, random.Random(7))


@pytest.fixture()
def session(scenario):
    return AnalysisSession(scenario.system)


class TestCacheReuse:
    def test_worst_case_returns_same_object(self, session, scenario):
        first = session.worst_case(scenario.sink)
        second = session.worst_case(scenario.sink)
        assert first is second

    def test_alias_methods_share_one_memo_entry(self, session, scenario):
        canonical = session.worst_case(scenario.sink, method="forkjoin")
        via_alias = session.worst_case(scenario.sink, method="s-diff")
        assert canonical is via_alias

    def test_no_recompute_after_first_query(self, session, scenario, monkeypatch):
        session.worst_case(scenario.sink)

        def explode(*args, **kwargs):
            raise AssertionError("cached result must not be recomputed")

        monkeypatch.setattr(repro.api, "worst_case_disparity", explode)
        session.worst_case(scenario.sink)  # served from the memo

    def test_chains_enumerated_once(self, session, scenario):
        assert session.chains(scenario.sink) is session.chains(scenario.sink)

    def test_backward_bounds_cache_warm_after_first_query(self, session, scenario):
        session.disparity(scenario.sink, method="independent")
        cached = len(session.cache)
        assert cached > 0
        session.disparity(scenario.sink, method="independent")
        assert len(session.cache) == cached

    def test_matches_functional_api(self, session, scenario):
        from repro.core.disparity import disparity_bound

        assert session.disparity(scenario.sink) == disparity_bound(
            scenario.system, scenario.sink, method="forkjoin"
        )

    def test_all_sinks_covers_every_sink(self, session):
        results = session.all_sinks()
        assert set(results) == set(session.graph.sinks())


class TestMethodNormalization:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("p-diff", "independent"),
            ("P-Diff", "independent"),
            ("theorem1", "independent"),
            ("s-diff", "forkjoin"),
            ("  SDIFF ", "forkjoin"),
            ("best", "best"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_method(alias) == canonical

    def test_unknown_method_raises_value_error_listing_choices(self):
        with pytest.raises(ValueError) as excinfo:
            normalize_method("bogus")
        message = str(excinfo.value)
        assert "independent" in message and "forkjoin" in message
        assert "p-diff" in message  # aliases are listed too

    def test_session_rejects_unknown_method(self, session, scenario):
        with pytest.raises(ValueError):
            session.disparity(scenario.sink, method="bogus")

    def test_disparity_bound_accepts_cli_names(self, scenario):
        from repro.core.disparity import disparity_bound

        assert disparity_bound(
            scenario.system, scenario.sink, method="s-diff"
        ) == disparity_bound(scenario.system, scenario.sink, method="forkjoin")

    def test_every_alias_maps_to_a_canonical_method(self):
        assert set(METHOD_ALIASES.values()) == {
            "independent",
            "forkjoin",
            "best",
        }


class TestSimulation:
    def test_simulate_accepts_policy_names(self, session):
        result = session.simulate(seconds(1), seed=3, policy="wcet")
        assert result.stats.jobs_completed > 0

    def test_simulate_is_deterministic_per_seed(self, session, scenario):
        def observed(seed):
            monitor = DisparityMonitor([scenario.sink])
            session.simulate(seconds(1), seed=seed, observers=[monitor])
            return monitor.disparity(scenario.sink)

        assert observed(11) == observed(11)

    def test_observed_disparity_below_bound(self, session, scenario):
        observed = session.observed_disparity(
            scenario.sink, sims=3, duration=seconds(2), rng=random.Random(5)
        )
        assert observed <= session.disparity(scenario.sink)

    def test_buffered_session_reuses_response_times(self, session, scenario):
        design = session.design_buffers(scenario.sink)
        buffered = session.with_buffer_plan(design.plan)
        assert buffered.response_times() is session.response_times()


class TestObservedStats:
    def test_exact_fields_match_observed_batch(self, session, scenario):
        # Chunked streaming consumes the same generator stream as one
        # big batch, so count/max/min are exactly the batch's values
        # even when sims is not a multiple of the chunk size.
        batch = session.observed_batch(
            scenario.sink, sims=7, duration=seconds(2), rng=random.Random(9)
        )
        summary = session.observed_stats(
            scenario.sink, sims=7, duration=seconds(2),
            rng=random.Random(9), chunk=3,
        )
        assert summary["count"] == batch.sims == 7
        assert summary["max"] == batch.max_disparity
        assert summary["min"] == min(batch.disparities)
        assert summary["mean"] == pytest.approx(
            sum(batch.disparities) / batch.sims
        )
        assert set(summary["quantiles"]) == {"p50", "p90", "p99"}

    def test_zero_sims_yields_empty_summary(self, session, scenario):
        summary = session.observed_stats(
            scenario.sink, sims=0, duration=seconds(2)
        )
        assert summary["count"] == 0
        assert "max" not in summary

    def test_validation(self, session, scenario):
        with pytest.raises(ValueError):
            session.observed_stats(
                scenario.sink, sims=-1, duration=seconds(2)
            )
        with pytest.raises(ValueError):
            session.observed_stats(
                scenario.sink, sims=1, duration=seconds(2), chunk=0
            )


class TestShimRemoval:
    """The PR-1 deprecation shims are gone after two releases of warning."""

    def test_all_sink_disparities_removed_from_package(self):
        with pytest.raises(AttributeError):
            repro.all_sink_disparities

    def test_check_disparity_requirement_removed_from_package(self):
        with pytest.raises(AttributeError):
            repro.check_disparity_requirement

    def test_removed_names_left_all(self):
        assert "all_sink_disparities" not in repro.__all__
        assert "check_disparity_requirement" not in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_name

    def test_functional_forms_stay_importable(self, scenario, recwarn):
        from repro.core.disparity import (  # noqa: F401
            all_sink_disparities,
            check_disparity_requirement,
        )

        assert check_disparity_requirement(
            scenario.system, scenario.sink, 10**15
        )
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_session_replacements_cover_the_removed_surface(self, session):
        results = session.all_sinks()
        assert set(results) == set(session.graph.sinks())
        sink = next(iter(results))
        assert session.check_requirement(sink, 10**15)


class TestCompiledCacheBound:
    """The per-(task, semantics) compiled-scenario memo is a bounded LRU."""

    def test_repeat_queries_hit_without_eviction(self, session, scenario):
        first = session.compiled_scenario(scenario.sink)
        again = session.compiled_scenario(scenario.sink)
        assert first is again
        stats = session.compiled_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0

    def test_lru_evicts_past_the_bound(self, scenario):
        session = AnalysisSession(scenario.system, compiled_cache_size=2)
        tasks = [t.name for t in scenario.system.graph.tasks][:3]
        for name in tasks:
            session.compiled_scenario(name)
        stats = session.compiled_cache_stats()
        assert stats["size"] == 2
        assert stats["maxsize"] == 2
        assert stats["evictions"] == 1
        # The oldest entry was dropped; re-querying recompiles it.
        first = session.compiled_scenario(tasks[0])
        assert session.compiled_cache_stats()["evictions"] == 2
        assert first.task == tasks[0]

    def test_recently_used_entry_survives(self, scenario):
        session = AnalysisSession(scenario.system, compiled_cache_size=2)
        tasks = [t.name for t in scenario.system.graph.tasks][:3]
        a = session.compiled_scenario(tasks[0])
        session.compiled_scenario(tasks[1])
        session.compiled_scenario(tasks[0])  # refresh a
        session.compiled_scenario(tasks[2])  # evicts tasks[1]
        assert session.compiled_scenario(tasks[0]) is a

    def test_invalid_bound_rejected(self, scenario):
        with pytest.raises(ValueError):
            AnalysisSession(scenario.system, compiled_cache_size=0)


class TestEditScenario:
    def test_offsets_only_edit_matches_observed_batch_draws(
        self, session, scenario
    ):
        offs = tuple(t.period for t in session.graph.tasks)
        view = session.edit_scenario(scenario.sink, offsets=offs)
        direct = session.compiled_scenario(scenario.sink).with_offsets(offs)
        duration = 2 * max(t.period for t in session.graph.tasks)
        assert view.disparity(3, duration) == direct.disparity(3, duration)

    def test_unknown_edit_key_raises_value_error_listing_choices(
        self, session, scenario
    ):
        with pytest.raises(ValueError) as excinfo:
            session.edit_scenario(scenario.sink, capacity={})
        message = str(excinfo.value)
        assert "capacities" in message and "periods" in message

    def test_structural_edit_reuses_the_cached_core(self, session, scenario):
        core = session.compiled_scenario(scenario.sink)
        name = next(
            t.name for t in session.graph.tasks if not t.is_instantaneous
        )
        view = session.edit_scenario(
            scenario.sink, periods={name: session.graph.task(name).period * 2}
        )
        assert view.base is core
        assert view.compiled._grid_cache is core._grid_cache

"""The :class:`repro.api.AnalysisSession` facade and API deprecations.

Covers the session's cache-reuse contract (repeated queries return the
*same object* without recomputation), method-name normalization, and
the backward-compatible deprecation shims on the top-level package.
"""

from __future__ import annotations

import random

import pytest

import repro
import repro.api
from repro import AnalysisSession, generate_random_scenario, seconds
from repro.core.disparity import METHOD_ALIASES, normalize_method
from repro.sim.metrics import DisparityMonitor


@pytest.fixture(scope="module")
def scenario():
    return generate_random_scenario(10, random.Random(7))


@pytest.fixture()
def session(scenario):
    return AnalysisSession(scenario.system)


class TestCacheReuse:
    def test_worst_case_returns_same_object(self, session, scenario):
        first = session.worst_case(scenario.sink)
        second = session.worst_case(scenario.sink)
        assert first is second

    def test_alias_methods_share_one_memo_entry(self, session, scenario):
        canonical = session.worst_case(scenario.sink, method="forkjoin")
        via_alias = session.worst_case(scenario.sink, method="s-diff")
        assert canonical is via_alias

    def test_no_recompute_after_first_query(self, session, scenario, monkeypatch):
        session.worst_case(scenario.sink)

        def explode(*args, **kwargs):
            raise AssertionError("cached result must not be recomputed")

        monkeypatch.setattr(repro.api, "worst_case_disparity", explode)
        session.worst_case(scenario.sink)  # served from the memo

    def test_chains_enumerated_once(self, session, scenario):
        assert session.chains(scenario.sink) is session.chains(scenario.sink)

    def test_backward_bounds_cache_warm_after_first_query(self, session, scenario):
        session.disparity(scenario.sink, method="independent")
        cached = len(session.cache)
        assert cached > 0
        session.disparity(scenario.sink, method="independent")
        assert len(session.cache) == cached

    def test_matches_functional_api(self, session, scenario):
        from repro.core.disparity import disparity_bound

        assert session.disparity(scenario.sink) == disparity_bound(
            scenario.system, scenario.sink, method="forkjoin"
        )

    def test_all_sinks_covers_every_sink(self, session):
        results = session.all_sinks()
        assert set(results) == set(session.graph.sinks())


class TestMethodNormalization:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("p-diff", "independent"),
            ("P-Diff", "independent"),
            ("theorem1", "independent"),
            ("s-diff", "forkjoin"),
            ("  SDIFF ", "forkjoin"),
            ("best", "best"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_method(alias) == canonical

    def test_unknown_method_raises_value_error_listing_choices(self):
        with pytest.raises(ValueError) as excinfo:
            normalize_method("bogus")
        message = str(excinfo.value)
        assert "independent" in message and "forkjoin" in message
        assert "p-diff" in message  # aliases are listed too

    def test_session_rejects_unknown_method(self, session, scenario):
        with pytest.raises(ValueError):
            session.disparity(scenario.sink, method="bogus")

    def test_disparity_bound_accepts_cli_names(self, scenario):
        from repro.core.disparity import disparity_bound

        assert disparity_bound(
            scenario.system, scenario.sink, method="s-diff"
        ) == disparity_bound(scenario.system, scenario.sink, method="forkjoin")

    def test_every_alias_maps_to_a_canonical_method(self):
        assert set(METHOD_ALIASES.values()) == {
            "independent",
            "forkjoin",
            "best",
        }


class TestSimulation:
    def test_simulate_accepts_policy_names(self, session):
        result = session.simulate(seconds(1), seed=3, policy="wcet")
        assert result.stats.jobs_completed > 0

    def test_simulate_is_deterministic_per_seed(self, session, scenario):
        def observed(seed):
            monitor = DisparityMonitor([scenario.sink])
            session.simulate(seconds(1), seed=seed, observers=[monitor])
            return monitor.disparity(scenario.sink)

        assert observed(11) == observed(11)

    def test_observed_disparity_below_bound(self, session, scenario):
        observed = session.observed_disparity(
            scenario.sink, sims=3, duration=seconds(2), rng=random.Random(5)
        )
        assert observed <= session.disparity(scenario.sink)

    def test_buffered_session_reuses_response_times(self, session, scenario):
        design = session.design_buffers(scenario.sink)
        buffered = session.with_buffer_plan(design.plan)
        assert buffered.response_times() is session.response_times()


class TestDeprecations:
    def test_all_sink_disparities_warns_but_works(self, scenario):
        with pytest.warns(DeprecationWarning, match="all_sinks"):
            fn = repro.all_sink_disparities
        results = fn(scenario.system)
        assert set(results) == set(scenario.system.graph.sinks())

    def test_check_disparity_requirement_warns_but_works(self, scenario):
        with pytest.warns(DeprecationWarning, match="check_requirement"):
            fn = repro.check_disparity_requirement
        assert fn(scenario.system, scenario.sink, 10**15)

    def test_deprecated_names_stay_in_all(self):
        assert "all_sink_disparities" in repro.__all__
        assert "check_disparity_requirement" in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_name

    def test_direct_module_import_does_not_warn(self, recwarn):
        from repro.core.disparity import all_sink_disparities  # noqa: F401

        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

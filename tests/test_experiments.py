"""Tests for the Fig. 6 experiment harness and reporting."""

import io
from pathlib import Path

import pytest

from repro.experiments.config import (
    DEFAULT_AB,
    PAPER_AB,
    PAPER_CD,
    SMOKE_AB,
    SMOKE_CD,
    Fig6ABConfig,
    Fig6CDConfig,
)
from repro.experiments.fig6 import PointAB, PointCD, run_fig6_ab, run_fig6_cd
from repro.experiments.reporting import (
    check_shapes_ab,
    check_shapes_cd,
    csv_ab,
    csv_cd,
    render_table_ab,
    render_table_cd,
)
from repro.experiments.runner import preset_ab, preset_cd, run_ab, run_cd
from repro.units import seconds


TINY_AB = SMOKE_AB.scaled(
    x_values=(5, 8), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)
TINY_CD = SMOKE_CD.scaled(
    x_values=(4, 6), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)


@pytest.fixture(scope="module")
def rows_ab():
    return run_fig6_ab(TINY_AB)


@pytest.fixture(scope="module")
def rows_cd():
    return run_fig6_cd(TINY_CD)


class TestConfigs:
    def test_paper_sweeps_match_text(self):
        assert PAPER_AB.x_values == tuple(range(5, 36))
        assert PAPER_CD.x_values == tuple(range(5, 31))
        assert PAPER_AB.sim_duration == seconds(600)
        assert PAPER_AB.graphs_per_point == 10
        assert PAPER_AB.sims_per_graph == 10

    def test_scaled_override(self):
        scaled = DEFAULT_AB.scaled(graphs_per_point=1)
        assert scaled.graphs_per_point == 1
        assert scaled.x_values == DEFAULT_AB.x_values

    def test_presets(self):
        assert preset_ab("paper") is PAPER_AB
        assert preset_cd("smoke") is SMOKE_CD
        with pytest.raises(ValueError):
            preset_ab("nope")


class TestFig6AB:
    def test_row_per_x(self, rows_ab):
        assert [row.n_tasks for row in rows_ab] == [5, 8]

    def test_soundness_shape(self, rows_ab):
        assert check_shapes_ab(rows_ab) == []

    def test_ratios_defined(self, rows_ab):
        for row in rows_ab:
            if row.sim_ms > 0:
                assert row.s_ratio >= 0
                assert row.p_ratio >= row.s_ratio

    def test_deterministic(self):
        again = run_fig6_ab(TINY_AB)
        assert [(r.sim_ms, r.p_diff_ms, r.s_diff_ms) for r in again] == [
            (r.sim_ms, r.p_diff_ms, r.s_diff_ms) for r in run_fig6_ab(TINY_AB)
        ]


class TestFig6CD:
    def test_row_per_x(self, rows_cd):
        assert [row.tasks_per_chain for row in rows_cd] == [4, 6]

    def test_soundness_shape(self, rows_cd):
        assert check_shapes_cd(rows_cd) == []

    def test_buffered_bound_never_worse(self, rows_cd):
        for row in rows_cd:
            assert row.s_diff_b_ms <= row.s_diff_ms + 1e-9


class TestReporting:
    def test_render_ab(self, rows_ab):
        table = render_table_ab(rows_ab)
        assert "P-diff(ms)" in table
        assert str(rows_ab[0].n_tasks) in table

    def test_render_cd(self, rows_cd):
        table = render_table_cd(rows_cd)
        assert "S-diff-B(ms)" in table

    def test_csv_ab(self, rows_ab):
        text = csv_ab(rows_ab)
        lines = text.strip().splitlines()
        assert lines[0].startswith("n_tasks,")
        assert len(lines) == 1 + len(rows_ab)

    def test_csv_cd(self, rows_cd):
        text = csv_cd(rows_cd)
        assert text.startswith("tasks_per_chain,")

    def test_shape_violation_detection(self):
        bad = [PointAB(n_tasks=5, sim_ms=100.0, p_diff_ms=50.0, s_diff_ms=60.0)]
        violations = check_shapes_ab(bad)
        assert len(violations) == 3  # sim>s, sim>p, s>p

    def test_shape_violation_detection_cd(self):
        bad = [
            PointCD(
                tasks_per_chain=5,
                sim_ms=100.0,
                s_diff_ms=50.0,
                sim_b_ms=100.0,
                s_diff_b_ms=60.0,
            )
        ]
        violations = check_shapes_cd(bad)
        assert len(violations) == 3


class TestRunner:
    def test_run_ab_writes_csv(self, tmp_path):
        stream = io.StringIO()
        out_csv = tmp_path / "fig6ab.csv"
        rows = run_ab(TINY_AB, out_csv=out_csv, stream=stream, verbose=False)
        assert out_csv.exists()
        assert len(rows) == 2
        assert "P-diff(ms)" in stream.getvalue()

    def test_run_cd_writes_csv(self, tmp_path):
        stream = io.StringIO()
        out_csv = tmp_path / "fig6cd.csv"
        rows = run_cd(TINY_CD, out_csv=out_csv, stream=stream, verbose=False)
        assert out_csv.exists()
        assert len(rows) == 2

"""Tests for Theorems 1 and 2 — exact hand-computed bounds.

Derivations for the diamond fixture (see conftest): all chains have
per-hop budgets equal to the producer period, WCBTs
W(s,a,m,x,sink)=60, W(s,a,m,y,sink)=80, W(s,b,m,x,sink)=70,
W(s,b,m,y,sink)=90 (ms) and every BCBT is -2 ms.
"""

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.pairwise import (
    OffsetInterval,
    SamplingWindow,
    disparity_bound_forkjoin,
    disparity_bound_independent,
    floor_to_period,
    independent_operator,
    offset_intervals,
    sampling_windows,
    shifted_operator,
)
from repro.model.chain import Chain, decompose_pair
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.units import ms


def build_trunk_system() -> System:
    """s -> {a, b} -> m -> k -> sink: fork, join, shared trunk.

    Hand-computed: R(a)=2, R(b)=3, R(m)=4, R(k)=5, R(sink)=5;
    W(s,a,m,k,sink)=60, W(s,b,m,k,sink)=70, both BCBT=-1 (ms).
    """
    graph = CauseEffectGraph()
    graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(1), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(1), ms(1), ecu="e", priority=2))
    graph.add_task(Task("m", ms(20), ms(1), ms(1), ecu="e", priority=3))
    graph.add_task(Task("k", ms(20), ms(1), ms(1), ecu="e", priority=4))
    graph.add_task(Task("sink", ms(40), ms(1), ms(1), ecu="e", priority=5))
    graph.add_channel("s", "a")
    graph.add_channel("s", "b")
    graph.add_channel("a", "m")
    graph.add_channel("b", "m")
    graph.add_channel("m", "k")
    graph.add_channel("k", "sink")
    return System.build(graph)


class TestOperators:
    def test_independent_operator(self):
        assert independent_operator(60, -2, 90, -2) == 92
        assert independent_operator(10, 0, 10, 0) == 10

    def test_independent_operator_symmetric(self):
        assert independent_operator(60, -2, 90, -3) == independent_operator(
            90, -3, 60, -2
        )

    def test_shifted_operator_reduces_to_independent(self):
        assert shifted_operator(60, -2, 90, -2, 0, 0, ms(20)) == independent_operator(
            60, -2, 90, -2
        )

    def test_shifted_operator_with_offsets(self):
        # |W(nu) - B(lam) - x*T| vs |B(nu) - W(lam) - y*T|.
        assert shifted_operator(40, -3, 60, -3, -3, 2, 20) == max(
            abs(60 + 3 + 60), abs(-3 - 40 - 40)
        )

    def test_floor_to_period(self):
        assert floor_to_period(ms(92), ms(10)) == ms(90)
        assert floor_to_period(ms(90), ms(10)) == ms(90)
        assert floor_to_period(0, ms(10)) == 0

    def test_floor_to_period_rejects_negative(self):
        with pytest.raises(ModelError):
            floor_to_period(-1, ms(10))

    def test_sampling_window_validation(self):
        with pytest.raises(ModelError):
            SamplingWindow(1, 0)

    def test_offset_interval_validation(self):
        with pytest.raises(ModelError):
            OffsetInterval(joint="m", x=2, y=1)


class TestTheorem1:
    def test_diamond_worst_pair(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        result = disparity_bound_independent(lam, nu, cache)
        # O = max(|60-(-2)|, |90-(-2)|) = 92, floored to 90 (shared s).
        assert result.bound == ms(90)
        assert result.shared_source
        assert result.method == "P-diff"

    def test_diamond_x_pair(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "x", "sink")
        # O = max(62, 72) = 72 -> floor 70.
        assert disparity_bound_independent(lam, nu, cache).bound == ms(70)

    def test_different_sources_no_floor(self, two_source_system):
        cache = BackwardBoundsCache(two_source_system)
        lam = Chain.of("cam", "fuse")
        nu = Chain.of("lidar", "fuse")
        result = disparity_bound_independent(lam, nu, cache)
        # W(cam,fuse)=10, W(lidar,fuse)=30, both B=-1:
        # O = max(|10+1|, |30+1|) = 31, no floor.
        assert result.bound == ms(31)
        assert not result.shared_source

    def test_symmetry(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        assert (
            disparity_bound_independent(lam, nu, cache).bound
            == disparity_bound_independent(nu, lam, cache).bound
        )

    def test_mismatched_tails_rejected(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        with pytest.raises(ModelError):
            disparity_bound_independent(
                Chain.of("s", "a", "m"), Chain.of("s", "b", "m", "x"), cache
            )

    def test_windows_exposed(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        result = disparity_bound_independent(lam, nu, cache)
        assert result.window_lam == SamplingWindow(-ms(60), ms(2))
        assert result.window_nu == SamplingWindow(-ms(90), ms(2))


class TestTheorem2Recursion:
    def test_diamond_offsets(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        decomposition = decompose_pair(lam, nu, diamond_system.graph)
        offsets = offset_intervals(decomposition, cache)
        assert offsets[-1] == OffsetInterval(joint="sink", x=0, y=0)
        # x1 = ceil((B(a2) - W(b2))/T(m)) = ceil((-3-60)/20) = -3
        # y1 = floor((W(a2) - B(b2))/T(m)) = floor((40+3)/20) = 2
        assert offsets[0] == OffsetInterval(joint="m", x=-3, y=2)

    def test_diamond_windows(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        decomposition = decompose_pair(lam, nu, diamond_system.graph)
        offsets = offset_intervals(decomposition, cache)
        window_lam, window_nu = sampling_windows(decomposition, offsets, cache)
        # alpha1 = (s,a,m): W=20, B=-2 -> [-20, 2]
        assert window_lam == SamplingWindow(-ms(20), ms(2))
        # beta1 = (s,b,m): W=30, B=-2, x1=-3, y1=2, T(m)=20:
        # [-60-30, 40+2] = [-90, 42]
        assert window_nu == SamplingWindow(-ms(90), ms(42))


class TestTheorem2:
    def test_diamond_worst_pair_equals_theorem1(self, diamond_system):
        # The diamond's divergent second half (x vs y) leaves so much
        # slack that Theorem 2 cannot improve on Theorem 1 here.
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "y", "sink")
        result = disparity_bound_forkjoin(lam, nu, cache)
        assert result.bound == ms(90)
        assert result.method == "S-diff"

    def test_shared_suffix_truncation_tightens(self, diamond_system):
        # (s,a,m,x,sink) vs (s,b,m,x,sink) share the suffix (m,x,sink):
        # truncated to (s,a,m) vs (s,b,m) at m:
        # O = max(|30+2|, |-2-20|) = 32 -> floor(T(s)=10) -> 30.
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "x", "sink")
        result = disparity_bound_forkjoin(lam, nu, cache)
        assert result.bound == ms(30)
        assert result.analyzed_task == "m"
        # Strictly better than Theorem 1's 70.
        assert result.bound < disparity_bound_independent(lam, nu, cache).bound

    def test_trunk_system_values(self):
        system = build_trunk_system()
        cache = BackwardBoundsCache(system)
        lam = Chain.of("s", "a", "m", "k", "sink")
        nu = Chain.of("s", "b", "m", "k", "sink")
        p_result = disparity_bound_independent(lam, nu, cache)
        s_result = disparity_bound_forkjoin(lam, nu, cache)
        assert p_result.bound == ms(70)
        assert s_result.bound == ms(30)

    def test_trunk_without_truncation(self):
        # The pure recursion (no suffix truncation) walks the shared
        # trunk and ends up as loose as Theorem 1 — demonstrating why
        # the paper's "last joint task" rule matters.
        system = build_trunk_system()
        cache = BackwardBoundsCache(system)
        lam = Chain.of("s", "a", "m", "k", "sink")
        nu = Chain.of("s", "b", "m", "k", "sink")
        result = disparity_bound_forkjoin(lam, nu, cache, truncate_suffix=False)
        assert result.bound == ms(70)

    def test_identical_chains_zero(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        result = disparity_bound_forkjoin(lam, lam, cache)
        assert result.bound == 0

    def test_symmetry(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        chains = [
            Chain.of("s", "a", "m", "x", "sink"),
            Chain.of("s", "b", "m", "y", "sink"),
            Chain.of("s", "a", "m", "y", "sink"),
            Chain.of("s", "b", "m", "x", "sink"),
        ]
        for i, lam in enumerate(chains):
            for nu in chains[i + 1 :]:
                forward = disparity_bound_forkjoin(lam, nu, cache).bound
                backward = disparity_bound_forkjoin(nu, lam, cache).bound
                assert forward == backward

    def test_disjoint_pair_reduces_to_theorem1(self, merged_system):
        cache = BackwardBoundsCache(merged_system)
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        p = disparity_bound_independent(lam, nu, cache).bound
        s = disparity_bound_forkjoin(lam, nu, cache).bound
        assert p == s == ms(102)

"""Tests for the cause-effect graph structure."""

import pytest

from repro.model.graph import CauseEffectGraph, Channel
from repro.model.task import ModelError, Task, source_task
from repro.units import ms, us


def simple_task(name: str, period_ms: int = 10) -> Task:
    return Task(name, ms(period_ms), us(10), us(1))


def linear_graph(*names: str) -> CauseEffectGraph:
    graph = CauseEffectGraph()
    graph.add_task(source_task(names[0], ms(10)))
    for name in names[1:]:
        graph.add_task(simple_task(name))
    for src, dst in zip(names, names[1:]):
        graph.add_channel(src, dst)
    return graph


class TestConstruction:
    def test_add_and_lookup(self):
        graph = CauseEffectGraph()
        graph.add_task(simple_task("a"))
        assert graph.task("a").name == "a"
        assert "a" in graph
        assert len(graph) == 1

    def test_duplicate_task_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(simple_task("a"))
        with pytest.raises(ModelError):
            graph.add_task(simple_task("a"))

    def test_unknown_task_rejected(self):
        graph = CauseEffectGraph()
        with pytest.raises(ModelError):
            graph.task("ghost")

    def test_channel_requires_tasks(self):
        graph = CauseEffectGraph()
        graph.add_task(simple_task("a"))
        with pytest.raises(ModelError):
            graph.add_channel("a", "ghost")

    def test_self_loop_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(simple_task("a"))
        with pytest.raises(ModelError):
            graph.add_channel("a", "a")

    def test_duplicate_channel_rejected(self):
        graph = linear_graph("a", "b")
        with pytest.raises(ModelError):
            graph.add_channel("a", "b")

    def test_cycle_rejected(self):
        graph = linear_graph("a", "b", "c")
        with pytest.raises(ModelError):
            graph.add_channel("c", "a")

    def test_two_edge_cycle_rejected(self):
        graph = linear_graph("a", "b")
        with pytest.raises(ModelError):
            graph.add_channel("b", "a")

    def test_from_tasks(self):
        graph = CauseEffectGraph.from_tasks(
            [source_task("s", ms(10)), simple_task("t")],
            [("s", "t")],
        )
        assert graph.has_channel("s", "t")

    def test_from_tasks_with_capacities(self):
        graph = CauseEffectGraph.from_tasks(
            [source_task("s", ms(10)), simple_task("t")],
            [("s", "t")],
            capacities={("s", "t"): 3},
        )
        assert graph.channel("s", "t").capacity == 3

    def test_channel_capacity_validation(self):
        with pytest.raises(ModelError):
            Channel("a", "b", capacity=0)

    def test_set_channel_capacity(self):
        graph = linear_graph("a", "b")
        graph.set_channel_capacity("a", "b", 4)
        assert graph.channel("a", "b").capacity == 4

    def test_copy_is_independent(self):
        graph = linear_graph("a", "b")
        clone = graph.copy()
        clone.set_channel_capacity("a", "b", 9)
        assert graph.channel("a", "b").capacity == 1

    def test_replace_task(self):
        graph = linear_graph("a", "b")
        graph.replace_task(graph.task("b").with_priority(7))
        assert graph.task("b").priority == 7


class TestStructureQueries:
    def test_sources_and_sinks(self, diamond_graph):
        assert diamond_graph.sources() == ("s",)
        assert diamond_graph.sinks() == ("sink",)
        assert diamond_graph.is_source("s")
        assert diamond_graph.is_sink("sink")
        assert not diamond_graph.is_source("m")

    def test_degrees(self, diamond_graph):
        assert diamond_graph.in_degree("m") == 2
        assert diamond_graph.out_degree("m") == 2
        assert diamond_graph.in_degree("s") == 0

    def test_successors_predecessors(self, diamond_graph):
        assert set(diamond_graph.successors("s")) == {"a", "b"}
        assert set(diamond_graph.predecessors("sink")) == {"x", "y"}

    def test_topological_order(self, diamond_graph):
        order = diamond_graph.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for channel in diamond_graph.channels:
            assert position[channel.src] < position[channel.dst]

    def test_ancestors(self, diamond_graph):
        assert diamond_graph.ancestors("m") == {"s", "a", "b"}
        assert diamond_graph.ancestors("s") == set()

    def test_descendants(self, diamond_graph):
        assert diamond_graph.descendants("m") == {"x", "y", "sink"}

    def test_source_ancestors(self, diamond_graph):
        assert diamond_graph.source_ancestors("sink") == ("s",)
        assert diamond_graph.source_ancestors("s") == ("s",)

    def test_paths_between_diamond(self, diamond_graph):
        paths = sorted(diamond_graph.paths_between("s", "sink"))
        assert len(paths) == 4  # 2 (s->m) * 2 (m->sink)
        assert ("s", "a", "m", "x", "sink") in paths

    def test_paths_between_none(self, diamond_graph):
        assert list(diamond_graph.paths_between("sink", "s")) == []

    def test_weak_connectivity(self, diamond_graph):
        assert diamond_graph.is_weakly_connected()
        diamond_graph.add_task(simple_task("orphan"))
        assert not diamond_graph.is_weakly_connected()

    def test_empty_graph_connected(self):
        assert CauseEffectGraph().is_weakly_connected()

    def test_hyperperiod(self, diamond_graph):
        assert diamond_graph.hyperperiod() == ms(40)

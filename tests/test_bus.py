"""Tests for CAN-bus behaviour: contention, blocking, end-to-end flow."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import Task, message_task, source_task
from repro.sim.engine import simulate
from repro.sim.exec_time import wcet_policy
from repro.sim.metrics import BackwardTimeMonitor, JobTableMonitor
from repro.units import ms, us


def build_bus_system(msg1_offset=0):
    """Two sensor streams crossing one CAN bus to two consumers."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("s1", ms(10), ecu="ecu0", priority=0,
                               offset=msg1_offset))
    graph.add_task(source_task("s2", ms(10), ecu="ecu0", priority=1))
    graph.add_task(
        message_task("m1", ms(10), us(270), bus="can0", priority=0,
                     offset=msg1_offset)
    )
    graph.add_task(message_task("m2", ms(10), us(270), bus="can0", priority=1))
    graph.add_task(Task("c1", ms(10), us(100), us(100), ecu="ecu1", priority=0))
    graph.add_task(Task("c2", ms(10), us(100), us(100), ecu="ecu1", priority=1))
    graph.add_channel("s1", "m1")
    graph.add_channel("s2", "m2")
    graph.add_channel("m1", "c1")
    graph.add_channel("m2", "c2")
    return System.build(graph)


class TestBusContention:
    def test_priority_arbitration(self):
        system = build_bus_system()
        monitor = JobTableMonitor()
        simulate(system, ms(9), observers=[monitor], policy=wcet_policy)
        m1 = monitor.by_task("m1")[0]
        m2 = monitor.by_task("m2")[0]
        # m1 wins arbitration; m2 transmits right after.
        assert (m1.start, m1.finish) == (0, us(270))
        assert (m2.start, m2.finish) == (us(270), us(540))

    def test_non_preemptive_transmission(self):
        # m2 starts first (m1 released mid-frame); a CAN frame in
        # flight is never aborted by a higher-priority identifier.
        system = build_bus_system(msg1_offset=us(100))
        monitor = JobTableMonitor()
        simulate(system, ms(9), observers=[monitor], policy=wcet_policy)
        m1 = monitor.by_task("m1")[0]
        m2 = monitor.by_task("m2")[0]
        assert (m2.start, m2.finish) == (0, us(270))
        assert (m1.start, m1.finish) == (us(270), us(540))

    def test_response_time_analysis_matches(self):
        system = build_bus_system()
        # m1: blocked by one m2 frame at worst: R = 270 + 270 = 540us.
        assert system.R("m1") == us(540)
        # m2: one m1 frame of interference: s = 270, R = 540us.
        assert system.R("m2") == us(540)

    def test_end_to_end_data_flow_over_bus(self):
        system = build_bus_system()
        monitor = BackwardTimeMonitor(["c1"], warmup=ms(20))
        simulate(system, ms(100), observers=[monitor], policy=wcet_policy)
        observed = monitor.range_for("c1", "s1")
        assert observed.samples > 0
        # Consumer sees sensor data via the bus; the backward time is
        # bounded by the analytical WCBT of the deployed chain.
        from repro.chains.backward import wcbt_upper
        from repro.model.chain import Chain

        chain = Chain.of("s1", "m1", "c1")
        assert observed.hi <= wcbt_upper(chain, system)

    def test_schedule_invariants(self):
        system = build_bus_system()
        monitor = JobTableMonitor()
        simulate(system, ms(50), observers=[monitor], policy=wcet_policy)
        monitor.check_invariants({"s1", "s2"})

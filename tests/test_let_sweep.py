"""Regression pins for the batched LET sweeps.

The LET analytical sweeps used to live as one-at-a-time ``simulate``
loops (``examples/let_vs_implicit.py``); they now run through
``observed_batch`` sessions, i.e. delta-replayed compiled scenarios.
Two things are pinned here:

* **identity** — per semantics, the batched observed column equals a
  sequential loop of independent ``simulate`` calls under the batch
  RNG discipline (execution seed first, then one offset in ``[1, T]``
  per task in graph order), so the port changed the engine, not the
  results;
* **stability** — the exact numbers of the example study (bounds and
  observed disparities) as committed constants, so a cross-PR drift in
  any layer underneath (generation, LET bounds, batch replay) surfaces
  as a one-line diff.

The ``explore`` sweeps' new ``semantics="let"`` mode is pinned the
same way: candidate bounds equal the LET bounds cache evaluation and
results are identical for any ``jobs`` value.
"""

from __future__ import annotations

import random

import pytest

from repro.api import AnalysisSession
from repro.core.disparity import disparity_bound
from repro.explore import buffer_capacity_sweep, period_sensitivity
from repro.let import (
    backward_bounds_let,
    let_bounds_cache,
    semantics_tradeoff,
)
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.metrics import DisparityMonitor
from repro.units import ms, seconds


def _two_sensor_pipeline() -> System:
    """The example's camera/LiDAR fusion pipeline, verbatim."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(50), ecu="e", priority=1))
    graph.add_task(Task("img", ms(10), ms(2), ms(1), ecu="e", priority=2))
    graph.add_task(Task("pcl", ms(50), ms(8), ms(3), ecu="e", priority=3))
    graph.add_task(Task("fuse", ms(50), ms(4), ms(2), ecu="e", priority=4))
    graph.add_channel("cam", "img")
    graph.add_channel("lidar", "pcl")
    graph.add_channel("img", "fuse")
    graph.add_channel("pcl", "fuse")
    return System.build(graph)


def _sequential_observed(system, task, semantics, *, sims, duration,
                         warmup, seed):
    """The pre-port reference: N independent simulate calls, one rng."""
    session = AnalysisSession(system, semantics=semantics)
    rng = random.Random(seed)
    worst = 0
    for _ in range(sims):
        monitor = DisparityMonitor([task], warmup=warmup)
        session.simulate(
            duration,
            seed=rng.randrange(2**31),
            observers=[monitor],
            offsets_rng=rng,
        )
        worst = max(worst, monitor.disparity(task))
    return worst


def test_semantics_tradeoff_matches_sequential_simulate():
    system = _two_sensor_pipeline()
    result = semantics_tradeoff(
        system, "fuse", sims=6, duration=seconds(8), warmup=seconds(1), seed=3
    )
    for point in result.points:
        assert point.engine in ("columnar", "compiled")
        assert point.observed == _sequential_observed(
            system,
            "fuse",
            point.semantics,
            sims=6,
            duration=seconds(8),
            warmup=seconds(1),
            seed=3,
        )


def test_semantics_tradeoff_pins_example_study():
    """The exact example numbers, committed (cross-PR stability pin)."""
    system = _two_sensor_pipeline()
    result = semantics_tradeoff(
        system, "fuse", sims=6, duration=seconds(8), warmup=seconds(1), seed=3
    )
    assert result.implicit.bound == ms(113)
    assert result.let.bound == ms(140)
    assert result.implicit.observed == 57045482
    assert result.let.observed == 97045482
    assert result.bound_delta == ms(27)
    assert result.observed_delta == ms(40)
    assert result.implicit.sound and result.let.sound


def test_semantics_tradeoff_validation():
    system = _two_sensor_pipeline()
    with pytest.raises(ModelError):
        semantics_tradeoff(system, "fuse", sims=0, duration=seconds(1))


def test_buffer_capacity_sweep_let_semantics():
    system = _two_sensor_pipeline()
    kwargs = dict(
        max_capacity=4,
        semantics="let",
        observed_sims=2,
        observed_duration=seconds(4),
        observed_warmup=seconds(1),
        seed=11,
    )
    points = buffer_capacity_sweep(system, ("img", "fuse"), "fuse", **kwargs)
    assert len(points) == 4
    for point in points:
        candidate = system.with_channel_capacity("img", "fuse", point.value)
        assert point.bound == disparity_bound(
            candidate, "fuse", cache=let_bounds_cache(candidate)
        )
        assert point.observed is not None
        assert point.observed <= point.bound
    parallel = buffer_capacity_sweep(
        system, ("img", "fuse"), "fuse", jobs=2, **kwargs
    )
    assert parallel == points


def test_period_sensitivity_let_semantics_matches_session():
    system = _two_sensor_pipeline()
    points = period_sensitivity(
        system,
        "img",
        "fuse",
        candidate_periods=(ms(10), ms(25)),
        semantics="let",
        observed_sims=2,
        observed_duration=seconds(4),
        seed=7,
    )
    assert all(p.schedulable for p in points)
    # The ms(10) candidate is the unmodified system: its bound must
    # agree with a LET session's Theorem 2 answer.
    session = AnalysisSession(
        system, bounds_strategy=backward_bounds_let, semantics="let"
    )
    assert points[0].bound == session.disparity("fuse")


def test_explore_sweeps_reject_unknown_semantics():
    system = _two_sensor_pipeline()
    with pytest.raises(ModelError):
        period_sensitivity(
            system, "img", "fuse", candidate_periods=(ms(10),), semantics="e2e"
        )
    with pytest.raises(ModelError):
        buffer_capacity_sweep(
            system, ("img", "fuse"), "fuse", semantics="e2e"
        )

"""Integration tests: analytical bounds versus simulated behaviour.

The central correctness property of the whole library: for every
system, every observed run-time quantity must respect its analytical
bound —

* observed backward times within ``[BCBT, WCBT]`` (Lemmas 4/5, and 6
  under buffering);
* observed disparity at most P-diff and at most S-diff (Theorems 1/2);
* observed disparity of the buffered system at most the Theorem 3
  bound.

These tests exercise random WATERS workloads end to end with random
offsets, which is exactly how Fig. 6 stresses the theory.
"""

import random

import pytest

from repro.buffers.sizing import design_buffer_pair, disparity_bound_buffered
from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound
from repro.gen.scenario import (
    ScenarioConfig,
    generate_merged_pair_scenario,
    generate_random_scenario,
)
from repro.model.chain import enumerate_source_chains
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.metrics import BackwardTimeMonitor, DisparityMonitor
from repro.units import ms, seconds


def offset_variants(system, rng, count):
    for _ in range(count):
        graph = randomize_offsets(system.graph, rng)
        yield System(graph=graph, response_times=system.response_times)


class TestBackwardTimeSoundness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_single_chain_within_bounds(self, seed):
        from repro.gen.graphgen import chain_graph, deploy

        rng = random.Random(seed)
        graph = deploy(chain_graph(6, rng), rng, n_ecus=2)
        system = System.build(graph)
        chain_tasks = [t.name for t in system.graph.tasks]
        # The deployed chain is the unique source-to-sink path.
        chains = enumerate_source_chains(system.graph, system.graph.sinks()[0])
        assert len(chains) == 1
        chain = chains[0]
        cache = BackwardBoundsCache(system)
        bounds = cache.bounds(chain)

        for variant in offset_variants(system, rng, 4):
            monitor = BackwardTimeMonitor([chain.tail], warmup=seconds(2))
            simulate(variant, seconds(6), seed=rng.randrange(2**31), observers=[monitor])
            observed = monitor.range_for(chain.tail, chain.head)
            if observed.samples == 0:
                continue
            assert observed.hi <= bounds.wcbt
            assert observed.lo >= bounds.bcbt

    def test_buffered_chain_within_lemma6_bounds(self):
        from repro.gen.graphgen import chain_graph, deploy

        rng = random.Random(7)
        graph = deploy(chain_graph(5, rng), rng, n_ecus=1)
        system = System.build(graph)
        chain = enumerate_source_chains(system.graph, system.graph.sinks()[0])[0]
        buffered = system.with_channel_capacity(chain[0], chain[1], 3)
        cache = BackwardBoundsCache(buffered)
        bounds = cache.bounds(chain)

        warmup = seconds(2) + 3 * buffered.T(chain.head)
        for variant in offset_variants(buffered, rng, 4):
            monitor = BackwardTimeMonitor([chain.tail], warmup=warmup)
            simulate(variant, seconds(6), seed=rng.randrange(2**31), observers=[monitor])
            observed = monitor.range_for(chain.tail, chain.head)
            if observed.samples == 0:
                continue
            assert observed.hi <= bounds.wcbt
            assert observed.lo >= bounds.bcbt


class TestDisparitySoundness:
    @pytest.mark.parametrize("seed,n_tasks", [(1, 8), (2, 12), (3, 16)])
    def test_random_fusion_graphs(self, seed, n_tasks):
        rng = random.Random(seed)
        scenario = generate_random_scenario(n_tasks, rng)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        p_diff = disparity_bound(system, scenario.sink, method="independent", cache=cache)
        s_diff = disparity_bound(system, scenario.sink, method="forkjoin", cache=cache)

        worst = 0
        for variant in offset_variants(system, rng, 5):
            monitor = DisparityMonitor([scenario.sink], warmup=seconds(2))
            simulate(variant, seconds(5), seed=rng.randrange(2**31), observers=[monitor])
            worst = max(worst, monitor.disparity(scenario.sink))
        assert worst <= s_diff
        assert worst <= p_diff

    @pytest.mark.parametrize("seed", [4, 5])
    def test_gnm_graphs(self, seed):
        rng = random.Random(seed)
        scenario = generate_random_scenario(
            10, rng, ScenarioConfig(generator="gnm")
        )
        system = scenario.system
        s_diff = disparity_bound(system, scenario.sink, method="forkjoin")
        for variant in offset_variants(system, rng, 3):
            monitor = DisparityMonitor([scenario.sink], warmup=seconds(2))
            simulate(variant, seconds(5), seed=rng.randrange(2**31), observers=[monitor])
            assert monitor.disparity(scenario.sink) <= s_diff

    def test_per_pair_bounds_on_merged_chains(self):
        # With exactly two disjoint chains, the per-pair bound is the
        # task bound and the pairwise observation is exact.
        rng = random.Random(9)
        scenario = generate_merged_pair_scenario(5, rng)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        lam, nu = enumerate_source_chains(system.graph, "sink")
        from repro.core.pairwise import disparity_bound_forkjoin

        bound = disparity_bound_forkjoin(lam, nu, cache).bound
        for variant in offset_variants(system, rng, 5):
            monitor = DisparityMonitor(["sink"], warmup=seconds(2), track_pairs=True)
            simulate(variant, seconds(5), seed=rng.randrange(2**31), observers=[monitor])
            key = ("sink", *sorted((lam.head, nu.head)))
            if key in monitor.pair_max:
                assert monitor.pair_max[key] <= bound


class TestBufferedDisparitySoundness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_theorem3_bound_holds_in_simulation(self, seed):
        rng = random.Random(seed)
        scenario = generate_merged_pair_scenario(5, rng)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        lam, nu = enumerate_source_chains(system.graph, "sink")
        result, design = disparity_bound_buffered(lam, nu, cache)
        if not design.plan:
            pytest.skip("windows already aligned; nothing to verify")
        buffered = system.with_buffer_plan(design.plan)

        fill = max(
            channel.capacity * buffered.T(channel.src)
            for channel in buffered.graph.channels
        )
        warmup = seconds(2) + 2 * fill
        for variant in offset_variants(buffered, rng, 5):
            monitor = DisparityMonitor(["sink"], warmup=warmup)
            simulate(
                variant,
                warmup + seconds(4),
                seed=rng.randrange(2**31),
                observers=[monitor],
            )
            assert monitor.disparity("sink") <= result.bound

"""Equivalence of the LET fast path and LET batch replay with the
general loop.

Under LET semantics jobs read at *release* and publish at their
*deadline* (release + period), so data flow is fully determined by the
schedule — exactly the structure the two-phase fast path and the
compiled batch engine exploit.  The general event loop remains the
untouched semantic reference: every observable of a LET run — job
tables, stats counters, channel states, disparity/backward-time/
data-age metrics — must be identical between ``loop="fast"`` and
``loop="general"``, and ``run_batch(semantics="let")`` must be
byte-identical to N sequential ``simulate(semantics="let")`` calls
under the same generator (the ``AnalysisSession.observed_disparity``
discipline: per replication an execution-time seed is drawn first,
then one offset in ``[1, T]`` per task in graph order).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisSession
from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.batch import CompiledScenario, run_batch
from repro.sim.engine import Simulator, randomize_offsets
from repro.sim.exec_time import bcet_policy, extremes_policy, wcet_policy
from repro.sim.metrics import (
    BackwardTimeMonitor,
    DataAgeMonitor,
    DisparityMonitor,
    JobTableMonitor,
)


def _random_system(seed: int, n_tasks: int) -> System:
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    return System(graph=graph, response_times=scenario.system.response_times)


def _zero_bcet_system(seed: int, n_tasks: int) -> System:
    """A random system where some CPU tasks can execute in zero time."""
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    zeroed = graph.copy()
    hit = False
    for task in graph.tasks:
        if task.is_instantaneous:
            continue
        if not hit or rng.random() < 0.5:
            zeroed.replace_task(replace(task, bcet=0))
            hit = True
    return System(
        graph=zeroed, response_times=scenario.system.response_times
    )


def _run(system, duration, seed, loop, policy=None):
    job_table = JobTableMonitor()
    disparity = DisparityMonitor(warmup=duration // 4)
    backward = BackwardTimeMonitor()
    age = DataAgeMonitor()
    kwargs = {} if policy is None else {"policy": policy}
    sim = Simulator(
        system,
        duration,
        seed=seed,
        observers=[job_table, disparity, backward, age],
        semantics="let",
        loop=loop,
        **kwargs,
    )
    result = sim.run()
    return sim, result, job_table, disparity, backward, age


def _assert_equivalent(system, duration, seed, policy=None):
    fast = _run(system, duration, seed, "fast", policy)
    general = _run(system, duration, seed, "general", policy)
    sim_f, res_f, jobs_f, disp_f, back_f, age_f = fast
    sim_g, res_g, jobs_g, disp_g, back_g, age_g = general

    # Stats counters.
    assert res_f.stats.jobs_released == res_g.stats.jobs_released
    assert res_f.stats.jobs_completed == res_g.stats.jobs_completed
    assert res_f.stats.events_processed == res_g.stats.events_processed
    assert res_f.stats.busy_time == res_g.stats.busy_time

    # Full job table, in notification order.
    assert jobs_f.jobs == jobs_g.jobs
    instantaneous = {
        task.name for task in system.graph.tasks if task.is_instantaneous
    }
    jobs_f.check_invariants(instantaneous)

    # Metrics.
    assert disp_f.max_disparity == disp_g.max_disparity
    assert disp_f.samples == disp_g.samples
    assert back_f.ranges.keys() == back_g.ranges.keys()
    for key in back_f.ranges:
        assert back_f.ranges[key] == back_g.ranges[key]
    for key in age_f.ranges:
        assert age_f.ranges[key] == age_g.ranges[key]

    # Channel states (lazily reconstructed on the fast path).
    for channel in system.graph.channels:
        state_f = sim_f.channel_state(channel.src, channel.dst)
        state_g = sim_g.channel_state(channel.src, channel.dst)
        assert state_f.writes == state_g.writes
        assert state_f.evictions == state_g.evictions
        snap_f, snap_g = state_f.snapshot(), state_g.snapshot()
        assert len(snap_f) == len(snap_g)
        for tok_f, tok_g in zip(snap_f, snap_g):
            assert tok_f.produced_at == tok_g.produced_at
            assert tok_f.producer == tok_g.producer
            assert tok_f.producer_release == tok_g.producer_release
            assert tok_f.provenance == tok_g.provenance
        state_f.validate_fifo_order()


# ----------------------------------------------------------------------
# fast path vs general loop
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=14),
)
def test_let_fastpath_matches_general_uniform(seed, n_tasks):
    system = _random_system(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_let_fastpath_matches_general_other_policies(seed):
    system = _random_system(seed, 8)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed, policy=wcet_policy)
    _assert_equivalent(system, duration, seed, policy=extremes_policy)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
)
def test_let_fastpath_matches_general_zero_bcet(seed, n_tasks):
    """Zero-BCET cascades: LET visibility is deadline-driven, so even
    same-instant finish pileups must not perturb the reconstruction."""
    system = _zero_bcet_system(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_equivalent(system, duration, seed)
    _assert_equivalent(system, duration, seed, policy=bcet_policy)


def test_let_fastpath_matches_general_with_buffers():
    system = _random_system(321, 10)
    plan = {
        (c.src, c.dst): 1 + (i % 3)
        for i, c in enumerate(system.graph.channels)
    }
    buffered = system.with_buffer_plan(plan)
    duration = 4 * max(task.period for task in buffered.graph.tasks)
    _assert_equivalent(buffered, duration, 321)


def test_let_deadline_violation_parity():
    """Both loops raise the same ModelError when a job misses its LET
    deadline.

    The generator only produces schedulable systems, so the overload is
    built by surgery: analyze a light system, then inflate the
    high-priority task's WCET so the low-priority sibling's response
    time exceeds its period (the simulator never consults the table).
    """
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("hog", ms(10), ms(2), ms(2), ecu="e", priority=1))
    graph.add_task(Task("late", ms(10), ms(2), ms(2), ecu="e", priority=2))
    graph.add_channel("src", "hog")
    graph.add_channel("hog", "late")
    built = System.build(graph)
    overloaded_graph = built.graph.copy()
    overloaded_graph.replace_task(
        replace(overloaded_graph.task("hog"), wcet=ms(9), bcet=ms(9))
    )
    overloaded = System(
        graph=overloaded_graph, response_times=built.response_times
    )
    messages = []
    for loop in ("fast", "general"):
        with pytest.raises(ModelError) as err:
            Simulator(
                overloaded, ms(100), seed=9, semantics="let", loop=loop
            ).run()
        messages.append(str(err.value))
    assert "LET violation" in messages[0]
    assert messages[0] == messages[1]


# ----------------------------------------------------------------------
# compiled batch replay vs sequential LET runs
# ----------------------------------------------------------------------

def _sequential_let(system, task, *, sims, duration, warmup, rng,
                    policy="uniform", loop="general"):
    """N independent LET simulator runs, shared generator."""
    from repro.sim.exec_time import named_policy

    if isinstance(policy, str):
        policy = named_policy(policy)
    out = []
    for _ in range(sims):
        monitor = DisparityMonitor([task], warmup=warmup)
        run_seed = rng.randrange(2**31)
        run_system = System(
            graph=randomize_offsets(system.graph, rng),
            response_times=system.response_times,
        )
        Simulator(
            run_system,
            duration,
            seed=run_seed,
            policy=policy,
            observers=[monitor],
            semantics="let",
            loop=loop,
        ).run()
        out.append(monitor.disparity(task))
    return tuple(out)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
)
def test_let_batch_matches_sequential_general(seed, n_tasks):
    system, sink = (lambda s: (s.system, s.sink))(
        generate_random_scenario(n_tasks, random.Random(seed))
    )
    duration = 3 * max(task.period for task in system.graph.tasks)
    result = run_batch(
        system,
        sink,
        sims=3,
        duration=duration,
        warmup=duration // 4,
        rng=random.Random(seed),
        semantics="let",
    )
    expected = _sequential_let(
        system,
        sink,
        sims=3,
        duration=duration,
        warmup=duration // 4,
        rng=random.Random(seed),
    )
    assert result.engine in ("columnar", "compiled")
    assert result.semantics == "let"
    assert result.disparities == expected


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=10),
)
def test_let_batch_matches_sequential_zero_bcet(seed, n_tasks):
    rng = random.Random(seed)
    scenario = generate_random_scenario(n_tasks, rng)
    graph = scenario.system.graph.copy()
    hit = False
    for task in scenario.system.graph.tasks:
        if task.is_instantaneous:
            continue
        if not hit or rng.random() < 0.5:
            graph.replace_task(replace(task, bcet=0))
            hit = True
    system = System(
        graph=graph, response_times=scenario.system.response_times
    )
    sink = scenario.sink
    duration = 2 * max(task.period for task in graph.tasks)
    compiled = CompiledScenario(system, sink, semantics="let")
    assert compiled.eligible
    result = run_batch(
        system,
        sink,
        sims=3,
        duration=duration,
        warmup=duration // 4,
        rng=random.Random(seed),
        compiled=compiled,
        semantics="let",
    )
    expected = _sequential_let(
        system,
        sink,
        sims=3,
        duration=duration,
        warmup=duration // 4,
        rng=random.Random(seed),
    )
    assert result.engine in ("columnar", "compiled")
    assert result.disparities == expected


def test_let_batch_fallback_matches_sequential():
    """Ineligible scenarios (duplicate priorities) fall back to the
    per-replication simulator *with LET semantics*, never implicit."""
    from repro.model.graph import CauseEffectGraph
    from repro.model.task import Task, source_task
    from repro.units import ms

    graph = CauseEffectGraph()
    graph.add_task(source_task("src", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(2), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(3), ms(1), ecu="e", priority=2))
    graph.add_channel("src", "a")
    graph.add_channel("a", "b")
    built = System.build(graph)
    collided = built.graph.copy()
    collided.replace_task(replace(collided.task("b"), priority=1))
    system = System(graph=collided, response_times=built.response_times)
    compiled = CompiledScenario(system, "b", semantics="let")
    assert not compiled.eligible
    result = run_batch(
        system,
        "b",
        sims=4,
        duration=ms(200),
        warmup=ms(20),
        rng=random.Random(11),
        compiled=compiled,
        semantics="let",
    )
    expected = _sequential_let(
        system,
        "b",
        sims=4,
        duration=ms(200),
        warmup=ms(20),
        rng=random.Random(11),
    )
    assert result.engine == "simulator"
    assert result.semantics == "let"
    assert result.reason is not None
    assert "duplicate priorities" in result.reason
    assert result.disparities == expected


def test_run_batch_rejects_semantics_mismatch():
    scenario = generate_random_scenario(6, random.Random(8))
    system, sink = scenario.system, scenario.sink
    implicit = CompiledScenario(system, sink)
    with pytest.raises(ModelError):
        run_batch(
            system, sink, sims=1, duration=10**9,
            compiled=implicit, semantics="let",
        )
    with pytest.raises(ModelError):
        CompiledScenario(system, sink, semantics="lett")


# ----------------------------------------------------------------------
# session routing (the observed_batch LET seam)
# ----------------------------------------------------------------------

def test_let_session_observed_batch_replays_let():
    """Regression: a LET session's observed disparities must equal N
    sequential ``simulate(semantics="let")`` calls — never implicit."""
    scenario = generate_random_scenario(9, random.Random(3))
    system, sink = scenario.system, scenario.sink
    duration = 3 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4

    session = AnalysisSession(system, semantics="let")
    assert session.semantics == "let"
    result = session.observed_batch(
        sink, sims=5, duration=duration, warmup=warmup, seed=17
    )
    assert result.semantics == "let"
    expected = _sequential_let(
        system,
        sink,
        sims=5,
        duration=duration,
        warmup=warmup,
        rng=random.Random(17),
    )
    assert result.disparities == expected
    assert session.observed_disparity(
        sink, sims=5, duration=duration, warmup=warmup, seed=17
    ) == max(expected)

    # The compiled scenario is cached per (task, semantics): an explicit
    # implicit-semantics request on the same session compiles separately
    # and does not disturb the LET entry.
    implicit = session.observed_batch(
        sink, sims=5, duration=duration, warmup=warmup, seed=17,
        semantics="implicit",
    )
    assert implicit.semantics == "implicit"
    assert set(session._compiled) == {(sink, "let"), (sink, "implicit")}


def test_session_rejects_unknown_semantics():
    scenario = generate_random_scenario(5, random.Random(2))
    with pytest.raises(ValueError):
        AnalysisSession(scenario.system, semantics="explicit")

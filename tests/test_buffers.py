"""Tests for Lemma 6, Algorithm 1, and Theorem 3.

The merged fixture (two disjoint chains at one sink) is the paper's
Section IV setting.  Hand derivation (ms):

* lam = (sa, pa, sink): W=20, B=-2; nu = (sb, pb, sink): W=100, B=-2.
* S-diff (= Theorem 1, disjoint): O = max(22, 102) = 102.
* Windows at the sink: lam [-20, 2] (midpoint -9), nu [-100, 2]
  (midpoint -49): lam is later, gap 40 -> buffer (sa, pa) capacity
  floor(40/10)+1 = 5, L = 40; Theorem 3: 102 - 40 = 62.
"""

import pytest

from repro.buffers.bounds import buffered_backward_bounds
from repro.buffers.sizing import (
    design_buffer_pair,
    design_buffers_multi,
    disparity_bound_buffered,
)
from repro.chains.backward import BackwardBoundsCache, bcbt_lower, wcbt_upper
from repro.core.disparity import disparity_bound
from repro.model.chain import Chain
from repro.model.task import ModelError
from repro.units import ms


class TestLemma6:
    def test_buffered_bounds_shift(self, merged_system):
        chain = Chain.of("sa", "pa", "sink")
        bounds = buffered_backward_bounds(chain, merged_system, capacity=5)
        assert bounds.wcbt == ms(20) + 4 * ms(10)
        assert bounds.bcbt == -ms(2) + 4 * ms(10)

    def test_capacity_one_identity(self, merged_system):
        chain = Chain.of("sa", "pa", "sink")
        bounds = buffered_backward_bounds(chain, merged_system, capacity=1)
        assert bounds.wcbt == wcbt_upper(chain, merged_system)
        assert bounds.bcbt == bcbt_lower(chain, merged_system)

    def test_matches_applied_system(self, merged_system):
        # The hypothetical shift must equal re-analysis of a system
        # with the capacity actually applied.
        chain = Chain.of("sa", "pa", "sink")
        hypothetical = buffered_backward_bounds(chain, merged_system, capacity=3)
        applied = merged_system.with_channel_capacity("sa", "pa", 3)
        assert hypothetical.wcbt == wcbt_upper(chain, applied)
        assert hypothetical.bcbt == bcbt_lower(chain, applied)

    def test_invalid_capacity_rejected(self, merged_system):
        with pytest.raises(ModelError):
            buffered_backward_bounds(
                Chain.of("sa", "pa", "sink"), merged_system, capacity=0
            )

    def test_singleton_chain_rejected(self, merged_system):
        with pytest.raises(ModelError):
            buffered_backward_bounds(Chain.of("sa"), merged_system, capacity=2)

    def test_already_buffered_rejected(self, merged_system):
        buffered = merged_system.with_channel_capacity("sa", "pa", 2)
        with pytest.raises(ModelError):
            buffered_backward_bounds(
                Chain.of("sa", "pa", "sink"), buffered, capacity=3
            )


class TestAlgorithm1:
    def test_merged_design(self, merged_system):
        cache = BackwardBoundsCache(merged_system)
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        design = design_buffer_pair(lam, nu, cache)
        assert design.channel == ("sa", "pa")
        assert design.capacity == 5
        assert design.shift == ms(40)
        assert design.shifted_chain == "lam"
        assert design.plan == {("sa", "pa"): 5}

    def test_design_is_symmetric(self, merged_system):
        cache = BackwardBoundsCache(merged_system)
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        forward = design_buffer_pair(lam, nu, cache)
        backward = design_buffer_pair(nu, lam, cache)
        assert forward.channel == backward.channel
        assert forward.capacity == backward.capacity
        assert forward.shift == backward.shift

    def test_aligned_pair_no_design(self, diamond_system):
        # (s,a,m,x,sink) vs (s,b,m,x,sink) truncate to (s,a,m)/(s,b,m):
        # midpoint gap = ((-20+2) - (-30+2))/2 = 5 < T(s)=10 -> no shift.
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        nu = Chain.of("s", "b", "m", "x", "sink")
        design = design_buffer_pair(lam, nu, cache)
        assert design.channel is None
        assert design.shift == 0
        assert design.plan == {}

    def test_identical_chains_no_design(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        lam = Chain.of("s", "a", "m", "x", "sink")
        design = design_buffer_pair(lam, lam, cache)
        assert design.shift == 0


class TestTheorem3:
    def test_merged_bound(self, merged_system):
        cache = BackwardBoundsCache(merged_system)
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        result, design = disparity_bound_buffered(lam, nu, cache)
        assert result.bound == ms(62)
        assert result.method == "S-diff-B"
        assert design.shift == ms(40)

    def test_bound_matches_reanalysis(self, merged_system):
        # Theorem 3's closed form must agree with re-running Theorem 1/2
        # on the system with the designed capacities applied.
        cache = BackwardBoundsCache(merged_system)
        lam = Chain.of("sa", "pa", "sink")
        nu = Chain.of("sb", "pb", "sink")
        result, design = disparity_bound_buffered(lam, nu, cache)
        buffered = merged_system.with_buffer_plan(design.plan)
        assert disparity_bound(buffered, "sink", method="forkjoin") == result.bound

    def test_never_worse(self, merged_system, diamond_system):
        for system, tail in ((merged_system, "sink"), (diamond_system, "sink")):
            cache = BackwardBoundsCache(system)
            from repro.model.chain import enumerate_source_chains
            from itertools import combinations
            from repro.core.pairwise import disparity_bound_forkjoin

            chains = enumerate_source_chains(system.graph, tail)
            for lam, nu in combinations(chains, 2):
                base = disparity_bound_forkjoin(lam, nu, cache)
                buffered, _ = disparity_bound_buffered(lam, nu, cache)
                assert buffered.bound <= base.bound


class TestGreedyDesign:
    def test_matches_pairwise_on_two_chains(self, merged_system):
        from repro.buffers.sizing import design_buffers_greedy

        design = design_buffers_greedy(merged_system, "sink")
        # With exactly two chains, the greedy loop's first round is
        # Algorithm 1 itself.
        assert design.plan == {("sa", "pa"): 5}
        assert design.bound_before == ms(102)
        assert design.bound_after == ms(62)

    def test_monotone(self, diamond_system, two_source_system):
        from repro.buffers.sizing import design_buffers_greedy

        for system, task in ((diamond_system, "sink"), (two_source_system, "fuse")):
            design = design_buffers_greedy(system, task)
            assert design.bound_after <= design.bound_before
            # Re-analysis of the returned plan reproduces the bound.
            buffered = system.with_buffer_plan(design.plan)
            assert disparity_bound(buffered, task) == design.bound_after

    def test_never_worse_than_multi(self, merged_system):
        from repro.buffers.sizing import design_buffers_greedy

        greedy = design_buffers_greedy(merged_system, "sink")
        multi = design_buffers_multi(merged_system, "sink")
        assert greedy.bound_after <= multi.bound_after

    def test_iteration_cap_validated(self, merged_system):
        from repro.buffers.sizing import design_buffers_greedy

        with pytest.raises(ModelError):
            design_buffers_greedy(merged_system, "sink", max_iterations=0)


class TestMultiChainHeuristic:
    def test_merged_improves(self, merged_system):
        design = design_buffers_multi(merged_system, "sink")
        assert design.bound_after < design.bound_before
        assert design.plan  # some buffer was designed
        # Applying the plan reproduces the certified bound.
        buffered = merged_system.with_buffer_plan(design.plan)
        assert (
            disparity_bound(buffered, "sink", method="forkjoin")
            == design.bound_after
        )

    def test_single_chain_noop(self, diamond_system):
        design = design_buffers_multi(diamond_system, "a")
        assert design.plan == {}
        assert design.bound_before == design.bound_after == 0

    def test_never_hurts(self, diamond_system, two_source_system):
        for system, task in ((diamond_system, "sink"), (two_source_system, "fuse")):
            design = design_buffers_multi(system, task)
            assert design.bound_after <= design.bound_before

"""Tests for System construction and validation stages."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.model.validation import (
    validate_deployment,
    validate_schedulability,
    validate_structure,
    validate_system,
)
from repro.units import ms, us


class TestSystemAccessors:
    def test_parameters(self, diamond_system):
        assert diamond_system.T("m") == ms(20)
        assert diamond_system.W("m") == ms(1)
        assert diamond_system.B("m") == ms(1)

    def test_source_response_time_zero(self, diamond_system):
        assert diamond_system.R("s") == 0

    def test_same_unit(self, diamond_system):
        assert diamond_system.same_unit("a", "b")

    def test_in_hp(self, diamond_system):
        assert diamond_system.in_hp("a", "b")
        assert not diamond_system.in_hp("b", "a")
        assert not diamond_system.in_hp("a", "a")

    def test_is_source(self, diamond_system):
        assert diamond_system.is_source("s")
        assert not diamond_system.is_source("m")

    def test_chain_helper(self, diamond_system):
        chain = diamond_system.chain("s", "a", "m")
        assert chain.tasks == ("s", "a", "m")
        with pytest.raises(ModelError):
            diamond_system.chain("s", "m")

    def test_with_channel_capacity(self, diamond_system):
        buffered = diamond_system.with_channel_capacity("s", "a", 3)
        assert buffered.graph.channel("s", "a").capacity == 3
        # original untouched
        assert diamond_system.graph.channel("s", "a").capacity == 1
        # response times shared
        assert buffered.R("m") == diamond_system.R("m")

    def test_with_buffer_plan(self, diamond_system):
        buffered = diamond_system.with_buffer_plan(
            {("s", "a"): 2, ("s", "b"): 4}
        )
        assert buffered.graph.channel("s", "b").capacity == 4

    def test_describe(self, diamond_system):
        text = diamond_system.describe()
        assert "sink" in text
        assert "sources: s" in text


class TestValidation:
    def test_valid_system_builds(self, diamond_graph):
        system = System.build(diamond_graph)
        assert len(system.graph) == 7

    def test_source_with_wcet_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(Task("s", ms(10), us(1), us(1), ecu="e", priority=0))
        graph.add_task(Task("t", ms(10), us(1), us(1), ecu="e", priority=1))
        graph.add_channel("s", "t")
        report = validate_structure(graph)
        assert not report.ok
        assert any("W=B=0" in err for err in report.errors)

    def test_empty_graph_rejected(self):
        report = validate_structure(CauseEffectGraph())
        assert not report.ok

    def test_no_source_rejected(self):
        # single task that is both source and sink but has WCET: the
        # W=B=0 convention fails first.
        graph = CauseEffectGraph()
        graph.add_task(Task("only", ms(10), us(1), us(1), ecu="e", priority=0))
        report = validate_structure(graph)
        assert not report.ok

    def test_disconnected_warns(self, diamond_graph):
        diamond_graph.add_task(source_task("lonely", ms(10), ecu="ecu0", priority=9))
        report = validate_structure(diamond_graph)
        assert report.ok
        assert any("connected" in w for w in report.warnings)

    def test_unmapped_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10)))
        report = validate_deployment(graph)
        assert not report.ok

    def test_duplicate_priority_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("a", ms(10), us(1), us(1), ecu="e", priority=1))
        graph.add_task(Task("b", ms(10), us(1), us(1), ecu="e", priority=1))
        graph.add_channel("s", "a")
        graph.add_channel("s", "b")
        report = validate_deployment(graph)
        assert not report.ok
        assert any("share priority" in err for err in report.errors)

    def test_unschedulable_rejected(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        # Two tasks whose combined demand exceeds the period.
        graph.add_task(Task("a", ms(10), ms(6), ms(1), ecu="e", priority=1))
        graph.add_task(Task("b", ms(10), ms(6), ms(1), ecu="e", priority=2))
        graph.add_channel("s", "a")
        graph.add_channel("a", "b")
        report = validate_schedulability(graph)
        assert not report.ok
        with pytest.raises(ModelError):
            System.build(graph)

    def test_validate_system_aggregates(self, diamond_graph):
        report = validate_system(diamond_graph)
        assert report.ok

    def test_raise_if_failed(self):
        report = validate_structure(CauseEffectGraph())
        with pytest.raises(ModelError):
            report.raise_if_failed()

    def test_build_without_validation_skips_checks(self):
        # Malformed source convention, but validate=False tolerates it;
        # response-time analysis still runs.
        graph = CauseEffectGraph()
        graph.add_task(Task("s", ms(10), us(1), us(1), ecu="e", priority=0))
        system = System.build(graph, validate=False)
        assert system.R("s") == us(1)

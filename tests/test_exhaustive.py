"""Tests for the exhaustive offset-grid verifier."""

import pytest

from repro.core.disparity import disparity_bound
from repro.exact.exhaustive import exhaustive_offset_disparity, grid_size
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.units import ms


def two_sensor_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(30), ecu="e", priority=1))
    graph.add_task(Task("fuse", ms(30), ms(2), ms(2), ecu="e", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


class TestGrid:
    def test_grid_size(self):
        system = two_sensor_system()
        assert grid_size(system, 4) == 4**3

    def test_grid_cap_enforced(self):
        system = two_sensor_system()
        with pytest.raises(ModelError):
            exhaustive_offset_disparity(system, "fuse", steps=20, max_points=100)

    def test_steps_validated(self):
        with pytest.raises(ModelError):
            exhaustive_offset_disparity(two_sensor_system(), "fuse", steps=0)


class TestExhaustiveSoundnessAndTightness:
    def test_grid_max_below_bound(self):
        system = two_sensor_system()
        bound = disparity_bound(system, "fuse")
        result = exhaustive_offset_disparity(system, "fuse", steps=5)
        assert result.points_evaluated == 5**3
        assert result.all_converged
        assert result.disparity <= bound

    def test_grid_finds_large_disparity(self):
        # The bound for this system is 31ms (see test_core_disparity);
        # with a 6-step grid the true maximum must come close: the
        # worst lidar phase is ~T(lidar) - small.
        system = two_sensor_system()
        result = exhaustive_offset_disparity(system, "fuse", steps=6)
        assert result.disparity >= ms(20)

    def test_witness_reproduces_value(self):
        from repro.exact.hyperperiod import steady_state_disparity

        system = two_sensor_system()
        result = exhaustive_offset_disparity(system, "fuse", steps=4)
        graph = system.graph.copy()
        for name, offset in result.offsets.items():
            graph.replace_task(graph.task(name).with_offset(offset))
        variant = System(graph=graph, response_times=system.response_times)
        check = steady_state_disparity(variant, "fuse")
        assert check.disparity == result.disparity

    def test_dominates_any_single_configuration(self):
        from repro.exact.hyperperiod import steady_state_disparity

        system = two_sensor_system()
        result = exhaustive_offset_disparity(system, "fuse", steps=4)
        # A configuration on the grid can't beat the grid maximum.
        graph = system.graph.copy()
        graph.replace_task(graph.task("lidar").with_offset(ms(15)))
        variant = System(graph=graph, response_times=system.response_times)
        value = steady_state_disparity(variant, "fuse").disparity
        # ms(15) is on the 4-step grid of a 30ms period wait: grid is
        # {0, 7.5, 15, 22.5}ms. 15ms is included.
        assert value <= result.disparity

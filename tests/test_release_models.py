"""Non-periodic release models: tables, fault masks, tiers, regimes.

Covers the bounded-jitter and sporadic release models end to end:

* the per-``(seed, task)`` release tables of :mod:`repro.sim.release`
  (determinism, name-keyed streams, job-count bounds, fault masks);
* :class:`FaultPlan` window normalization and the half-open boundary
  rule — a release at exactly ``DropoutWindow.end`` survives in every
  simulation tier, and :class:`StalenessMonitor` ages agree across
  loops at the boundary;
* the differential identity: fast loop, compiled batch loop and
  columnar C kernel versus the general event loop (the semantic
  reference), under implicit and LET semantics, with zero-BCET
  cascades and fault plans in the mix;
* the analysis-regime gate: Theorems 1-3 / Lemmas 4-6 raise a
  structured :class:`RegimeError` on non-periodic systems, the LET
  backward bounds widen by the maximum release gap, and the
  response-time analysis charges jitter/sporadic interference.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis_regime import (
    RegimeError,
    max_release_gap,
    min_release_gap,
    regime_of,
)
from repro.gen import generate_random_scenario
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, ReleaseModel, Task, source_task
from repro.sim.batch import run_batch
from repro.sim.engine import Simulator, simulate
from repro.sim.exec_time import bcet_policy, wcet_policy
from repro.sim.faults import DropoutWindow, FaultPlan, StalenessMonitor
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.sim.release import (
    kept_mask,
    max_jobs,
    needs_tables,
    release_seed,
    release_table,
    split_kept,
)
from repro.units import ms


# ---------------------------------------------------------------------------
# Release tables


def _task(name="t", period=ms(10), release=None, offset=0):
    return Task(
        name,
        period,
        ms(1),
        ms(1),
        ecu="e",
        priority=1,
        offset=offset,
        release_model=release or ReleaseModel.periodic(),
    )


class TestReleaseTables:
    def test_periodic_table_needs_no_seed(self):
        task = _task(offset=ms(2))
        table = release_table(task, None, ms(52))
        assert table == [ms(2), ms(12), ms(22), ms(32), ms(42), ms(52)]

    def test_nonperiodic_requires_seed(self):
        task = _task(release=ReleaseModel.jittered(ms(2)))
        with pytest.raises(ValueError, match="seed"):
            release_table(task, None, ms(100))

    def test_jitter_table_shape(self):
        jmax = ms(3)
        task = _task(release=ReleaseModel.jittered(jmax), offset=ms(1))
        table = release_table(task, 42, ms(200))
        assert table == sorted(table)
        assert len(table) == len(set(table))
        for k, at in enumerate(table):
            base = ms(1) + k * task.period
            assert base <= at <= base + jmax
            assert at <= ms(200)

    def test_sporadic_table_shape(self):
        task = _task(release=ReleaseModel.sporadic(ms(4), ms(9)), offset=ms(2))
        table = release_table(task, 7, ms(500))
        assert table[0] == ms(2)
        for prev, cur in zip(table, table[1:]):
            assert ms(4) <= cur - prev <= ms(9)
        assert table[-1] <= ms(500)

    def test_tables_are_deterministic(self):
        task = _task(release=ReleaseModel.sporadic(ms(4), ms(9)))
        assert release_table(task, 5, ms(400)) == release_table(task, 5, ms(400))
        assert release_table(task, 5, ms(400)) != release_table(task, 6, ms(400))

    def test_stream_is_keyed_on_task_name(self):
        # Same parameters, different names: independent streams.
        a = _task(name="a", release=ReleaseModel.jittered(ms(4)))
        b = _task(name="b", release=ReleaseModel.jittered(ms(4)))
        assert release_table(a, 11, ms(900)) != release_table(b, 11, ms(900))
        assert release_seed(11, "a") != release_seed(11, "b")
        # Offset override == the same task with its offset edited: the
        # stream ignores the offset, so candidate-vector evaluation and
        # structural offset edits draw identical jitters.
        edited = replace(a, offset=ms(3))
        assert release_table(a, 11, ms(900), offset=ms(3)) == release_table(
            edited, 11, ms(900)
        )

    def test_max_jobs_bounds_table_length(self):
        for model in (
            ReleaseModel.periodic(),
            ReleaseModel.jittered(ms(3)),
            ReleaseModel.sporadic(ms(4), ms(9)),
        ):
            task = _task(release=model)
            for seed in (0, 1, 2):
                table = release_table(task, seed, ms(333))
                assert len(table) <= max_jobs(task, ms(333))

    def test_needs_tables(self):
        periodic = [_task(name="p")]
        jittered = [_task(name="j", release=ReleaseModel.jittered(ms(1)))]
        assert not needs_tables(periodic)
        assert needs_tables(jittered)
        assert not needs_tables(periodic, FaultPlan())  # empty plan
        assert needs_tables(periodic, FaultPlan().drop("p", 0, ms(1)))


# ---------------------------------------------------------------------------
# FaultPlan normalization (regression: overlapping windows used to be
# stored as-given, making masks and signatures order-dependent)


class TestFaultPlanNormalization:
    def test_overlapping_windows_merge(self):
        plan = FaultPlan().drop("t", 10, 30).drop("t", 20, 50)
        assert plan.windows_for("t") == (DropoutWindow(10, 50),)

    def test_adjacent_windows_merge(self):
        plan = FaultPlan().drop("t", 10, 20).drop("t", 20, 30)
        assert plan.windows_for("t") == (DropoutWindow(10, 30),)

    def test_duplicate_windows_collapse(self):
        plan = FaultPlan().drop("t", 10, 20).drop("t", 10, 20)
        assert plan.windows_for("t") == (DropoutWindow(10, 20),)

    def test_contained_window_is_absorbed(self):
        plan = FaultPlan().drop("t", 10, 100).drop("t", 30, 40)
        assert plan.windows_for("t") == (DropoutWindow(10, 100),)

    def test_disjoint_windows_sorted(self):
        plan = FaultPlan().drop("t", 50, 60).drop("t", 10, 20)
        assert plan.windows_for("t") == (
            DropoutWindow(10, 20),
            DropoutWindow(50, 60),
        )

    def test_insertion_order_never_changes_shape_or_signature(self):
        windows = [(10, 30), (20, 50), (60, 70), (5, 12)]
        plans = []
        for ordering in ([0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]):
            plan = FaultPlan()
            for i in ordering:
                plan.drop("t", *windows[i])
            plans.append(plan)
        shapes = {p.windows_for("t") for p in plans}
        signatures = {p.signature() for p in plans}
        assert len(shapes) == 1
        assert len(signatures) == 1
        assert plans[0].windows_for("t") == (
            DropoutWindow(5, 50),
            DropoutWindow(60, 70),
        )

    def test_windows_for_unknown_task_is_empty(self):
        assert FaultPlan().windows_for("ghost") == ()

    def test_is_dropped_matches_normalized_windows(self):
        plan = FaultPlan().drop("t", 10, 30).drop("t", 20, 50)
        assert plan.is_dropped("t", 10)
        assert plan.is_dropped("t", 49)
        assert not plan.is_dropped("t", 50)  # half-open after merge
        assert not plan.is_dropped("t", 9)


# ---------------------------------------------------------------------------
# Boundary semantics: a release at exactly ``window.end`` survives


def _fusion_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(30), ecu="e", priority=1, offset=ms(1)))
    graph.add_task(Task("fuse", ms(30), ms(2), ms(1), ecu="e", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


class TestBoundarySemantics:
    # cam releases at 0, 10ms, 20ms, ...; a window ending at exactly
    # ms(200) must keep the release at ms(200).

    def test_kept_mask_is_half_open(self):
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        table = [ms(90), ms(100), ms(190), ms(200), ms(210)]
        assert kept_mask(plan, "cam", table) == [True, False, False, True, True]
        kept, dropped = split_kept(plan, "cam", table)
        assert kept == [ms(90), ms(200), ms(210)]
        assert dropped == 2

    @pytest.mark.parametrize("loop", ["fast", "general"])
    def test_release_at_window_end_not_suppressed(self, loop):
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        table = JobTableMonitor()
        Simulator(
            _fusion_system(),
            ms(300),
            seed=3,
            faults=plan,
            policy=wcet_policy,
            observers=[table],
            loop=loop,
        ).run()
        releases = {j.release for j in table.by_task("cam")}
        assert ms(200) in releases
        assert ms(90) in releases
        assert not any(ms(100) <= r < ms(200) for r in releases)

    def test_boundary_identical_across_loops_and_batch_tiers(self):
        system = _fusion_system()
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        results = {}
        for loop in ("fast", "general"):
            monitor = DisparityMonitor(["fuse"])
            res = Simulator(
                system,
                ms(300),
                seed=9,
                faults=plan,
                policy=wcet_policy,
                observers=[monitor],
                loop=loop,
            ).run()
            results[loop] = (monitor.disparity("fuse"), res.stats.jobs_dropped)
        assert results["fast"] == results["general"]
        # Exactly 10 suppressed cam releases: 100, 110, ..., 190 —
        # NOT the one at 200.
        assert results["fast"][1] == 10
        # Batched tiers agree replication for replication.
        per_engine = {}
        for engine in ("simulator", "compiled", "auto"):
            per_engine[engine] = run_batch(
                system,
                "fuse",
                sims=4,
                duration=ms(300),
                rng=random.Random(5),
                policy=wcet_policy,
                faults=plan,
                engine=engine,
            ).disparities
        assert per_engine["compiled"] == per_engine["simulator"]
        assert per_engine["auto"] == per_engine["simulator"]

    def test_staleness_ages_agree_at_boundary(self):
        # Ending the window exactly at a release must restore freshness
        # just like ending it one instant earlier: both keep the
        # release at ms(200), so the observed max ages are identical —
        # in both loops.
        system = _fusion_system()
        ages = {}
        for label, end in (("at-release", ms(200)), ("just-before", ms(200) - 1)):
            for loop in ("fast", "general"):
                monitor = StalenessMonitor(["fuse"])
                Simulator(
                    system,
                    ms(450),
                    seed=3,
                    faults=FaultPlan().drop("cam", ms(100), end),
                    policy=wcet_policy,
                    observers=[monitor],
                    loop=loop,
                ).run()
                ages[(label, loop)] = monitor.age_for("fuse", "cam")
        assert ages[("at-release", "fast")] == ages[("at-release", "general")]
        assert ages[("just-before", "fast")] == ages[("just-before", "general")]
        assert ages[("at-release", "fast")] == ages[("just-before", "fast")]


# ---------------------------------------------------------------------------
# Differential suite: all tiers versus the general event loop


def _with_release_models(system: System, seed: int, *, zero_bcet=False) -> System:
    """Reassign release models task by task from a dedicated RNG.

    Roughly a third of tasks each become jittered / sporadic / stay
    periodic, so mixed systems are the common case; optionally some
    compute tasks drop to BCET 0 to force same-instant cascades.
    """
    rng = random.Random(seed)
    graph = system.graph.copy()
    for task in system.graph.tasks:
        u = rng.random()
        if u < 1 / 3:
            jitter = max(1, task.period // rng.choice((3, 5, 8)))
            model = ReleaseModel.jittered(min(task.period - 1, jitter))
        elif u < 2 / 3:
            lo = max(1, task.period // 2)
            hi = task.period + task.period // 2
            model = ReleaseModel.sporadic(lo, hi)
        else:
            model = ReleaseModel.periodic()
        out = task.with_release_model(model)
        if zero_bcet and not task.is_instantaneous and rng.random() < 0.5:
            out = replace(out, bcet=0)
        graph.replace_task(out)
    return System(graph=graph, response_times=system.response_times)


def _loop_run(system, duration, seed, loop, *, semantics, faults=None, policy=None):
    job_table = JobTableMonitor()
    disparity = DisparityMonitor(warmup=duration // 4)
    kwargs = {} if policy is None else {"policy": policy}
    result = Simulator(
        system,
        duration,
        seed=seed,
        observers=[job_table, disparity],
        loop=loop,
        semantics=semantics,
        faults=faults,
        **kwargs,
    ).run()
    return result, job_table, disparity


def _assert_loops_agree(system, duration, seed, *, semantics, faults=None,
                        policy=None):
    res_f, jobs_f, disp_f = _loop_run(
        system, duration, seed, "fast",
        semantics=semantics, faults=faults, policy=policy,
    )
    res_g, jobs_g, disp_g = _loop_run(
        system, duration, seed, "general",
        semantics=semantics, faults=faults, policy=policy,
    )
    assert res_f.stats.jobs_released == res_g.stats.jobs_released
    assert res_f.stats.jobs_completed == res_g.stats.jobs_completed
    assert res_f.stats.jobs_dropped == res_g.stats.jobs_dropped
    assert res_f.stats.busy_time == res_g.stats.busy_time
    assert jobs_f.jobs == jobs_g.jobs
    assert disp_f.max_disparity == disp_g.max_disparity
    assert disp_f.samples == disp_g.samples


def _assert_batch_matches_general(system, sink, *, duration, seed, semantics,
                                  faults=None, policy="uniform"):
    from repro.sim.exec_time import named_policy

    per_engine = {}
    for engine in ("simulator", "compiled", "auto"):
        per_engine[engine] = run_batch(
            system,
            sink,
            sims=3,
            duration=duration,
            warmup=duration // 4,
            rng=random.Random(seed),
            policy=named_policy(policy),
            semantics=semantics,
            faults=faults,
            engine=engine,
        )
    assert per_engine["compiled"].disparities == per_engine["simulator"].disparities
    assert per_engine["auto"].disparities == per_engine["simulator"].disparities


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=10),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_fast_loop_matches_general_nonperiodic(seed, n_tasks, semantics):
    scenario = generate_random_scenario(n_tasks, random.Random(seed))
    system = _with_release_models(scenario.system, seed ^ 0xC0FFEE)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_loops_agree(system, duration, seed, semantics=semantics)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fast_loop_matches_general_zero_bcet_cascades(seed):
    scenario = generate_random_scenario(8, random.Random(seed))
    system = _with_release_models(scenario.system, seed ^ 0xBEE, zero_bcet=True)
    duration = 3 * max(task.period for task in system.graph.tasks)
    _assert_loops_agree(system, duration, seed, semantics="implicit",
                        policy=bcet_policy)
    _assert_loops_agree(system, duration, seed, semantics="implicit")


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_fast_loop_matches_general_faulted_nonperiodic(seed, semantics):
    scenario = generate_random_scenario(7, random.Random(seed))
    system = _with_release_models(scenario.system, seed ^ 0xFA017)
    duration = 3 * max(task.period for task in system.graph.tasks)
    rng = random.Random(seed ^ 0xD0)
    plan = FaultPlan()
    victims = rng.sample([t.name for t in system.graph.tasks], 2)
    for name in victims:
        start = rng.randrange(duration // 2)
        plan.drop(name, start, start + rng.randrange(1, duration // 3))
    _assert_loops_agree(system, duration, seed, semantics=semantics, faults=plan)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_batch_tiers_match_simulator_nonperiodic(seed, semantics):
    scenario = generate_random_scenario(7, random.Random(seed))
    system = _with_release_models(scenario.system, seed ^ 0x7AB)
    duration = 2 * max(task.period for task in system.graph.tasks)
    _assert_batch_matches_general(
        system, scenario.sink, duration=duration, seed=seed, semantics=semantics
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_batch_tiers_match_simulator_faulted_nonperiodic(seed):
    scenario = generate_random_scenario(7, random.Random(seed))
    system = _with_release_models(scenario.system, seed ^ 0x9A1)
    duration = 2 * max(task.period for task in system.graph.tasks)
    rng = random.Random(seed ^ 0x33)
    name = rng.choice([t.name for t in system.graph.tasks])
    start = rng.randrange(duration // 2)
    plan = FaultPlan().drop(name, start, start + duration // 4 + 1)
    _assert_batch_matches_general(
        system, scenario.sink, duration=duration, seed=seed,
        semantics="implicit", faults=plan, policy="wcet",
    )


# ---------------------------------------------------------------------------
# Analysis regimes


def _jittered_system() -> System:
    system = _fusion_system()
    graph = system.graph.copy()
    cam = graph.task("cam")
    graph.replace_task(cam.with_release_model(ReleaseModel.jittered(ms(2))))
    return System.build(graph)


def _sporadic_system() -> System:
    system = _fusion_system()
    graph = system.graph.copy()
    lidar = graph.task("lidar")
    graph.replace_task(
        lidar.with_release_model(ReleaseModel.sporadic(ms(20), ms(45)))
    )
    return System.build(graph)


class TestAnalysisRegime:
    def test_regime_kinds(self):
        assert regime_of(_fusion_system()).kind == "periodic"
        assert regime_of(_jittered_system()).kind == "jitter"
        assert regime_of(_sporadic_system()).kind == "sporadic"
        mixed = _jittered_system().graph.copy()
        mixed.replace_task(
            mixed.task("lidar").with_release_model(
                ReleaseModel.sporadic(ms(20), ms(45))
            )
        )
        assert (
            regime_of(System.build(mixed)).kind == "mixed"
        )

    def test_release_gaps(self):
        periodic = _task(period=ms(10))
        assert max_release_gap(periodic) == ms(10)
        assert min_release_gap(periodic) == ms(10)
        jittered = _task(period=ms(10), release=ReleaseModel.jittered(ms(2)))
        assert max_release_gap(jittered) == ms(12)
        assert min_release_gap(jittered) == ms(8)
        sporadic = _task(period=ms(10), release=ReleaseModel.sporadic(ms(4), ms(9)))
        assert max_release_gap(sporadic) == ms(9)
        assert min_release_gap(sporadic) == ms(4)

    def test_theorems_gated_with_structured_error(self):
        from repro.core.disparity import worst_case_disparity

        system = _jittered_system()
        with pytest.raises(RegimeError) as info:
            worst_case_disparity(system, "fuse")
        assert info.value.regime.kind == "jitter"
        assert ("cam", ReleaseModel.jittered(ms(2)).describe()) in (
            info.value.regime.nonperiodic
        )
        assert "Theorems 1-3" in info.value.analysis
        assert "simulation-only" in str(info.value)

    def test_lemmas_gated(self):
        from repro.buffers.bounds import buffered_backward_bounds
        from repro.chains.backward import bcbt_lower, wcbt_upper
        from repro.model.chain import Chain

        system = _sporadic_system()
        chain = Chain(("lidar", "fuse"))
        for call in (
            lambda: wcbt_upper(chain, system),
            lambda: bcbt_lower(chain, system),
            lambda: buffered_backward_bounds(chain, system, 2),
        ):
            with pytest.raises(RegimeError) as info:
                call()
            assert info.value.regime.kind == "sporadic"

    def test_session_regime_and_simulation_still_work(self):
        from repro.api import AnalysisSession

        session = AnalysisSession(_jittered_system())
        assert session.regime.kind == "jitter"
        assert not session.regime.analytical
        with pytest.raises(RegimeError):
            session.worst_case("fuse")
        observed = session.observed_disparity(
            "fuse", sims=2, duration=ms(300), seed=4
        )
        assert observed >= 0

    def test_let_bounds_widen_by_max_release_gap(self):
        from repro.let.analysis import bcbt_lower_let, wcbt_upper_let
        from repro.model.chain import Chain

        chain = Chain(("cam", "fuse"))
        periodic_w = wcbt_upper_let(chain, _fusion_system())
        jittered_w = wcbt_upper_let(chain, _jittered_system())
        # cam is the (source) producer of the only hop: the bound
        # widens by exactly its jitter.
        assert jittered_w == periodic_w + ms(2)
        # The lower bound survives unchanged.
        assert bcbt_lower_let(chain, _jittered_system()) == bcbt_lower_let(
            chain, _fusion_system()
        )

    def test_rta_charges_jitter_and_sporadic_interference(self):
        from repro.sched.response_time import response_time_np_fp

        def fuse_r(interferer_model):
            # The lower-priority blocker stretches the start-time busy
            # window past the interferer's minimum gap, so denser
            # releases actually land inside it.
            graph = CauseEffectGraph()
            graph.add_task(
                Task("hp", ms(10), ms(3), ms(1), ecu="e", priority=0,
                     release_model=interferer_model)
            )
            graph.add_task(Task("fuse", ms(40), ms(3), ms(1), ecu="e", priority=1))
            graph.add_task(Task("lp", ms(40), ms(6), ms(1), ecu="e", priority=5))
            tasks = list(graph.tasks)
            return response_time_np_fp(graph.task("fuse"), tasks)

        base = fuse_r(ReleaseModel.periodic())
        jittered = fuse_r(ReleaseModel.jittered(ms(9)))
        sporadic = fuse_r(ReleaseModel.sporadic(ms(4), ms(10)))
        # Jitter shifts the interferer's grid maximally early; a
        # sporadic interferer releases every min_gap inside the window.
        assert jittered > base
        assert sporadic > base

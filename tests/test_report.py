"""Tests for the full-system report."""

import pytest

from repro.report import analyze_system, render_report
from repro.units import ms


class TestAnalyzeSystem:
    def test_merged_system(self, merged_system):
        report = analyze_system(merged_system)
        assert report.n_tasks == 5
        assert report.n_channels == 4
        assert "e" not in report.utilizations or True  # units named ecu0
        assert len(report.sinks) == 1
        sink = report.sinks[0]
        assert sink.task == "sink"
        assert sink.n_chains == 2
        assert sink.p_diff == ms(102)
        assert sink.s_diff == ms(102)

    def test_chain_reports_consistent(self, diamond_system):
        from repro.chains.backward import wcbt_upper

        report = analyze_system(diamond_system)
        sink = report.sinks[0]
        for chain_report in sink.chains:
            assert chain_report.wcbt == wcbt_upper(
                chain_report.chain, diamond_system
            )
            assert chain_report.bcbt <= chain_report.wcbt
            assert chain_report.max_age >= chain_report.wcbt
            assert chain_report.max_reaction > 0

    def test_requirements(self, merged_system):
        report = analyze_system(
            merged_system, requirements={"sink": ms(150)}
        )
        assert report.sinks[0].requirement_met is True
        report_tight = analyze_system(
            merged_system, requirements={"sink": ms(100)}
        )
        assert report_tight.sinks[0].requirement_met is False

    def test_no_requirement(self, merged_system):
        report = analyze_system(merged_system)
        assert report.sinks[0].requirement_met is None

    def test_response_times_included(self, merged_system):
        report = analyze_system(merged_system)
        assert report.response_times["sink"] == merged_system.R("sink")


class TestRenderReport:
    def test_render_contains_key_facts(self, merged_system):
        text = render_report(
            analyze_system(merged_system, requirements={"sink": ms(150)})
        )
        assert "5 tasks" in text
        assert "S-diff 102.000ms" in text
        assert "requirement 150.000ms: OK" in text
        assert "sa -> pa -> sink" in text

    def test_render_truncates_long_chain_lists(self, diamond_system):
        text = render_report(
            analyze_system(diamond_system), max_chains_per_sink=2
        )
        assert "and 2 more chains" in text

    def test_render_utilization(self, merged_system):
        text = render_report(analyze_system(merged_system))
        assert "utilization per unit" in text
        assert "ecu0" in text

"""Tests for the WATERS 2015 parameter sampler."""

import random
from collections import Counter

import pytest

from repro.gen.waters import (
    ACET_US,
    BCET_FACTOR_RANGE,
    PERIOD_SHARE_PERCENT,
    PERIODS_MS,
    WCET_FACTOR_RANGE,
    TaskParameters,
    WatersSampler,
    expected_utilization_per_task,
)
from repro.model.task import ModelError
from repro.units import ms, us


class TestTables:
    def test_period_classes_consistent(self):
        assert set(PERIODS_MS) == set(PERIOD_SHARE_PERCENT)
        assert set(PERIODS_MS) == set(ACET_US)
        assert set(PERIODS_MS) == set(BCET_FACTOR_RANGE)
        assert set(PERIODS_MS) == set(WCET_FACTOR_RANGE)

    def test_factor_ranges_ordered(self):
        for period in PERIODS_MS:
            lo, hi = BCET_FACTOR_RANGE[period]
            assert 0 < lo <= hi <= 1.0
            lo, hi = WCET_FACTOR_RANGE[period]
            assert 1.0 <= lo <= hi

    def test_dominant_classes(self):
        # Table III: 10 ms and 20 ms dominate the periodic classes.
        top = sorted(PERIOD_SHARE_PERCENT, key=PERIOD_SHARE_PERCENT.get)[-2:]
        assert set(top) == {10, 20}


class TestSampler:
    def test_periods_from_table(self, rng):
        sampler = WatersSampler(rng)
        for _ in range(200):
            assert sampler.sample_period_ms() in PERIODS_MS

    def test_distribution_roughly_matches(self):
        sampler = WatersSampler(random.Random(99))
        counts = Counter(sampler.sample_period_ms() for _ in range(20000))
        total_share = sum(PERIOD_SHARE_PERCENT.values())
        for period in (10, 20, 100):  # the big buckets
            expected = PERIOD_SHARE_PERCENT[period] / total_share
            observed = counts[period] / 20000
            assert abs(observed - expected) < 0.02

    def test_parameters_respect_ranges(self, rng):
        sampler = WatersSampler(rng)
        for _ in range(300):
            params = sampler.sample_parameters()
            period_ms = params.period // ms(1)
            assert period_ms in PERIODS_MS
            assert 0 < params.bcet <= params.wcet
            acet = us(ACET_US[period_ms])
            f_lo, f_hi = WCET_FACTOR_RANGE[period_ms]
            assert params.wcet <= f_hi * acet + 1
            assert params.wcet >= f_lo * acet - 1
            b_lo, b_hi = BCET_FACTOR_RANGE[period_ms]
            assert params.bcet <= b_hi * acet + 1
            assert params.bcet >= b_lo * acet - 1

    def test_fixed_period_class(self, rng):
        sampler = WatersSampler(rng)
        params = sampler.sample_parameters(period_ms=50)
        assert params.period == ms(50)
        assert params.acet_us == ACET_US[50]

    def test_unknown_period_rejected(self, rng):
        sampler = WatersSampler(rng)
        with pytest.raises(ModelError):
            sampler.sample_parameters(period_ms=7)

    def test_sample_many(self, rng):
        sampler = WatersSampler(rng)
        assert len(sampler.sample_many(10)) == 10
        assert sampler.sample_many(0) == []
        with pytest.raises(ModelError):
            sampler.sample_many(-1)

    def test_deterministic_per_seed(self):
        a = WatersSampler(random.Random(5)).sample_many(20)
        b = WatersSampler(random.Random(5)).sample_many(20)
        assert a == b


class TestUtilization:
    def test_expected_utilization_is_tiny(self):
        # WATERS tasks are execution-light: microseconds against
        # milliseconds.  The expected utilization per task is around
        # 1% — this is what makes 35-task systems schedulable.
        expected = expected_utilization_per_task()
        assert 0 < expected < 0.02


class TestReleaseModelSampler:
    def test_validation(self):
        from repro.gen.waters import ReleaseModelSampler

        with pytest.raises(ModelError):
            ReleaseModelSampler(jitter_fraction=1.2)
        with pytest.raises(ModelError):
            ReleaseModelSampler(jitter_fraction=0.6, sporadic_fraction=0.6)
        with pytest.raises(ModelError):
            ReleaseModelSampler(jitter_fraction=0.1, jitter_scale=0.0)
        with pytest.raises(ModelError):
            ReleaseModelSampler(sporadic_fraction=0.1, sporadic_gap=(2.0, 1.0))

    def test_trivial_sampler_draws_nothing(self):
        # Stream hygiene: a disabled sampler must not consume the
        # generator, so enabling the mechanism shifts no existing
        # stream (goldens, scenarios, offsets).
        from repro.gen.waters import ReleaseModelSampler

        sampler = ReleaseModelSampler()
        assert sampler.is_trivial
        rng = random.Random(7)
        state = rng.getstate()
        model = sampler.sample(ms(10), rng)
        assert model.is_periodic
        assert rng.getstate() == state

    def test_fractions_roughly_respected(self):
        from repro.gen.waters import ReleaseModelSampler

        sampler = ReleaseModelSampler(
            jitter_fraction=0.3, sporadic_fraction=0.2
        )
        rng = random.Random(3)
        kinds = Counter(
            sampler.sample(ms(10), rng).kind for _ in range(2000)
        )
        assert 0.25 < kinds["jitter"] / 2000 < 0.35
        assert 0.15 < kinds["sporadic"] / 2000 < 0.25
        assert 0.45 < kinds["periodic"] / 2000 < 0.55

    def test_jitter_clamped_below_period(self):
        from repro.gen.waters import ReleaseModelSampler

        sampler = ReleaseModelSampler(jitter_fraction=1.0, jitter_scale=0.9)
        rng = random.Random(5)
        for period in (2, 3, ms(1), ms(10)):
            model = sampler.sample(period, rng)
            assert model.kind == "jitter"
            assert 1 <= model.jitter < period

    def test_sporadic_gaps_scale_with_period(self):
        from repro.gen.waters import ReleaseModelSampler

        sampler = ReleaseModelSampler(
            sporadic_fraction=1.0, sporadic_gap=(0.5, 2.0)
        )
        model = sampler.sample(ms(10), random.Random(1))
        assert model.kind == "sporadic"
        assert model.min_gap == ms(5)
        assert model.max_gap == ms(20)

    def test_waters_sampler_attaches_models(self):
        from repro.gen.waters import ReleaseModelSampler, WatersSampler

        sampler = WatersSampler(
            random.Random(11),
            release_models=ReleaseModelSampler(jitter_fraction=0.5),
        )
        kinds = Counter(
            sampler.sample_parameters().release_model.kind for _ in range(200)
        )
        assert kinds["jitter"] > 0
        assert kinds["periodic"] > 0

    def test_waters_sampler_stream_unchanged_without_models(self):
        from repro.gen.waters import WatersSampler

        plain = WatersSampler(random.Random(9))
        gated = WatersSampler(random.Random(9), release_models=None)
        for _ in range(50):
            assert plain.sample_parameters() == gated.sample_parameters()

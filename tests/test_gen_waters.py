"""Tests for the WATERS 2015 parameter sampler."""

import random
from collections import Counter

import pytest

from repro.gen.waters import (
    ACET_US,
    BCET_FACTOR_RANGE,
    PERIOD_SHARE_PERCENT,
    PERIODS_MS,
    WCET_FACTOR_RANGE,
    TaskParameters,
    WatersSampler,
    expected_utilization_per_task,
)
from repro.model.task import ModelError
from repro.units import ms, us


class TestTables:
    def test_period_classes_consistent(self):
        assert set(PERIODS_MS) == set(PERIOD_SHARE_PERCENT)
        assert set(PERIODS_MS) == set(ACET_US)
        assert set(PERIODS_MS) == set(BCET_FACTOR_RANGE)
        assert set(PERIODS_MS) == set(WCET_FACTOR_RANGE)

    def test_factor_ranges_ordered(self):
        for period in PERIODS_MS:
            lo, hi = BCET_FACTOR_RANGE[period]
            assert 0 < lo <= hi <= 1.0
            lo, hi = WCET_FACTOR_RANGE[period]
            assert 1.0 <= lo <= hi

    def test_dominant_classes(self):
        # Table III: 10 ms and 20 ms dominate the periodic classes.
        top = sorted(PERIOD_SHARE_PERCENT, key=PERIOD_SHARE_PERCENT.get)[-2:]
        assert set(top) == {10, 20}


class TestSampler:
    def test_periods_from_table(self, rng):
        sampler = WatersSampler(rng)
        for _ in range(200):
            assert sampler.sample_period_ms() in PERIODS_MS

    def test_distribution_roughly_matches(self):
        sampler = WatersSampler(random.Random(99))
        counts = Counter(sampler.sample_period_ms() for _ in range(20000))
        total_share = sum(PERIOD_SHARE_PERCENT.values())
        for period in (10, 20, 100):  # the big buckets
            expected = PERIOD_SHARE_PERCENT[period] / total_share
            observed = counts[period] / 20000
            assert abs(observed - expected) < 0.02

    def test_parameters_respect_ranges(self, rng):
        sampler = WatersSampler(rng)
        for _ in range(300):
            params = sampler.sample_parameters()
            period_ms = params.period // ms(1)
            assert period_ms in PERIODS_MS
            assert 0 < params.bcet <= params.wcet
            acet = us(ACET_US[period_ms])
            f_lo, f_hi = WCET_FACTOR_RANGE[period_ms]
            assert params.wcet <= f_hi * acet + 1
            assert params.wcet >= f_lo * acet - 1
            b_lo, b_hi = BCET_FACTOR_RANGE[period_ms]
            assert params.bcet <= b_hi * acet + 1
            assert params.bcet >= b_lo * acet - 1

    def test_fixed_period_class(self, rng):
        sampler = WatersSampler(rng)
        params = sampler.sample_parameters(period_ms=50)
        assert params.period == ms(50)
        assert params.acet_us == ACET_US[50]

    def test_unknown_period_rejected(self, rng):
        sampler = WatersSampler(rng)
        with pytest.raises(ModelError):
            sampler.sample_parameters(period_ms=7)

    def test_sample_many(self, rng):
        sampler = WatersSampler(rng)
        assert len(sampler.sample_many(10)) == 10
        assert sampler.sample_many(0) == []
        with pytest.raises(ModelError):
            sampler.sample_many(-1)

    def test_deterministic_per_seed(self):
        a = WatersSampler(random.Random(5)).sample_many(20)
        b = WatersSampler(random.Random(5)).sample_many(20)
        assert a == b


class TestUtilization:
    def test_expected_utilization_is_tiny(self):
        # WATERS tasks are execution-light: microseconds against
        # milliseconds.  The expected utilization per task is around
        # 1% — this is what makes 35-task systems schedulable.
        expected = expected_utilization_per_task()
        assert 0 < expected < 0.02

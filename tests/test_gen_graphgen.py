"""Tests for the random graph generators."""

import random

import pytest

from repro.gen.graphgen import (
    chain_graph,
    count_source_sink_paths,
    deploy,
    from_networkx,
    fusion_pipeline_graph,
    merged_chain_pair,
    random_cause_effect_graph,
    random_dag_edges,
    to_networkx,
)
from repro.model.task import ModelError
from repro.model.validation import validate_structure


class TestRandomDagEdges:
    def test_single_sink(self, rng):
        for n in (5, 12, 30):
            edges = random_dag_edges(n, round(1.5 * n), rng)
            out_degree = [0] * n
            for a, b in edges:
                assert a < b  # DAG orientation
                out_degree[a] += 1
            sinks = [v for v in range(n) if out_degree[v] == 0]
            assert sinks == [n - 1]

    def test_no_isolated_nodes(self, rng):
        edges = random_dag_edges(10, 5, rng)
        touched = set()
        for a, b in edges:
            touched.add(a)
            touched.add(b)
        assert touched == set(range(10))

    def test_too_few_tasks_rejected(self, rng):
        with pytest.raises(ModelError):
            random_dag_edges(1, 1, rng)

    def test_edge_count_capped(self, rng):
        edges = random_dag_edges(5, 100, rng)
        assert len(edges) <= 10  # C(5, 2)


class TestGnmGraph:
    def test_structure_valid(self, rng):
        for n in (5, 20, 35):
            graph = random_cause_effect_graph(n, rng)
            assert len(graph) == n
            report = validate_structure(graph)
            assert report.ok, report.errors
            assert len(graph.sinks()) == 1

    def test_sources_have_zero_wcet(self, rng):
        graph = random_cause_effect_graph(15, rng)
        for name in graph.sources():
            task = graph.task(name)
            assert task.wcet == 0 and task.bcet == 0

    def test_deterministic_per_seed(self):
        g1 = random_cause_effect_graph(12, random.Random(3))
        g2 = random_cause_effect_graph(12, random.Random(3))
        assert [t.name for t in g1.tasks] == [t.name for t in g2.tasks]
        assert [(c.src, c.dst) for c in g1.channels] == [
            (c.src, c.dst) for c in g2.channels
        ]


class TestFusionPipeline:
    def test_exact_task_count(self, rng):
        for n in (4, 5, 10, 20, 35):
            graph = fusion_pipeline_graph(n, rng)
            assert len(graph) == n, f"n={n}"

    def test_single_sink_multi_source(self, rng):
        graph = fusion_pipeline_graph(20, rng)
        assert len(graph.sinks()) == 1
        assert len(graph.sources()) >= 2
        assert validate_structure(graph).ok

    def test_all_sources_reach_sink(self, rng):
        graph = fusion_pipeline_graph(25, rng)
        sink = graph.sinks()[0]
        for source in graph.sources():
            assert next(graph.paths_between(source, sink), None) is not None

    def test_too_small_rejected(self, rng):
        with pytest.raises(ModelError):
            fusion_pipeline_graph(3, rng)

    def test_fusion_node_is_bottleneck(self, rng):
        # Every source-to-sink chain passes through "fuse".
        graph = fusion_pipeline_graph(15, rng)
        sink = graph.sinks()[0]
        for source in graph.sources():
            for path in graph.paths_between(source, sink):
                assert "fuse" in path


class TestMergedChains:
    def test_structure(self, rng):
        graph = merged_chain_pair(6, rng)
        assert len(graph) == 2 * 6 - 1  # shared sink
        assert set(graph.sources()) == {"a0", "b0"}
        assert graph.sinks() == ("sink",)

    def test_chains_disjoint_except_sink(self, rng):
        graph = merged_chain_pair(5, rng)
        paths = list(graph.paths_between("a0", "sink"))
        assert len(paths) == 1
        assert not any(task.startswith("b") for task in paths[0])

    def test_minimum_size(self, rng):
        with pytest.raises(ModelError):
            merged_chain_pair(2, rng)


class TestChainGraph:
    def test_linear(self, rng):
        graph = chain_graph(5, rng)
        assert len(graph) == 5
        assert graph.sources() == ("c0",)
        assert graph.sinks() == ("c4",)

    def test_too_small(self, rng):
        with pytest.raises(ModelError):
            chain_graph(1, rng)


class TestPathCounting:
    def test_matches_enumeration(self, rng):
        from repro.model.chain import enumerate_source_chains

        for _ in range(5):
            graph = random_cause_effect_graph(12, rng)
            sink = graph.sinks()[0]
            counted = count_source_sink_paths(graph, sink)
            enumerated = len(enumerate_source_chains(graph, sink))
            assert counted == enumerated


class TestDeploy:
    def test_all_mapped_and_prioritized(self, rng):
        graph = fusion_pipeline_graph(12, rng)
        deployed = deploy(graph, rng, n_ecus=2)
        for task in deployed.tasks:
            assert task.ecu is not None
            assert task.priority is not None

    def test_message_tasks_inserted(self, rng):
        # With several ECUs some edge crosses almost surely at n=20.
        graph = fusion_pipeline_graph(20, rng)
        deployed = deploy(graph, rng, n_ecus=3)
        messages = [t for t in deployed.tasks if t.kind == "message"]
        assert messages  # statistically certain with 3 ECUs
        assert all(t.ecu == "can0" for t in messages)

    def test_single_ecu_no_messages(self, rng):
        graph = fusion_pipeline_graph(12, rng)
        deployed = deploy(graph, rng, n_ecus=1)
        assert not [t for t in deployed.tasks if t.kind == "message"]


class TestNetworkxInterop:
    def test_roundtrip(self, rng):
        graph = deploy(fusion_pipeline_graph(10, rng), rng, n_ecus=1)
        digraph = to_networkx(graph)
        back = from_networkx(digraph)
        assert set(back.task_names) == set(graph.task_names)
        assert {(c.src, c.dst) for c in back.channels} == {
            (c.src, c.dst) for c in graph.channels
        }
        for name in graph.task_names:
            assert back.task(name).period == graph.task(name).period
            assert back.task(name).ecu == graph.task(name).ecu

"""Tests for release-dropout fault injection."""

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.engine import simulate
from repro.sim.exec_time import wcet_policy
from repro.sim.faults import DropoutWindow, FaultPlan, StalenessMonitor
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.units import ms


def fusion_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(30), ecu="e", priority=1, offset=ms(1)))
    graph.add_task(Task("fuse", ms(30), ms(2), ms(1), ecu="e", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


class TestFaultPlan:
    def test_window_validation(self):
        with pytest.raises(ModelError):
            DropoutWindow(start=5, end=5)
        with pytest.raises(ModelError):
            DropoutWindow(start=-1, end=5)

    def test_is_dropped(self):
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        assert plan.is_dropped("cam", ms(100))
        assert plan.is_dropped("cam", ms(199))
        assert not plan.is_dropped("cam", ms(200))  # half-open
        assert not plan.is_dropped("cam", ms(99))
        assert not plan.is_dropped("lidar", ms(150))

    def test_multiple_windows(self):
        plan = FaultPlan().drop("cam", ms(10), ms(20)).drop("cam", ms(50), ms(60))
        assert plan.is_dropped("cam", ms(15))
        assert plan.is_dropped("cam", ms(55))
        assert not plan.is_dropped("cam", ms(30))

    def test_unknown_task_rejected_by_simulator(self):
        plan = FaultPlan().drop("ghost", 0, ms(10))
        with pytest.raises(ModelError):
            simulate(fusion_system(), ms(50), faults=plan)

    def test_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan().drop("cam", 0, 1)


class TestDropoutEffects:
    def test_dropped_jobs_counted(self):
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        result = simulate(
            fusion_system(), ms(300), faults=plan, policy=wcet_policy
        )
        # 10 cam releases suppressed (100, 110, ..., 190).
        assert result.stats.jobs_dropped == 10

    def test_consumer_reads_stale_data_during_dropout(self):
        plan = FaultPlan().drop("cam", ms(100), ms(400))
        monitor = StalenessMonitor(["fuse"])
        simulate(fusion_system(), ms(450), faults=plan, policy=wcet_policy,
                 observers=[monitor])
        # The last cam sample before the fault is at t=90; fuse jobs up
        # to t=390 keep reading it: age grows to ~300ms, far above the
        # fault-free worst case (< 10ms + response time).
        age = monitor.age_for("fuse", "cam")
        assert age is not None
        assert age >= ms(290)

    def test_fault_free_staleness_is_small(self):
        monitor = StalenessMonitor(["fuse"], warmup=ms(60))
        simulate(fusion_system(), ms(450), policy=wcet_policy,
                 observers=[monitor])
        age = monitor.age_for("fuse", "cam")
        assert age is not None
        assert age < ms(15)

    def test_disparity_grows_during_dropout(self):
        # With the camera dark, fuse fuses a fresh lidar sample with an
        # ever older camera sample: disparity exceeds the fault-free
        # analytic bound (which assumes no dropouts).
        from repro.core.disparity import disparity_bound

        system = fusion_system()
        bound = disparity_bound(system, "fuse")
        plan = FaultPlan().drop("cam", ms(100), ms(400))
        monitor = DisparityMonitor(["fuse"])
        simulate(system, ms(450), faults=plan, policy=wcet_policy,
                 observers=[monitor])
        assert monitor.disparity("fuse") > bound

    def test_recovery_after_window(self):
        plan = FaultPlan().drop("cam", ms(100), ms(200))
        late = StalenessMonitor(["fuse"], warmup=ms(250))
        simulate(fusion_system(), ms(600), faults=plan, policy=wcet_policy,
                 observers=[late])
        age = late.age_for("fuse", "cam")
        assert age is not None
        assert age < ms(15)  # back to fault-free freshness

    def test_compute_task_dropout(self):
        # Dropping the consumer's own releases: fewer fuse jobs, no
        # crash, schedule invariants intact.
        plan = FaultPlan().drop("fuse", ms(100), ms(200))
        table = JobTableMonitor()
        result = simulate(fusion_system(), ms(300), faults=plan,
                          policy=wcet_policy, observers=[table])
        monitorable = [j for j in table.by_task("fuse")]
        releases = {j.release for j in monitorable}
        assert not any(ms(100) <= r < ms(200) for r in releases)
        table.check_invariants({"cam", "lidar"})

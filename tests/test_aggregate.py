"""Streaming aggregation: exact folds in X order, O(1) sketches.

The accumulator's contract has two halves.  The *exact* half — rows
are produced by the same fold a serial run applies and released in X
order no matter the completion order — feeds the CSV and is tested
bit-for-bit.  The *sketch* half (Welford moments, P² quantiles) is
observability only and is tested against exact references within the
estimator's documented accuracy.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    CampaignAccumulator,
    CompletedPoint,
    P2Quantile,
    StreamingStats,
)


class TestStreamingStats:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=2,
            max_size=200,
        )
    )
    def test_matches_batch_statistics(self, values):
        stats = StreamingStats()
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.min == min(values)
        assert stats.max == max(values)
        assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6)
        assert stats.std == pytest.approx(
            statistics.stdev(values), rel=1e-6, abs=1e-6
        )

    def test_empty_and_single(self):
        stats = StreamingStats()
        assert stats.to_dict() == {"count": 0}
        stats.add(3.0)
        assert stats.variance == 0.0
        assert stats.to_dict()["mean"] == 3.0


class TestP2Quantile:
    def test_exact_below_six_samples(self):
        sketch = P2Quantile(0.5)
        assert math.isnan(sketch.value)
        for value in (5.0, 1.0, 3.0):
            sketch.add(value)
        assert sketch.value == 3.0

    def test_rejects_degenerate_q(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_close_to_sorted_reference_on_uniform(self, q):
        rng = random.Random(7)
        values = [rng.uniform(0.0, 100.0) for _ in range(5000)]
        sketch = P2Quantile(q)
        for value in values:
            sketch.add(value)
        exact = sorted(values)[int(q * (len(values) - 1))]
        # P² is a few percent off on 5k samples; the sketch only feeds
        # progress lines, never the CSV.
        assert sketch.value == pytest.approx(exact, rel=0.05, abs=1.0)


def _concat_fold(x, results):
    return (x, tuple(sorted(results)))


class TestCampaignAccumulator:
    def test_release_in_x_order_despite_completion_order(self):
        acc = CampaignAccumulator([(10, 2), (20, 1), (30, 1)], _concat_fold)
        assert acc.add(30, "c1") == []  # later point done first: held
        released = acc.add(20, "b1")
        assert released == []  # still waiting on x=10
        assert acc.add(10, "a1") == []
        released = acc.add(10, "a2")
        assert [p.x for p in released] == [10, 20, 30]
        assert released[0].row == (10, ("a1", "a2"))
        assert acc.pending == 0

    def test_resumed_point_passes_row_through(self):
        acc = CampaignAccumulator([(1, 5), (2, 1)], _concat_fold)
        released = acc.resume(1, "saved-row")
        assert [p.x for p in released] == [1]
        assert released[0].resumed and released[0].row == "saved-row"
        released = acc.add(2, "z")
        assert [p.x for p in released] == [2]
        assert not released[0].resumed

    def test_peak_residency_is_measured(self):
        acc = CampaignAccumulator([(1, 2), (2, 2)], _concat_fold)
        acc.add(1, "a")
        acc.add(2, "c")  # two open points, two resident results
        report = acc.memory_report()
        assert report["resident_results"] == 2
        acc.add(1, "b")
        acc.add(2, "d")
        report = acc.memory_report()
        assert report["resident_results"] == 0
        # The completing third result is counted before its point folds
        # and frees, so the high-water mark is 3.
        assert report["peak_in_flight_results"] == 3
        assert report["peak_points_open"] == 2

    def test_metric_feeds_sketches(self):
        acc = CampaignAccumulator(
            [(1, 3)], _concat_fold, metric=float, quantiles=(0.5,)
        )
        for value in ("1", "2", "9"):
            acc.add(1, value)
        summary = acc.summary()
        assert summary["metric"]["count"] == 3
        assert summary["metric"]["max"] == 9.0
        assert summary["quantiles"]["p50"] == 2.0

    def test_busy_and_wall_accounting(self):
        acc = CampaignAccumulator([(1, 2)], _concat_fold)
        acc.add(1, "a", elapsed_s=1.0, now=101.0)
        (done,) = acc.add(1, "b", elapsed_s=2.0, now=103.0)
        assert done.busy_s == pytest.approx(3.0)
        # Wall spans the first result's inferred start to the last
        # delivery: (101 - 1) .. 103.
        assert done.wall_s == pytest.approx(3.0)

    def test_flush_incomplete_force_folds_partial_points(self):
        # Degraded-mode completion (cluster coordinator with
        # allow_missing): points fold over the subset that arrived,
        # flagged partial; points with nothing at all yield no row.
        acc = CampaignAccumulator([(1, 2), (2, 2), (3, 2)], _concat_fold)
        acc.add(1, "a1")
        acc.add(1, "a2")  # complete: released normally
        acc.add(2, "b1")  # half of x=2 arrived; x=3 got nothing
        flushed = acc.flush_incomplete()
        assert [p.x for p in flushed] == [2]
        assert flushed[0].partial
        assert flushed[0].row == (2, ("b1",))
        assert acc.in_flight == 0

    def test_flush_incomplete_releases_held_complete_points_unflagged(self):
        acc = CampaignAccumulator([(1, 2), (2, 2)], _concat_fold)
        acc.add(2, "b1")
        acc.add(2, "b2")  # complete but held back waiting on x=1
        acc.add(1, "a1")
        flushed = acc.flush_incomplete()
        assert [(p.x, p.partial) for p in flushed] == [(1, True), (2, False)]
        assert flushed[0].row == (1, ("a1",))
        assert flushed[1].row == (2, ("b1", "b2"))

    def test_flush_incomplete_on_empty_accumulator(self):
        acc = CampaignAccumulator([(1, 1)], _concat_fold)
        assert acc.flush_incomplete() == []
        assert acc.flush_incomplete() == []  # idempotent

    def test_unknown_x_rejected(self):
        acc = CampaignAccumulator([(1, 1)], _concat_fold)
        with pytest.raises(KeyError):
            acc.add(99, "nope")

    @settings(max_examples=30, deadline=None)
    @given(
        n_points=st.integers(min_value=1, max_value=8),
        expected=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_arrival_order_yields_same_rows(
        self, n_points, expected, seed
    ):
        points = [(x, expected) for x in range(n_points)]
        arrivals = [
            (x, f"r{x}.{i}") for x, _ in points for i in range(expected)
        ]
        random.Random(seed).shuffle(arrivals)
        acc = CampaignAccumulator(points, _concat_fold)
        rows = []
        for x, payload in arrivals:
            rows.extend(p.row for p in acc.add(x, payload))
        assert rows == [
            (x, tuple(sorted(f"r{x}.{i}" for i in range(expected))))
            for x in range(n_points)
        ]
        assert acc.pending == 0
        assert acc.memory_report()["resident_results"] == 0


def test_completed_point_defaults():
    done = CompletedPoint(x=1, row="r", results=())
    assert not done.resumed
    assert done.busy_s == 0.0 and done.wall_s == 0.0

"""Tests for utilization accounting."""

import pytest

from repro.model.task import Task, source_task
from repro.sched.utilization import (
    max_unit_utilization,
    task_utilization,
    total_utilization,
    unit_utilizations,
    utilization_feasible,
)
from repro.units import ms


def task(name, period_ms, wcet_ms, priority, ecu="e"):
    return Task(name, ms(period_ms), ms(wcet_ms), ms(wcet_ms), ecu=ecu, priority=priority)


class TestUtilization:
    def test_task_utilization(self):
        assert task_utilization(task("a", 10, 1, 0)) == pytest.approx(0.1)

    def test_unit_totals(self):
        tasks = [
            task("a", 10, 1, 0, ecu="e1"),
            task("b", 20, 4, 1, ecu="e1"),
            task("c", 10, 5, 0, ecu="e2"),
        ]
        utilizations = unit_utilizations(tasks)
        assert utilizations["e1"] == pytest.approx(0.3)
        assert utilizations["e2"] == pytest.approx(0.5)

    def test_sources_excluded(self):
        tasks = [source_task("s", ms(10), ecu="e", priority=0), task("a", 10, 2, 1)]
        assert total_utilization(tasks) == pytest.approx(0.2)
        assert unit_utilizations(tasks)["e"] == pytest.approx(0.2)

    def test_max_unit(self):
        tasks = [task("a", 10, 1, 0, ecu="e1"), task("c", 10, 5, 0, ecu="e2")]
        assert max_unit_utilization(tasks) == pytest.approx(0.5)

    def test_max_unit_empty(self):
        assert max_unit_utilization([]) == 0.0

    def test_feasibility_screen(self):
        good = [task("a", 10, 4, 0), task("b", 10, 4, 1)]
        bad = [task("a", 10, 6, 0), task("b", 10, 6, 1)]
        assert utilization_feasible(good)
        assert not utilization_feasible(bad)

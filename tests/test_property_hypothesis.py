"""Property-based tests (hypothesis) for core invariants.

Two layers:

* pure arithmetic properties of the bound operators (cheap, many
  examples);
* whole-system properties over randomly generated WATERS scenarios —
  ordering between bounds, symmetry of the pairwise theorems,
  simulation soundness, and simulator schedule invariants (fewer
  examples; each builds and simulates a system).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chains.backward import BackwardBoundsCache
from repro.chains.duerr import bcbt_lower_agnostic, wcbt_upper_agnostic
from repro.core.pairwise import (
    disparity_bound_forkjoin,
    disparity_bound_independent,
    independent_operator,
    shifted_operator,
)
from repro.core.disparity import disparity_bound
from repro.gen.scenario import ScenarioConfig, generate_random_scenario
from repro.model.chain import enumerate_source_chains
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.metrics import DisparityMonitor, JobTableMonitor
from repro.units import ceil_div, floor_div, ms, seconds

times = st.integers(min_value=-10_000_000, max_value=10_000_000)
periods = st.integers(min_value=1, max_value=1_000_000)
offsets = st.integers(min_value=-50, max_value=50)


class TestOperatorProperties:
    @given(w1=times, b1=times, w2=times, b2=times)
    def test_independent_operator_symmetric(self, w1, b1, w2, b2):
        assert independent_operator(w1, b1, w2, b2) == independent_operator(
            w2, b2, w1, b1
        )

    @given(w1=times, b1=times, w2=times, b2=times)
    def test_independent_operator_nonnegative_when_consistent(self, w1, b1, w2, b2):
        # With b <= w on both chains the operator is >= 0 trivially
        # (it is an absolute value), and covers the real difference of
        # any points drawn from the two windows.
        lo1, hi1 = sorted((b1, w1))
        lo2, hi2 = sorted((b2, w2))
        operator = independent_operator(hi1, lo1, hi2, lo2)
        # Any t1 in [-hi1,-lo1] and t2 in [-hi2,-lo2]:
        for t1 in (-hi1, -lo1):
            for t2 in (-hi2, -lo2):
                assert abs(t1 - t2) <= operator

    @given(w1=times, b1=times, w2=times, b2=times, period=periods)
    def test_shifted_operator_zero_offsets(self, w1, b1, w2, b2, period):
        assert shifted_operator(w1, b1, w2, b2, 0, 0, period) == independent_operator(
            w1, b1, w2, b2
        )

    @given(
        w1=times, b1=times, w2=times, b2=times, period=periods,
        x=offsets, y=offsets,
    )
    def test_shifted_operator_covers_window(self, w1, b1, w2, b2, period, x, y):
        # The operator must dominate |t_lam - t_nu'| for every t_lam in
        # lam's window and t_nu' in nu's window shifted by k*period,
        # x <= k <= y (Lemma 3's statement).
        if x > y:
            x, y = y, x
        lo1, hi1 = sorted((b1, w1))
        lo2, hi2 = sorted((b2, w2))
        operator = shifted_operator(hi1, lo1, hi2, lo2, x, y, period)
        for t1 in (-hi1, -lo1):
            for k in (x, y):
                for t2_base in (-hi2, -lo2):
                    t2 = k * period + t2_base
                    assert abs(t1 - t2) <= operator

    @given(numerator=times, denominator=periods)
    def test_floor_ceil_consistency(self, numerator, denominator):
        assert floor_div(numerator, denominator) * denominator <= numerator
        assert ceil_div(numerator, denominator) * denominator >= numerator


def build_scenario(seed: int, n_tasks: int, n_ecus: int):
    rng = random.Random(seed)
    config = ScenarioConfig(n_ecus=n_ecus, use_bus=n_ecus > 1)
    return generate_random_scenario(n_tasks, rng, config), rng


scenario_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=4, max_value=12),
    st.integers(min_value=1, max_value=2),
)


class TestSystemProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_bound_orderings(self, params):
        scenario, _ = build_scenario(*params)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        for chain in enumerate_source_chains(system.graph, scenario.sink):
            bounds = cache.bounds(chain)
            assert bounds.bcbt <= bounds.wcbt
            assert wcbt_upper_agnostic(chain, system) >= bounds.wcbt
            assert bcbt_lower_agnostic(chain, system) <= bounds.wcbt

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_pairwise_symmetry_and_nonnegativity(self, params):
        scenario, _ = build_scenario(*params)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        chains = enumerate_source_chains(system.graph, scenario.sink)
        from itertools import combinations

        for lam, nu in list(combinations(chains, 2))[:10]:
            p_fwd = disparity_bound_independent(lam, nu, cache).bound
            p_bwd = disparity_bound_independent(nu, lam, cache).bound
            s_fwd = disparity_bound_forkjoin(lam, nu, cache).bound
            s_bwd = disparity_bound_forkjoin(nu, lam, cache).bound
            assert p_fwd == p_bwd >= 0
            assert s_fwd == s_bwd >= 0

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_simulated_disparity_below_bounds(self, params):
        scenario, rng = build_scenario(*params)
        system = scenario.system
        s_diff = disparity_bound(system, scenario.sink, method="forkjoin")
        p_diff = disparity_bound(system, scenario.sink, method="independent")
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor([scenario.sink], warmup=seconds(1))
        simulate(variant, seconds(3), seed=params[0], observers=[monitor])
        observed = monitor.disparity(scenario.sink)
        assert observed <= s_diff
        assert observed <= p_diff

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params, policy_name=st.sampled_from(
        ["uniform", "wcet", "bcet", "extremes"]))
    def test_schedule_invariants(self, params, policy_name):
        from repro.sim.exec_time import named_policy

        scenario, rng = build_scenario(*params)
        monitor = JobTableMonitor()
        simulate(
            scenario.system,
            seconds(1),
            seed=params[0],
            policy=named_policy(policy_name),
            observers=[monitor],
        )
        instantaneous = {
            t.name for t in scenario.system.graph.tasks if t.is_instantaneous
        }
        monitor.check_invariants(instantaneous)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=scenario_params)
    def test_buffering_never_worsens_pair_bound(self, params):
        from repro.buffers.sizing import disparity_bound_buffered

        scenario, _ = build_scenario(*params)
        system = scenario.system
        cache = BackwardBoundsCache(system)
        chains = enumerate_source_chains(system.graph, scenario.sink)
        from itertools import combinations

        for lam, nu in list(combinations(chains, 2))[:6]:
            base = disparity_bound_forkjoin(lam, nu, cache).bound
            buffered, _design = disparity_bound_buffered(lam, nu, cache)
            assert 0 <= buffered.bound <= base

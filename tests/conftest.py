"""Shared fixtures: small hand-analyzable systems.

The fixtures build deployments whose response times and backward-time
bounds are easy to compute by hand, so tests can assert exact values
rather than "it ran".  All times use integer milliseconds via
``repro.units.ms`` to keep the arithmetic readable.
"""

from __future__ import annotations

import random

import pytest

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import Task, source_task
from repro.units import ms


def build_diamond_graph() -> CauseEffectGraph:
    """Single source, diamond, single sink — the Theorem 2 showcase.

    Structure::

        s -> a -> m -> x -> sink
                  m -> y -> sink    (diamond between m and sink)
        s -> b -> m                 (diamond between s and m)

    All tasks run on one ECU with priorities along the topological
    order (producers have higher priority than consumers), so every
    same-unit hop budget of Lemma 4 is exactly ``T(producer)``.
    """
    graph = CauseEffectGraph()
    graph.add_task(source_task("s", ms(10), ecu="ecu0", priority=0))
    graph.add_task(Task("a", ms(10), ms(1), ms(1), ecu="ecu0", priority=1))
    graph.add_task(Task("b", ms(20), ms(1), ms(1), ecu="ecu0", priority=2))
    graph.add_task(Task("m", ms(20), ms(1), ms(1), ecu="ecu0", priority=3))
    graph.add_task(Task("x", ms(20), ms(1), ms(1), ecu="ecu0", priority=4))
    graph.add_task(Task("y", ms(40), ms(1), ms(1), ecu="ecu0", priority=5))
    graph.add_task(Task("sink", ms(40), ms(1), ms(1), ecu="ecu0", priority=6))
    graph.add_channel("s", "a")
    graph.add_channel("s", "b")
    graph.add_channel("a", "m")
    graph.add_channel("b", "m")
    graph.add_channel("m", "x")
    graph.add_channel("m", "y")
    graph.add_channel("x", "sink")
    graph.add_channel("y", "sink")
    return graph


def build_two_source_graph() -> CauseEffectGraph:
    """Two sensors fused by one task — the minimal disparity scenario.

    ``cam -> fuse <- lidar`` with different sampling periods, one ECU.
    """
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("lidar", ms(30), ecu="ecu0", priority=1))
    graph.add_task(Task("fuse", ms(30), ms(2), ms(1), ecu="ecu0", priority=2))
    graph.add_channel("cam", "fuse")
    graph.add_channel("lidar", "fuse")
    return graph


def build_merged_chains_graph() -> CauseEffectGraph:
    """Two disjoint 3-stage chains merged at one sink (Fig. 6c shape)."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("sa", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("sb", ms(50), ecu="ecu0", priority=1))
    graph.add_task(Task("pa", ms(10), ms(1), ms(1), ecu="ecu0", priority=2))
    graph.add_task(Task("pb", ms(50), ms(2), ms(1), ecu="ecu0", priority=3))
    graph.add_task(Task("sink", ms(20), ms(1), ms(1), ecu="ecu0", priority=4))
    graph.add_channel("sa", "pa")
    graph.add_channel("sb", "pb")
    graph.add_channel("pa", "sink")
    graph.add_channel("pb", "sink")
    return graph


@pytest.fixture
def diamond_graph() -> CauseEffectGraph:
    return build_diamond_graph()


@pytest.fixture
def diamond_system(diamond_graph) -> System:
    return System.build(diamond_graph)


@pytest.fixture
def two_source_graph() -> CauseEffectGraph:
    return build_two_source_graph()


@pytest.fixture
def two_source_system(two_source_graph) -> System:
    return System.build(two_source_graph)


@pytest.fixture
def merged_graph() -> CauseEffectGraph:
    return build_merged_chains_graph()


@pytest.fixture
def merged_system(merged_graph) -> System:
    return System.build(merged_graph)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)

"""Tests for UUniFast synthesis and utilization rescaling."""

import random

import pytest

from repro.gen.uunifast import (
    scale_to_utilization,
    uunifast,
    uunifast_periodic_taskset,
)
from repro.model.task import ModelError
from repro.sched.utilization import unit_utilizations


class TestUUniFast:
    def test_sums_to_target(self, rng):
        for target in (0.3, 0.7, 1.0):
            values = uunifast(8, target, rng)
            assert sum(values) == pytest.approx(target)
            assert all(v >= 0 for v in values)

    def test_single_task(self, rng):
        assert uunifast(1, 0.5, rng) == [0.5]

    def test_unbiased_first_coordinate(self):
        # Each coordinate's expectation is U/n under UUniFast.
        rng = random.Random(12)
        n, target, draws = 4, 0.8, 4000
        total_first = 0.0
        for _ in range(draws):
            total_first += uunifast(n, target, rng)[0]
        assert total_first / draws == pytest.approx(target / n, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ModelError):
            uunifast(3, 0.0, rng)


class TestTasksetSynthesis:
    def test_periods_and_priorities(self, rng):
        tasks = uunifast_periodic_taskset(10, 0.6, rng)
        assert len(tasks) == 10
        priorities = [t.priority for t in tasks]
        assert sorted(priorities) == list(range(10))
        for task in tasks:
            assert 0 < task.bcet <= task.wcet <= task.period

    def test_utilization_near_target(self, rng):
        tasks = uunifast_periodic_taskset(10, 0.6, rng)
        total = sum(t.utilization for t in tasks)
        # Rounding to integer ns on millisecond periods is tiny.
        assert total == pytest.approx(0.6, rel=0.02)


class TestScaleToUtilization:
    def test_hits_target_per_unit(self, rng):
        from repro.gen.graphgen import deploy, fusion_pipeline_graph

        graph = deploy(fusion_pipeline_graph(12, rng), rng, n_ecus=2)
        scaled = scale_to_utilization(graph, 0.5)
        utilizations = unit_utilizations(scaled.tasks)
        for unit, utilization in utilizations.items():
            if unit.startswith("ecu"):
                assert utilization == pytest.approx(0.5, rel=0.05)

    def test_structure_preserved(self, rng):
        from repro.gen.graphgen import deploy, fusion_pipeline_graph

        graph = deploy(fusion_pipeline_graph(12, rng), rng, n_ecus=1)
        scaled = scale_to_utilization(graph, 0.4)
        assert tuple(scaled.task_names) == tuple(graph.task_names)
        assert [(c.src, c.dst) for c in scaled.channels] == [
            (c.src, c.dst) for c in graph.channels
        ]
        for name in graph.task_names:
            assert scaled.task(name).period == graph.task(name).period
            assert scaled.task(name).priority == graph.task(name).priority

    def test_sources_untouched(self, rng):
        from repro.gen.graphgen import deploy, fusion_pipeline_graph

        graph = deploy(fusion_pipeline_graph(10, rng), rng, n_ecus=1)
        scaled = scale_to_utilization(graph, 0.6)
        for name in scaled.sources():
            assert scaled.task(name).wcet == 0

    def test_validation(self, rng, diamond_graph):
        with pytest.raises(ModelError):
            scale_to_utilization(diamond_graph, 0.0)
        with pytest.raises(ModelError):
            scale_to_utilization(diamond_graph, 1.5)
        with pytest.raises(ModelError):
            scale_to_utilization(diamond_graph, 0.5, bcet_fraction=0.0)

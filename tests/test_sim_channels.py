"""Tests for run-time channel semantics (registers and FIFOs)."""

import pytest

from repro.model.task import ModelError
from repro.sim.channels import ChannelState
from repro.sim.provenance import source_token


def token(ts):
    return source_token("s", ts)


class TestRegister:
    def test_empty_read(self):
        channel = ChannelState("a", "b")
        assert channel.read() is None
        assert channel.is_empty

    def test_write_then_read(self):
        channel = ChannelState("a", "b")
        channel.write(token(5))
        read = channel.read()
        assert read is not None and read.produced_at == 5

    def test_overwrite(self):
        channel = ChannelState("a", "b")
        channel.write(token(5))
        channel.write(token(9))
        assert channel.read().produced_at == 9
        assert channel.evictions == 1

    def test_read_does_not_consume(self):
        channel = ChannelState("a", "b")
        channel.write(token(5))
        channel.read()
        assert channel.read() is not None


class TestFifo:
    def test_reads_oldest(self):
        channel = ChannelState("a", "b", capacity=3)
        for ts in (1, 2, 3):
            channel.write(token(ts))
        assert channel.read().produced_at == 1

    def test_eviction_when_full(self):
        channel = ChannelState("a", "b", capacity=3)
        for ts in (1, 2, 3, 4):
            channel.write(token(ts))
        # 1 evicted; oldest is now 2.
        assert channel.read().produced_at == 2
        assert channel.occupancy == 3
        assert channel.is_full

    def test_steady_state_lag(self):
        # A full capacity-n FIFO lags the newest token by n-1 writes —
        # the mechanism behind Lemma 6.
        n = 4
        channel = ChannelState("a", "b", capacity=n)
        for ts in range(20):
            channel.write(token(ts))
            if channel.is_full:
                assert channel.read().produced_at == ts - (n - 1)

    def test_partial_fill(self):
        channel = ChannelState("a", "b", capacity=5)
        channel.write(token(7))
        assert channel.read().produced_at == 7
        assert not channel.is_full
        assert channel.occupancy == 1

    def test_snapshot_order(self):
        channel = ChannelState("a", "b", capacity=3)
        for ts in (1, 2, 3):
            channel.write(token(ts))
        assert [t.produced_at for t in channel.snapshot()] == [1, 2, 3]

    def test_fifo_invariant_check(self):
        channel = ChannelState("a", "b", capacity=3)
        for ts in (1, 2, 3):
            channel.write(token(ts))
        channel.validate_fifo_order()

    def test_write_counter(self):
        channel = ChannelState("a", "b", capacity=2)
        for ts in range(5):
            channel.write(token(ts))
        assert channel.writes == 5
        assert channel.evictions == 3

    def test_invalid_capacity(self):
        with pytest.raises(ModelError):
            ChannelState("a", "b", capacity=0)

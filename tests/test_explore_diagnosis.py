"""Tests for disparity diagnosis and priority optimization."""

import pytest

from repro.core.disparity import disparity_bound
from repro.explore.diagnosis import (
    DisparityExplanation,
    explain_disparity,
    render_explanation,
)
from repro.explore.priority_opt import optimize_priorities
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.units import ms


class TestExplainDisparity:
    def test_merged_system_explanation(self, merged_system):
        explanation = explain_disparity(merged_system, "sink")
        assert explanation.bound == ms(102)
        assert explanation.binding_pair is not None
        # The slow chain's hops dominate.
        assert explanation.hops_nu[0].budget == ms(50)
        # Structure cannot help a disjoint pair.
        assert explanation.structural_gain == 0
        # Algorithm 1 can (the windows are offset by 40ms of midpoint).
        assert explanation.buffering_gain == ms(40)

    def test_hop_ordering_descending(self, diamond_system):
        explanation = explain_disparity(diamond_system, "sink")
        budgets = [hop.budget for hop in explanation.hops_lam]
        assert budgets == sorted(budgets, reverse=True)

    def test_single_chain_task(self, diamond_system):
        explanation = explain_disparity(diamond_system, "a")
        assert explanation.bound == 0
        assert explanation.binding_pair is None

    def test_window_widths_reported(self, merged_system):
        explanation = explain_disparity(merged_system, "sink")
        # lam = (sa, pa, sink): window [-20, 2] -> width 22.
        assert explanation.window_width_lam == ms(22)
        assert explanation.window_width_nu == ms(102)

    def test_render_contains_key_facts(self, merged_system):
        text = render_explanation(explain_disparity(merged_system, "sink"))
        assert "binding pair" in text
        assert "sa -> pa -> sink" in text
        assert "Algorithm 1" in text
        assert "102.000ms" in text

    def test_render_single_chain(self, diamond_system):
        text = render_explanation(explain_disparity(diamond_system, "a"))
        assert "no disparity to explain" in text


class TestPriorityOptimization:
    def build_inverted_system(self) -> System:
        """A chain whose priorities run *against* the data flow.

        Producer lower-priority hops pay T + R - (W + B); swapping to
        flow order recovers the tighter T-per-hop budgets.
        """
        graph = CauseEffectGraph()
        graph.add_task(source_task("s1", ms(20), ecu="e", priority=8))
        graph.add_task(source_task("s2", ms(50), ecu="e", priority=9))
        # Deliberately inverted: consumers have *higher* priority.
        graph.add_task(Task("p1", ms(20), ms(2), ms(1), ecu="e", priority=3))
        graph.add_task(Task("p2", ms(50), ms(3), ms(1), ecu="e", priority=2))
        graph.add_task(Task("sink", ms(50), ms(2), ms(1), ecu="e", priority=0))
        graph.add_channel("s1", "p1")
        graph.add_channel("s2", "p2")
        graph.add_channel("p1", "sink")
        graph.add_channel("p2", "sink")
        return System.build(graph)

    def test_improves_inverted_priorities(self):
        system = self.build_inverted_system()
        result = optimize_priorities(system, "sink")
        assert result.bound_after <= result.bound_before
        assert result.improved
        assert result.swaps_applied
        # The returned system is consistent: re-analysis agrees.
        assert disparity_bound(result.system, "sink") == result.bound_after

    def test_monotone_never_degrades(self, merged_system, diamond_system):
        for system, task in ((merged_system, "sink"), (diamond_system, "sink")):
            result = optimize_priorities(system, task, max_rounds=2)
            assert result.bound_after <= result.bound_before

    def test_result_schedulable(self):
        system = self.build_inverted_system()
        result = optimize_priorities(system, "sink")
        # System.build inside the search guarantees schedulability;
        # verify the final system explicitly.
        from repro.sched.response_time import analyze_all

        analyze_all(result.system.graph.tasks)

    def test_parameter_validation(self, merged_system):
        with pytest.raises(ModelError):
            optimize_priorities(merged_system, "sink", max_rounds=0)

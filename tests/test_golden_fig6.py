"""Golden regression test: a tiny seeded Fig. 6 run, byte-for-byte.

The repo's correctness contract is cross-PR determinism of the whole
pipeline — scenario generation, analysis, batched simulation (delta
replay included), aggregation, CSV formatting.  The committed files
under ``tests/golden/`` were produced by exactly the configurations
below; every CI run replays them (serial *and* with two worker
processes) and compares the CSV text byte-for-byte.

If an intentional change invalidates the goldens (e.g. a new field in
the CSV, or a semantic change to the derived-seed discipline), refresh
them with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_fig6.py

and include the regenerated files (plus the reason) in the same commit.
An unintentional diff here means replication results silently changed —
that is the regression this test exists to catch.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import Fig6ABConfig, Fig6CDConfig
from repro.experiments.fig6 import run_fig6_ab, run_fig6_cd
from repro.experiments.reporting import csv_ab, csv_cd
from repro.units import seconds

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Few tasks, few replications — seconds of runtime, full pipeline.
GOLDEN_AB = Fig6ABConfig(
    x_values=(5, 8),
    graphs_per_point=2,
    sims_per_graph=3,
    sim_duration=seconds(2),
    warmup=seconds(1),
    seed=2023,
)
GOLDEN_CD = Fig6CDConfig(
    x_values=(4, 6),
    graphs_per_point=2,
    sims_per_graph=3,
    sim_duration=seconds(2),
    warmup=seconds(1),
    seed=2023,
)


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    # Byte-level I/O: the csv module emits \r\n line endings, and the
    # comparison must see them exactly as committed.
    if os.environ.get("REPRO_UPDATE_GOLDEN", "") not in ("", "0"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(text.encode("utf-8"))
        pytest.skip(f"refreshed {path}")
    assert path.exists(), (
        f"missing golden file {path}; run with REPRO_UPDATE_GOLDEN=1 "
        f"to create it"
    )
    committed = path.read_bytes().decode("utf-8")
    assert text == committed, (
        f"{name} drifted from the committed golden output — the "
        f"gen/analysis/simulation/CSV pipeline is no longer "
        f"byte-deterministic across PRs (or the change is intentional "
        f"and the goldens need REPRO_UPDATE_GOLDEN=1 + review)"
    )


def test_fig6_ab_golden_serial():
    _check("fig6_ab.csv", csv_ab(run_fig6_ab(GOLDEN_AB)))


def test_fig6_cd_golden_serial():
    _check("fig6_cd.csv", csv_cd(run_fig6_cd(GOLDEN_CD)))


def test_fig6_ab_golden_parallel_matches():
    """Two worker processes produce the same bytes as the golden file."""
    _check("fig6_ab.csv", csv_ab(run_fig6_ab(GOLDEN_AB, jobs=2)))


def test_fig6_cd_golden_parallel_matches():
    _check("fig6_cd.csv", csv_cd(run_fig6_cd(GOLDEN_CD, jobs=2)))


def test_fig6_ab_golden_sharded_merge_matches(tmp_path):
    """Three shards, run separately and merged out of order, produce
    the committed golden bytes — the multi-machine path hits the same
    determinism contract as ``--jobs N``."""
    from repro.experiments.fig6 import AB_PART
    from repro.parallel import ShardSpec, merge_shards, run_shard

    paths = []
    for index in range(3):
        path = str(tmp_path / f"shard-{index}.jsonl")
        run_shard(AB_PART, GOLDEN_AB, ShardSpec(index, 3), path)
        paths.append(path)
    merged = merge_shards(AB_PART, GOLDEN_AB, list(reversed(paths)))
    _check("fig6_ab.csv", csv_ab(merged))


def test_fig6_cd_golden_sharded_merge_matches(tmp_path):
    from repro.experiments.fig6 import CD_PART
    from repro.parallel import ShardSpec, merge_shards, run_shard

    paths = []
    for index in range(2):
        path = str(tmp_path / f"shard-{index}.jsonl")
        run_shard(CD_PART, GOLDEN_CD, ShardSpec(index, 2), path)
        paths.append(path)
    merged = merge_shards(CD_PART, GOLDEN_CD, list(reversed(paths)))
    _check("fig6_cd.csv", csv_cd(merged))

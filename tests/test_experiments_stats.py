"""Tests for replication statistics."""

import math
import random

import pytest

from repro.experiments.stats import (
    RunningStats,
    Summary,
    paired_improvement,
    summarize,
)


class TestRunningStats:
    def test_mean(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)

    def test_variance_matches_textbook(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.variance == pytest.approx(variance)
        assert stats.std == pytest.approx(math.sqrt(variance))

    def test_few_points(self):
        stats = RunningStats()
        assert stats.variance == 0.0
        assert stats.stderr == 0.0
        stats.add(5.0)
        assert stats.variance == 0.0
        assert stats.mean == 5.0

    def test_numerically_stable_for_large_offsets(self):
        # Welford's method must not lose precision when values share a
        # huge common offset (naive sum-of-squares does).
        base = 1e12
        stats = RunningStats()
        stats.extend([base + v for v in (1.0, 2.0, 3.0)])
        assert stats.variance == pytest.approx(1.0)


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([10.0, 12.0, 14.0, 16.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(13.0)
        assert summary.ci95 > 0

    def test_ci_shrinks_with_samples(self):
        rng = random.Random(0)
        small = summarize([rng.gauss(0, 1) for _ in range(10)])
        large = summarize([rng.gauss(0, 1) for _ in range(1000)])
        assert large.ci95 < small.ci95

    def test_str(self):
        text = str(summarize([1.0, 1.0]))
        assert "n=2" in text


class TestPairedImprovement:
    def test_positive_improvement(self):
        baseline = [10.0, 12.0, 9.0]
        treated = [7.0, 9.0, 8.0]
        summary = paired_improvement(baseline, treated)
        assert summary.mean == pytest.approx((3 + 3 + 1) / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_improvement([1.0], [1.0, 2.0])

    def test_zero_improvement(self):
        summary = paired_improvement([5.0, 5.0], [5.0, 5.0])
        assert summary.mean == 0.0
        assert summary.std == 0.0

"""Tests for the LET (Logical Execution Time) extension."""

import random

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound
from repro.let import (
    backward_bounds_let,
    bcbt_lower_let,
    disparity_bound_let,
    let_bounds_cache,
    wcbt_upper_let,
)
from repro.model.chain import Chain
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.exec_time import uniform_policy, wcet_policy
from repro.sim.metrics import BackwardTimeMonitor, DisparityMonitor, JobTableMonitor
from repro.units import ms, seconds


def chain_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
    graph.add_task(Task("a", ms(10), ms(1), ms(1), ecu="e", priority=1))
    graph.add_task(Task("b", ms(20), ms(2), ms(1), ecu="e", priority=2))
    graph.add_channel("s", "a")
    graph.add_channel("a", "b")
    return System.build(graph)


class TestLetBounds:
    def test_wcbt_values(self):
        system = chain_system()
        chain = Chain.of("s", "a", "b")
        # source hop: T(s)=10; a->b hop: 2*T(a)=20.
        assert wcbt_upper_let(chain, system) == ms(30)

    def test_bcbt_values(self):
        system = chain_system()
        chain = Chain.of("s", "a", "b")
        # source hop contributes 0; a->b hop at least T(a)=10.
        assert bcbt_lower_let(chain, system) == ms(10)

    def test_singleton(self):
        system = chain_system()
        assert wcbt_upper_let(Chain.of("s"), system) == 0
        assert bcbt_lower_let(Chain.of("s"), system) == 0

    def test_bounds_independent_of_execution_times(self):
        # LET's whole point: W/B depend only on periods.
        fast = chain_system()
        graph = fast.graph.copy()
        graph.replace_task(Task("b", ms(20), ms(8), ms(1), ecu="e", priority=2))
        slow = System.build(graph)
        chain_tasks = ("s", "a", "b")
        assert wcbt_upper_let(Chain(chain_tasks), fast) == wcbt_upper_let(
            Chain(chain_tasks), slow
        )

    def test_buffer_shift_composes(self):
        system = chain_system().with_channel_capacity("s", "a", 3)
        chain = Chain.of("s", "a", "b")
        assert wcbt_upper_let(chain, system) == ms(30) + 2 * ms(10)
        assert bcbt_lower_let(chain, system) == ms(10) + 2 * ms(10)

    def test_strategy_cache(self):
        system = chain_system()
        cache = let_bounds_cache(system)
        bounds = cache.bounds(Chain.of("s", "a", "b"))
        assert bounds.wcbt == ms(30)
        assert bounds.bcbt == ms(10)


class TestLetDisparity:
    def test_two_source_fusion(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
        graph.add_task(source_task("lidar", ms(30), ecu="e", priority=1))
        graph.add_task(Task("fuse", ms(30), ms(2), ms(1), ecu="e", priority=2))
        graph.add_channel("cam", "fuse")
        graph.add_channel("lidar", "fuse")
        system = System.build(graph)
        # Windows: cam in [-10, 0], lidar in [-30, 0]:
        # O = max(|10-0|, |30-0|) = 30.
        assert disparity_bound_let(system, "fuse") == ms(30)

    def test_let_disparity_scheduler_free(self, diamond_system):
        # Same graph, different priorities: LET bound unchanged.
        base = disparity_bound_let(diamond_system, "sink")
        graph = diamond_system.graph.copy()
        # Reverse all compute priorities.
        for task in graph.tasks:
            if task.priority is not None and not graph.is_source(task.name):
                graph.replace_task(task.with_priority(100 - task.priority))
        flipped = System.build(graph)
        assert disparity_bound_let(flipped, "sink") == base


class TestLetSimulation:
    def test_publish_at_deadline(self):
        system = chain_system()
        monitor = BackwardTimeMonitor(["b"], warmup=ms(100))
        simulate(system, ms(600), observers=[monitor], policy=wcet_policy,
                 semantics="let")
        observed = monitor.range_for("b", "s")
        assert observed.samples > 0
        # Non-source hop delivers data at least one producer period old.
        assert observed.lo >= bcbt_lower_let(Chain.of("s", "a", "b"), system)
        assert observed.hi <= wcbt_upper_let(Chain.of("s", "a", "b"), system)

    def test_data_flow_independent_of_policy(self):
        # The observed backward times must be identical under any
        # execution-time policy: LET's determinism.
        system = chain_system()
        results = []
        for policy in (wcet_policy, uniform_policy):
            monitor = BackwardTimeMonitor(["b"], warmup=ms(100))
            simulate(system, ms(600), seed=5, observers=[monitor],
                     policy=policy, semantics="let")
            observed = monitor.range_for("b", "s")
            results.append((observed.lo, observed.hi))
        assert results[0] == results[1]

    def test_let_disparity_soundness_random(self):
        from repro.gen.scenario import ScenarioConfig, generate_random_scenario

        rng = random.Random(13)
        scenario = generate_random_scenario(
            10, rng, ScenarioConfig(n_ecus=1, use_bus=False)
        )
        system = scenario.system
        bound = disparity_bound_let(system, scenario.sink)
        for _ in range(3):
            graph = randomize_offsets(system.graph, rng)
            variant = System(graph=graph, response_times=system.response_times)
            monitor = DisparityMonitor([scenario.sink], warmup=seconds(2))
            simulate(variant, seconds(5), seed=rng.randrange(2**31),
                     observers=[monitor], semantics="let")
            assert monitor.disparity(scenario.sink) <= bound

    def test_schedule_invariants_hold(self):
        system = chain_system()
        monitor = JobTableMonitor()
        simulate(system, ms(500), observers=[monitor], semantics="let")
        monitor.check_invariants({"s"})

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ModelError):
            simulate(chain_system(), ms(10), semantics="zero-copy")

    def test_let_violation_detected(self):
        # A genuinely late case via blocking: a lower-priority 15ms job
        # blocks a 10ms-period task with 6ms WCET -> finish at 21 >
        # deadline 11.  Schedulability analysis rightly rejects this
        # system, so bypass it with a hand-made response-time table.
        from repro.sched.response_time import ResponseTimeTable

        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("hi", ms(10), ms(6), ms(6), ecu="e", priority=1,
                            offset=ms(1)))
        graph.add_task(Task("lo", ms(40), ms(15), ms(15), ecu="e", priority=2))
        graph.add_channel("s", "hi")
        graph.add_channel("s", "lo")
        table = ResponseTimeTable({"s": 0, "hi": ms(10), "lo": ms(21)})
        system = System(graph=graph, response_times=table)
        with pytest.raises(ModelError):
            simulate(system, ms(100), policy=wcet_policy, semantics="let")

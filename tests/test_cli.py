"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.part == "all"
        assert args.preset == "default"

    def test_fig6_options(self):
        args = build_parser().parse_args(
            ["fig6", "--part", "ab", "--preset", "smoke", "--duration", "2",
             "--graphs", "1", "--sims", "1", "--seed", "3", "--quiet"]
        )
        assert args.part == "ab"
        assert args.duration == 2.0
        assert args.quiet

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--preset", "huge"])


class TestCommands:
    def test_waters(self, capsys):
        assert main(["waters"]) == 0
        out = capsys.readouterr().out
        assert "ACET(us)" in out
        assert "200" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--tasks", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "P-diff" in out
        assert "S-diff" in out
        assert "chains into" in out

    def test_analyze_save_and_load(self, capsys, tmp_path):
        path = tmp_path / "workload.json"
        assert main(["analyze", "--tasks", "8", "--seed", "2",
                     "--output", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "S-diff" in out

    def test_report(self, capsys):
        assert main(["report", "--tasks", "8", "--seed", "2",
                     "--requirement", "k1=300"]) == 0
        out = capsys.readouterr().out
        assert "utilization per unit" in out
        assert "disparity bounds" in out

    def test_report_bad_requirement(self):
        with pytest.raises(SystemExit):
            main(["report", "--tasks", "6", "--requirement", "oops"])

    def test_diagnose(self, capsys):
        assert main(["diagnose", "--tasks", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst-case time disparity" in out
        assert "binding pair" in out

    def test_diagnose_with_optimize(self, capsys):
        assert main(
            ["diagnose", "--tasks", "6", "--seed", "3", "--optimize"]
        ) == 0
        out = capsys.readouterr().out
        assert "priority optimization" in out

    def test_fig6_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "fig6",
                "--part",
                "ab",
                "--preset",
                "smoke",
                "--duration",
                "2",
                "--graphs",
                "1",
                "--sims",
                "1",
                "--quiet",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "P-diff(ms)" in out

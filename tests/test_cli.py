"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_fig6_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.part == "all"
        assert args.preset == "default"

    def test_fig6_options(self):
        args = build_parser().parse_args(
            ["fig6", "--part", "ab", "--preset", "smoke", "--duration", "2",
             "--graphs", "1", "--sims", "1", "--seed", "3", "--quiet"]
        )
        assert args.part == "ab"
        assert args.duration == 2.0
        assert args.quiet

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--preset", "huge"])

    def test_fig6_semantics_option(self):
        args = build_parser().parse_args(["fig6", "--semantics", "let"])
        assert args.semantics == "let"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--semantics", "banana"])

    def test_campaign_run_options(self):
        args = build_parser().parse_args(
            ["campaign", "run", "--part", "ab", "--preset", "smoke",
             "--shard", "1/3", "--out", "s1.jsonl", "--jobs", "2"]
        )
        assert args.campaign_command == "run"
        assert args.shard == "1/3"
        assert args.out == "s1.jsonl"
        assert args.jobs == 2

    def test_campaign_run_requires_shard_and_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "--part", "ab"])

    def test_campaign_merge_options(self):
        args = build_parser().parse_args(
            ["campaign", "merge", "--part", "ab", "a.jsonl", "b.jsonl",
             "--csv", "out.csv"]
        )
        assert args.campaign_command == "merge"
        assert args.shards == ["a.jsonl", "b.jsonl"]
        assert args.csv == "out.csv"


class TestCommands:
    def test_waters(self, capsys):
        assert main(["waters"]) == 0
        out = capsys.readouterr().out
        assert "ACET(us)" in out
        assert "200" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--tasks", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "P-diff" in out
        assert "S-diff" in out
        assert "chains into" in out

    def test_analyze_save_and_load(self, capsys, tmp_path):
        path = tmp_path / "workload.json"
        assert main(["analyze", "--tasks", "8", "--seed", "2",
                     "--output", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["analyze", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "S-diff" in out

    def test_report(self, capsys):
        assert main(["report", "--tasks", "8", "--seed", "2",
                     "--requirement", "k1=300"]) == 0
        out = capsys.readouterr().out
        assert "utilization per unit" in out
        assert "disparity bounds" in out

    def test_report_bad_requirement(self):
        with pytest.raises(SystemExit):
            main(["report", "--tasks", "6", "--requirement", "oops"])

    def test_diagnose(self, capsys):
        assert main(["diagnose", "--tasks", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst-case time disparity" in out
        assert "binding pair" in out

    def test_diagnose_with_optimize(self, capsys):
        assert main(
            ["diagnose", "--tasks", "6", "--seed", "3", "--optimize"]
        ) == 0
        out = capsys.readouterr().out
        assert "priority optimization" in out

    def test_fig6_smoke(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "fig6",
                "--part",
                "ab",
                "--preset",
                "smoke",
                "--duration",
                "2",
                "--graphs",
                "1",
                "--sims",
                "1",
                "--quiet",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "P-diff(ms)" in out

    def test_campaign_run_and_merge_match_direct_run(self, capsys, tmp_path):
        # Two shards run via the CLI, merged via the CLI (files passed
        # out of order), must reproduce the direct serial CSV bytes.
        from repro.experiments import preset_ab
        from repro.experiments.fig6 import run_fig6_ab
        from repro.experiments.reporting import csv_ab
        from repro.units import seconds

        scale = ["--preset", "smoke", "--duration", "2", "--graphs", "1",
                 "--sims", "1"]
        paths = []
        for index in range(2):
            path = tmp_path / f"shard-{index}.jsonl"
            assert main(
                ["campaign", "run", "--part", "ab", *scale,
                 "--shard", f"{index}/2", "--out", str(path), "--quiet"]
            ) == 0
            assert path.exists()
            paths.append(str(path))
        merged_csv = tmp_path / "merged.csv"
        capsys.readouterr()
        assert main(
            ["campaign", "merge", "--part", "ab", *scale,
             *reversed(paths), "--csv", str(merged_csv)]
        ) == 0
        assert "merged 2 shard file(s)" in capsys.readouterr().out
        config = preset_ab("smoke").scaled(
            sim_duration=seconds(2), graphs_per_point=1, sims_per_graph=1
        )
        # Byte-level read: the csv module's \r\n endings must survive.
        assert merged_csv.read_bytes().decode() == csv_ab(run_fig6_ab(config))

    def test_campaign_merge_prints_csv_without_path(self, capsys, tmp_path):
        path = tmp_path / "only.jsonl"
        scale = ["--preset", "smoke", "--duration", "2", "--graphs", "1",
                 "--sims", "1"]
        assert main(
            ["campaign", "run", "--part", "ab", *scale,
             "--shard", "0/1", "--out", str(path), "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "merge", "--part", "ab", *scale, str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("n_tasks,")

    def test_campaign_run_rejects_bad_shard_spec(self):
        with pytest.raises(ValueError):
            main(["campaign", "run", "--part", "ab", "--preset", "smoke",
                  "--shard", "3/2", "--out", "x.jsonl", "--quiet"])

"""Tests for the integer-nanosecond time base."""

import pytest
from fractions import Fraction

from repro.units import (
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    ceil_div,
    exact_ratio,
    floor_div,
    format_time,
    lcm,
    ms,
    ns,
    seconds,
    to_ms,
    to_s,
    to_us,
    us,
)


class TestConversions:
    def test_ms_is_million_ns(self):
        assert ms(1) == 1_000_000

    def test_us_is_thousand_ns(self):
        assert us(1) == 1_000

    def test_seconds(self):
        assert seconds(2) == 2 * NS_PER_S

    def test_fractional_us_rounds(self):
        # WATERS ACETs are fractional microseconds.
        assert us(5.34) == 5_340
        assert us(0.4997) == 500

    def test_ns_rounds_to_int(self):
        assert ns(1.4) == 1
        assert ns(1.6) == 2

    def test_roundtrip_ms(self):
        assert to_ms(ms(17)) == 17.0

    def test_roundtrip_us(self):
        assert to_us(us(250)) == 250.0

    def test_roundtrip_s(self):
        assert to_s(seconds(3)) == 3.0


class TestIntegerDivision:
    def test_floor_div_positive(self):
        assert floor_div(7, 2) == 3

    def test_floor_div_negative(self):
        # Mathematical floor, required by Theorem 2's y recursion.
        assert floor_div(-7, 2) == -4

    def test_floor_div_exact(self):
        assert floor_div(-8, 2) == -4

    def test_ceil_div_positive(self):
        assert ceil_div(7, 2) == 4

    def test_ceil_div_negative(self):
        # Mathematical ceiling, required by Theorem 2's x recursion.
        assert ceil_div(-7, 2) == -3

    def test_ceil_div_exact(self):
        assert ceil_div(8, 2) == 4

    def test_ceil_floor_sandwich(self):
        for numerator in range(-25, 26):
            for denominator in (1, 2, 3, 7):
                lo = floor_div(numerator, denominator)
                hi = ceil_div(numerator, denominator)
                assert lo <= numerator / denominator <= hi
                assert hi - lo in (0, 1)

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            floor_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_denominator(self):
        with pytest.raises(ValueError):
            floor_div(1, -2)
        with pytest.raises(ValueError):
            ceil_div(1, -2)


class TestLcm:
    def test_pairwise(self):
        assert lcm(4, 6) == 12

    def test_waters_periods(self):
        # The WATERS period set shares a 200 ms hyperperiod.
        periods = [ms(p) for p in (1, 2, 5, 10, 20, 50, 100, 200)]
        assert lcm(*periods) == ms(200)

    def test_single_value(self):
        assert lcm(7) == 7

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            lcm()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm(0, 3)


class TestFormatting:
    def test_format_seconds(self):
        assert format_time(seconds(1.5)) == "1.500s"

    def test_format_ms(self):
        assert format_time(ms(20)) == "20.000ms"

    def test_format_us(self):
        assert format_time(us(17)) == "17.000us"

    def test_format_ns(self):
        assert format_time(412) == "412ns"

    def test_format_negative(self):
        assert format_time(-ms(3)) == "-3.000ms"

    def test_exact_ratio(self):
        assert exact_ratio(1, 3) == Fraction(1, 3)

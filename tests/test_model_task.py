"""Tests for the periodic task model."""

import pytest

from repro.model.task import ModelError, Task, message_task, source_task
from repro.units import ms, us


class TestTaskValidation:
    def test_valid_task(self):
        task = Task("t", ms(10), us(100), us(10))
        assert task.period == ms(10)
        assert task.wcet == us(100)
        assert task.bcet == us(10)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Task("", ms(10), us(1), us(1))

    def test_rejects_zero_period(self):
        with pytest.raises(ModelError):
            Task("t", 0, 0, 0)

    def test_rejects_negative_period(self):
        with pytest.raises(ModelError):
            Task("t", -ms(1), 0, 0)

    def test_rejects_negative_wcet(self):
        with pytest.raises(ModelError):
            Task("t", ms(10), -1, 0)

    def test_rejects_bcet_above_wcet(self):
        with pytest.raises(ModelError):
            Task("t", ms(10), us(5), us(6))

    def test_rejects_wcet_above_period(self):
        with pytest.raises(ModelError):
            Task("t", ms(1), ms(2), ms(1))

    def test_rejects_negative_offset(self):
        with pytest.raises(ModelError):
            Task("t", ms(10), us(1), us(1), offset=-1)

    def test_equal_bcet_wcet_allowed(self):
        task = Task("t", ms(10), us(5), us(5))
        assert task.bcet == task.wcet


class TestTaskProperties:
    def test_utilization(self):
        task = Task("t", ms(10), ms(1), us(100))
        assert task.utilization == pytest.approx(0.1)

    def test_instantaneous_source(self):
        task = source_task("s", ms(10))
        assert task.is_instantaneous
        assert task.wcet == 0 and task.bcet == 0
        assert task.kind == "source"

    def test_compute_not_instantaneous(self):
        task = Task("t", ms(10), us(5), us(1))
        assert not task.is_instantaneous

    def test_with_offset_returns_copy(self):
        task = Task("t", ms(10), us(5), us(1))
        shifted = task.with_offset(ms(3))
        assert shifted.offset == ms(3)
        assert task.offset == 0
        assert shifted.name == task.name

    def test_with_priority(self):
        task = Task("t", ms(10), us(5), us(1))
        assert task.with_priority(4).priority == 4

    def test_with_mapping(self):
        task = Task("t", ms(10), us(5), us(1))
        assert task.with_mapping("ecu3").ecu == "ecu3"

    def test_describe_mentions_name_and_period(self):
        text = Task("planner", ms(20), us(5), us(1)).describe()
        assert "planner" in text
        assert "20.000ms" in text

    def test_tasks_are_hashable(self):
        a = Task("t", ms(10), us(5), us(1))
        b = Task("t", ms(10), us(5), us(1))
        assert a == b
        assert hash(a) == hash(b)


class TestMessageTask:
    def test_basic(self):
        msg = message_task("m", ms(10), us(270), bus="can0")
        assert msg.ecu == "can0"
        assert msg.wcet == us(270)
        assert msg.bcet == us(270)
        assert msg.kind == "message"

    def test_custom_bcet(self):
        msg = message_task("m", ms(10), us(270), bus="can0", jitter_free_bcet=us(100))
        assert msg.bcet == us(100)

    def test_priority(self):
        msg = message_task("m", ms(10), us(270), bus="can0", priority=3)
        assert msg.priority == 3

"""Tests for the backward-time bounds (Lemmas 4, 5, 6) — exact values.

The diamond fixture has unit execution times and priorities ascending
along every chain, so each same-unit hop budget of Lemma 4 is exactly
``T(producer)`` and all fixed points are computable by hand (see the
inline derivations).
"""

import pytest

from repro.chains.backward import (
    BackwardBounds,
    BackwardBoundsCache,
    backward_bounds,
    bcbt_lower,
    buffer_shift,
    hop_budget,
    wcbt_upper,
)
from repro.model.chain import Chain
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task, source_task
from repro.units import ms


class TestResponseTimesOfFixture:
    """Pin down the WCRTs the bound tests below rely on."""

    def test_diamond_response_times(self, diamond_system):
        assert diamond_system.R("a") == ms(2)
        assert diamond_system.R("b") == ms(3)
        assert diamond_system.R("m") == ms(4)
        assert diamond_system.R("x") == ms(5)
        assert diamond_system.R("y") == ms(6)
        assert diamond_system.R("sink") == ms(6)


class TestHopBudget:
    def test_hp_producer_same_unit(self, diamond_system):
        # a (prio 1) in hp(m) (prio 3): theta = T(a).
        assert hop_budget(diamond_system, "a", "m") == ms(10)

    def test_source_producer(self, diamond_system):
        assert hop_budget(diamond_system, "s", "a") == ms(10)

    def test_lp_producer_same_unit(self):
        # Producer with LOWER priority than consumer:
        # theta = T + R - (W(prod) + B(cons)).
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("cons", ms(10), ms(1), ms(1), ecu="e", priority=1))
        graph.add_task(Task("prod", ms(20), ms(2), ms(2), ecu="e", priority=2))
        graph.add_channel("s", "prod")
        graph.add_channel("prod", "cons")
        system = System.build(graph)
        # R(prod): blocking 0 (lowest), hp = {cons}: s = (floor(s/10)+1)*1
        # -> s=1, R=3.
        assert system.R("prod") == ms(3)
        assert hop_budget(system, "prod", "cons") == ms(20) + ms(3) - (ms(2) + ms(1))

    def test_cross_unit(self):
        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e1", priority=0))
        graph.add_task(Task("p", ms(10), ms(1), ms(1), ecu="e1", priority=1))
        graph.add_task(Task("c", ms(10), ms(1), ms(1), ecu="e2", priority=0))
        graph.add_channel("s", "p")
        graph.add_channel("p", "c")
        system = System.build(graph)
        assert hop_budget(system, "p", "c") == ms(10) + system.R("p")


class TestWcbtUpper:
    def test_chain_through_x(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert wcbt_upper(chain, diamond_system) == ms(60)

    def test_chain_through_y(self, diamond_system):
        chain = Chain.of("s", "b", "m", "y", "sink")
        assert wcbt_upper(chain, diamond_system) == ms(90)

    def test_singleton_chain(self, diamond_system):
        assert wcbt_upper(Chain.of("s"), diamond_system) == 0

    def test_subchain_additivity(self, diamond_system):
        # Lemma 4 is a sum over hops, so W is additive over a split.
        full = Chain.of("s", "a", "m", "x", "sink")
        first = Chain.of("s", "a", "m")
        second = Chain.of("m", "x", "sink")
        assert wcbt_upper(full, diamond_system) == wcbt_upper(
            first, diamond_system
        ) + wcbt_upper(second, diamond_system)

    def test_invalid_chain_rejected(self, diamond_system):
        with pytest.raises(ModelError):
            wcbt_upper(Chain.of("s", "m"), diamond_system)


class TestBcbtLower:
    def test_chain_through_x(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        # sum(B) = 0+1+1+1+1 = 4; R(sink) = 6.
        assert bcbt_lower(chain, diamond_system) == -ms(2)

    def test_can_be_negative(self, diamond_system):
        assert bcbt_lower(Chain.of("s", "a"), diamond_system) == ms(1) - ms(2)

    def test_singleton(self, diamond_system):
        assert bcbt_lower(Chain.of("s"), diamond_system) == 0


class TestBufferShift:
    def test_no_buffers(self, diamond_system):
        assert buffer_shift(Chain.of("s", "a", "m"), diamond_system) == 0

    def test_head_buffer_lemma6(self, diamond_system):
        buffered = diamond_system.with_channel_capacity("s", "a", 4)
        chain = Chain.of("s", "a", "m", "x", "sink")
        shift = (4 - 1) * ms(10)
        assert wcbt_upper(chain, buffered) == ms(60) + shift
        assert bcbt_lower(chain, buffered) == -ms(2) + shift

    def test_mid_chain_buffer(self, diamond_system):
        buffered = diamond_system.with_channel_capacity("m", "x", 2)
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert buffer_shift(chain, buffered) == ms(20)
        assert wcbt_upper(chain, buffered) == ms(80)

    def test_unrelated_buffer_ignored(self, diamond_system):
        buffered = diamond_system.with_channel_capacity("m", "y", 5)
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert wcbt_upper(chain, buffered) == ms(60)


class TestBackwardBounds:
    def test_record(self, diamond_system):
        bounds = backward_bounds(Chain.of("s", "a", "m"), diamond_system)
        assert bounds.wcbt == ms(20)
        assert bounds.bcbt == -ms(2)
        assert bounds.width == ms(22)

    def test_inconsistent_rejected(self):
        with pytest.raises(ModelError):
            BackwardBounds(chain=Chain.of("a"), wcbt=0, bcbt=1)

    def test_cache_returns_same_values(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        chain = Chain.of("s", "a", "m")
        assert cache.wcbt(chain) == wcbt_upper(chain, diamond_system)
        assert cache.bcbt(chain) == bcbt_lower(chain, diamond_system)

    def test_cache_memoizes(self, diamond_system):
        cache = BackwardBoundsCache(diamond_system)
        chain = Chain.of("s", "a", "m")
        first = cache.bounds(chain)
        second = cache.bounds(Chain.of("s", "a", "m"))
        assert first is second
        assert len(cache) == 1

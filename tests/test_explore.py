"""Tests for the design-space exploration utilities."""

import pytest

from repro.explore import (
    Margin,
    SweepPoint,
    best_capacity,
    buffer_capacity_sweep,
    disparity_margins,
    period_sensitivity,
)
from repro.model.task import ModelError
from repro.units import ms


class TestPeriodSensitivity:
    def test_fig4_style_insensitivity(self, merged_system):
        # Sweeping the fast chain's middle task leaves the bound
        # untouched when the binding term is the other chain's WCBT.
        points = period_sensitivity(
            merged_system, "pa", "sink", [ms(10), ms(5), ms(2)]
        )
        bounds = {p.value: p.bound for p in points if p.schedulable}
        assert len(set(bounds.values())) == 1

    def test_slow_chain_period_matters(self, merged_system):
        # Shrinking the slow producer's period shrinks its WCBT and the
        # disparity bound with it.
        points = period_sensitivity(
            merged_system, "pb", "sink", [ms(50), ms(10)]
        )
        by_value = {p.value: p for p in points}
        assert by_value[ms(10)].bound < by_value[ms(50)].bound

    def test_unschedulable_candidate_reported(self, merged_system):
        # Period 1 ms < pb's WCET (2 ms): the Task model itself rejects
        # it, reported as unschedulable rather than raising.
        points = period_sensitivity(merged_system, "pb", "sink", [ms(1)])
        assert points == [SweepPoint(value=ms(1), bound=None, schedulable=False)]


class TestBufferSweep:
    def test_v_shape_minimum_at_algorithm1(self, merged_system):
        # Algorithm 1 designed capacity 5 for (sa, pa) (see
        # test_buffers); the sweep must bottom out there.
        points = buffer_capacity_sweep(
            merged_system, ("sa", "pa"), "sink", max_capacity=10
        )
        best = best_capacity(points)
        assert best.value == 5
        assert best.bound == ms(62)

    def test_capacity_one_is_base(self, merged_system):
        from repro.core.disparity import disparity_bound

        points = buffer_capacity_sweep(
            merged_system, ("sa", "pa"), "sink", max_capacity=3
        )
        assert points[0].value == 1
        assert points[0].bound == disparity_bound(merged_system, "sink")

    def test_unknown_channel_rejected(self, merged_system):
        with pytest.raises(ModelError):
            buffer_capacity_sweep(merged_system, ("sa", "sink"), "sink")

    def test_invalid_max_capacity(self, merged_system):
        with pytest.raises(ModelError):
            buffer_capacity_sweep(
                merged_system, ("sa", "pa"), "sink", max_capacity=0
            )

    def test_best_capacity_requires_feasible(self):
        with pytest.raises(ModelError):
            best_capacity([SweepPoint(value=1, bound=None, schedulable=False)])


class TestObservedSweeps:
    """Sweeps with batched replications attached per candidate."""

    def test_observed_requires_duration(self, merged_system):
        with pytest.raises(ModelError):
            buffer_capacity_sweep(
                merged_system,
                ("sa", "pa"),
                "sink",
                max_capacity=2,
                observed_sims=2,
            )

    def test_observed_below_bound_and_jobs_invariant(self, merged_system):
        kwargs = dict(
            max_capacity=3,
            observed_sims=3,
            observed_duration=ms(400),
            observed_warmup=ms(100),
            seed=9,
        )
        serial = buffer_capacity_sweep(
            merged_system, ("sa", "pa"), "sink", jobs=1, **kwargs
        )
        parallel = buffer_capacity_sweep(
            merged_system, ("sa", "pa"), "sink", jobs=2, **kwargs
        )
        assert serial == parallel
        for point in serial:
            assert point.observed is not None
            # Observed disparity is a lower bound on the analytic one.
            assert 0 <= point.observed <= point.bound

    def test_observed_default_off(self, merged_system):
        points = period_sensitivity(
            merged_system, "pb", "sink", [ms(50), ms(10)]
        )
        assert all(p.observed is None for p in points)

    def test_observed_period_sweep(self, merged_system):
        points = period_sensitivity(
            merged_system,
            "pb",
            "sink",
            [ms(50), ms(1)],
            observed_sims=2,
            observed_duration=ms(300),
        )
        assert points[0].observed is not None
        # Unschedulable candidates carry no observation.
        assert not points[1].schedulable and points[1].observed is None


class TestMargins:
    def test_margins(self, merged_system):
        margins = disparity_margins(
            merged_system, {"sink": ms(150), "pa": ms(1)}
        )
        by_task = {m.task: m for m in margins}
        assert by_task["sink"].bound == ms(102)
        assert by_task["sink"].satisfied
        assert by_task["sink"].slack == ms(48)
        # pa has a single chain: zero disparity, trivially satisfied.
        assert by_task["pa"].bound == 0
        assert by_task["pa"].satisfied


class TestGantt:
    def test_render(self):
        from repro.model.graph import CauseEffectGraph
        from repro.model.system import System
        from repro.model.task import Task, source_task
        from repro.sim.engine import simulate
        from repro.sim.exec_time import wcet_policy
        from repro.sim.gantt import render_gantt
        from repro.sim.metrics import JobTableMonitor

        graph = CauseEffectGraph()
        graph.add_task(source_task("s", ms(10), ecu="e", priority=0))
        graph.add_task(Task("hi", ms(10), ms(2), ms(2), ecu="e", priority=1))
        graph.add_task(Task("lo", ms(20), ms(5), ms(5), ecu="e", priority=2))
        graph.add_channel("s", "hi")
        graph.add_channel("s", "lo")
        system = System.build(graph)
        monitor = JobTableMonitor()
        simulate(system, ms(40), observers=[monitor], policy=wcet_policy)
        chart = render_gantt(monitor, width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("gantt")
        assert any(line.startswith("hi") and "#" in line for line in lines)
        assert any(line.startswith("lo") and "#" in line for line in lines)

    def test_empty_monitor(self):
        from repro.sim.gantt import render_gantt
        from repro.sim.metrics import JobTableMonitor

        assert "(no jobs" in render_gantt(JobTableMonitor())

    def test_bad_window_rejected(self):
        from repro.model.task import ModelError
        from repro.sim.gantt import render_gantt
        from repro.sim.metrics import JobRecord, JobTableMonitor

        monitor = JobTableMonitor()
        monitor.jobs.append(
            JobRecord(task="t", index=0, unit="e", release=0, start=0, finish=5)
        )
        with pytest.raises(ModelError):
            render_gantt(monitor, start=10, end=5)
        with pytest.raises(ModelError):
            render_gantt(monitor, width=2)

"""Tests for the derived end-to-end latency bounds (extension)."""

import pytest

from repro.chains.latency import (
    max_data_age,
    max_data_age_agnostic,
    max_reaction_time,
    max_reaction_time_np,
)
from repro.model.chain import Chain
from repro.units import ms


class TestDataAge:
    def test_age_is_wcbt_plus_tail_response(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert max_data_age(chain, diamond_system) == ms(60) + ms(6)

    def test_agnostic_age_never_tighter(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert max_data_age_agnostic(chain, diamond_system) >= max_data_age(
            chain, diamond_system
        )


class TestReactionTime:
    def test_davare_bound(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        # sum(T + R) over all five stages:
        # 10+0, 10+2, 20+4, 20+5, 40+6 = 117.
        assert max_reaction_time(chain, diamond_system) == ms(117)

    def test_np_bound_no_worse(self, diamond_system):
        for tasks in (
            ("s", "a", "m", "x", "sink"),
            ("s", "b", "m", "y", "sink"),
        ):
            chain = Chain.of(*tasks)
            assert max_reaction_time_np(chain, diamond_system) <= max_reaction_time(
                chain, diamond_system
            )

    def test_np_bound_value(self, diamond_system):
        chain = Chain.of("s", "a", "m", "x", "sink")
        # min(davare, T(head) + W + T(tail) + R(tail))
        # = min(117, 10 + 60 + 40 + 6) = 116.
        assert max_reaction_time_np(chain, diamond_system) == ms(116)

    def test_singleton_chain(self, diamond_system):
        chain = Chain.of("s")
        assert max_reaction_time(chain, diamond_system) == ms(10)
        assert max_reaction_time_np(chain, diamond_system) == ms(10)

    def test_reaction_exceeds_age(self, diamond_system):
        # Reaction includes the stimulus-capture wait; age does not.
        chain = Chain.of("s", "a", "m", "x", "sink")
        assert max_reaction_time_np(chain, diamond_system) > max_data_age(
            chain, diamond_system
        )

"""Tests for JSON serialization of cause-effect graphs."""

import json

import pytest

from repro.io import (
    FORMAT_NAME,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.model.system import System
from repro.model.task import ModelError


class TestRoundtrip:
    def test_dict_roundtrip(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        back = graph_from_dict(data)
        assert set(back.task_names) == set(diamond_graph.task_names)
        for name in diamond_graph.task_names:
            original = diamond_graph.task(name)
            restored = back.task(name)
            assert restored == original
        assert {(c.src, c.dst, c.capacity) for c in back.channels} == {
            (c.src, c.dst, c.capacity) for c in diamond_graph.channels
        }

    def test_file_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        back = load_graph(path)
        assert set(back.task_names) == set(diamond_graph.task_names)

    def test_capacities_preserved(self, merged_graph, tmp_path):
        merged_graph.set_channel_capacity("sa", "pa", 5)
        path = tmp_path / "graph.json"
        save_graph(merged_graph, path)
        assert load_graph(path).channel("sa", "pa").capacity == 5

    def test_reanalysis_identical(self, diamond_graph, tmp_path):
        from repro.core.disparity import disparity_bound

        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        original = System.build(diamond_graph)
        restored = System.build(load_graph(path))
        assert disparity_bound(restored, "sink") == disparity_bound(
            original, "sink"
        )

    def test_generated_workload_roundtrip(self, rng, tmp_path):
        from repro.gen import generate_random_scenario

        scenario = generate_random_scenario(12, rng)
        path = tmp_path / "workload.json"
        save_graph(scenario.system.graph, path)
        back = load_graph(path)
        assert len(back) == len(scenario.system.graph)


class TestFormatValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict({"format": FORMAT_NAME, "version": 99})

    def test_non_dict_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict(["not", "a", "graph"])

    def test_missing_task_field_rejected(self):
        data = {
            "format": FORMAT_NAME,
            "version": 1,
            "tasks": [{"name": "t"}],
            "channels": [],
        }
        with pytest.raises(ModelError):
            graph_from_dict(data)

    def test_missing_channel_field_rejected(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        data["channels"] = [{"src": "s"}]
        with pytest.raises(ModelError):
            graph_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_graph(path)

    def test_document_is_stable_json(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == FORMAT_NAME
        assert isinstance(parsed["tasks"], list)


class TestReleaseModelSerialization:
    def _graph(self):
        from repro.model.graph import CauseEffectGraph
        from repro.model.task import ReleaseModel, Task, source_task
        from repro.units import ms

        graph = CauseEffectGraph()
        graph.add_task(
            source_task(
                "cam", ms(10), ecu="e", priority=0,
                release_model=ReleaseModel.jittered(ms(2)),
            )
        )
        graph.add_task(
            Task(
                "proc", ms(30), ms(2), ms(1), ecu="e", priority=1,
                release_model=ReleaseModel.sporadic(ms(20), ms(45)),
            )
        )
        graph.add_task(Task("sink", ms(30), ms(2), ms(1), ecu="e", priority=2))
        graph.add_channel("cam", "proc")
        graph.add_channel("proc", "sink")
        return graph

    def test_roundtrip_preserves_release_models(self, tmp_path):
        graph = self._graph()
        path = tmp_path / "graph.json"
        save_graph(graph, path)
        back = load_graph(path)
        for name in graph.task_names:
            assert back.task(name).release_model == graph.task(name).release_model

    def test_periodic_tasks_omit_release_key(self):
        # Back-compat: strictly periodic documents are byte-identical
        # to pre-release-model documents.
        data = graph_to_dict(self._graph())
        by_name = {entry["name"]: entry for entry in data["tasks"]}
        assert "release" not in by_name["sink"]
        assert by_name["cam"]["release"] == {"kind": "jitter", "jitter_ns": 2_000_000}
        assert by_name["proc"]["release"] == {
            "kind": "sporadic",
            "min_gap_ns": 20_000_000,
            "max_gap_ns": 45_000_000,
        }

    def test_unknown_release_kind_rejected(self):
        data = graph_to_dict(self._graph())
        for entry in data["tasks"]:
            if entry["name"] == "cam":
                entry["release"] = {"kind": "bursty"}
        with pytest.raises(ModelError):
            graph_from_dict(data)

    def test_networkx_roundtrip_preserves_release_models(self):
        pytest.importorskip("networkx")
        from repro.gen.graphgen import from_networkx, to_networkx

        graph = self._graph()
        back = from_networkx(to_networkx(graph))
        for name in graph.task_names:
            assert back.task(name).release_model == graph.task(name).release_model

"""Tests for JSON serialization of cause-effect graphs."""

import json

import pytest

from repro.io import (
    FORMAT_NAME,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.model.system import System
from repro.model.task import ModelError


class TestRoundtrip:
    def test_dict_roundtrip(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        back = graph_from_dict(data)
        assert set(back.task_names) == set(diamond_graph.task_names)
        for name in diamond_graph.task_names:
            original = diamond_graph.task(name)
            restored = back.task(name)
            assert restored == original
        assert {(c.src, c.dst, c.capacity) for c in back.channels} == {
            (c.src, c.dst, c.capacity) for c in diamond_graph.channels
        }

    def test_file_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        back = load_graph(path)
        assert set(back.task_names) == set(diamond_graph.task_names)

    def test_capacities_preserved(self, merged_graph, tmp_path):
        merged_graph.set_channel_capacity("sa", "pa", 5)
        path = tmp_path / "graph.json"
        save_graph(merged_graph, path)
        assert load_graph(path).channel("sa", "pa").capacity == 5

    def test_reanalysis_identical(self, diamond_graph, tmp_path):
        from repro.core.disparity import disparity_bound

        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        original = System.build(diamond_graph)
        restored = System.build(load_graph(path))
        assert disparity_bound(restored, "sink") == disparity_bound(
            original, "sink"
        )

    def test_generated_workload_roundtrip(self, rng, tmp_path):
        from repro.gen import generate_random_scenario

        scenario = generate_random_scenario(12, rng)
        path = tmp_path / "workload.json"
        save_graph(scenario.system.graph, path)
        back = load_graph(path)
        assert len(back) == len(scenario.system.graph)


class TestFormatValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict({"format": FORMAT_NAME, "version": 99})

    def test_non_dict_rejected(self):
        with pytest.raises(ModelError):
            graph_from_dict(["not", "a", "graph"])

    def test_missing_task_field_rejected(self):
        data = {
            "format": FORMAT_NAME,
            "version": 1,
            "tasks": [{"name": "t"}],
            "channels": [],
        }
        with pytest.raises(ModelError):
            graph_from_dict(data)

    def test_missing_channel_field_rejected(self, diamond_graph):
        data = graph_to_dict(diamond_graph)
        data["channels"] = [{"src": "s"}]
        with pytest.raises(ModelError):
            graph_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ModelError):
            load_graph(path)

    def test_document_is_stable_json(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_graph(diamond_graph, path)
        parsed = json.loads(path.read_text())
        assert parsed["format"] == FORMAT_NAME
        assert isinstance(parsed["tasks"], list)

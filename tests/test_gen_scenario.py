"""Tests for end-to-end scenario generation."""

import random

import pytest

from repro.gen.scenario import (
    Scenario,
    ScenarioConfig,
    generate_merged_pair_scenario,
    generate_random_scenario,
)
from repro.model.task import ModelError
from repro.sched.response_time import analyze_all


class TestRandomScenario:
    def test_valid_and_schedulable(self, rng):
        scenario = generate_random_scenario(15, rng)
        assert scenario.sink in scenario.system.graph.task_names
        # Schedulability is part of System.build; re-check explicitly.
        analyze_all(scenario.system.graph.tasks)

    def test_sink_is_single(self, rng):
        scenario = generate_random_scenario(15, rng)
        assert scenario.system.graph.sinks() == (scenario.sink,)

    def test_gnm_generator(self, rng):
        config = ScenarioConfig(generator="gnm")
        scenario = generate_random_scenario(12, rng, config)
        assert len([t for t in scenario.system.graph.tasks if t.kind != "message"]) == 12

    def test_fusion_generator_task_count(self, rng):
        config = ScenarioConfig(n_ecus=1, use_bus=False)
        scenario = generate_random_scenario(12, rng, config)
        assert len(scenario.system.graph) == 12

    def test_unknown_generator_rejected(self, rng):
        with pytest.raises(ModelError):
            generate_random_scenario(10, rng, ScenarioConfig(generator="tree"))

    def test_deterministic_per_seed(self):
        s1 = generate_random_scenario(10, random.Random(4))
        s2 = generate_random_scenario(10, random.Random(4))
        assert [t.describe() for t in s1.system.graph.tasks] == [
            t.describe() for t in s2.system.graph.tasks
        ]

    def test_attempt_budget_exhausted(self, rng):
        # max_paths=0 is unsatisfiable: every graph has >= 1 path.
        config = ScenarioConfig(max_paths=0, max_attempts=3)
        with pytest.raises(ModelError):
            generate_random_scenario(10, rng, config)


class TestMergedPairScenario:
    def test_structure(self, rng):
        scenario = generate_merged_pair_scenario(6, rng)
        assert scenario.sink == "sink"
        graph = scenario.system.graph
        non_message = [t for t in graph.tasks if t.kind != "message"]
        assert len(non_message) == 2 * 6 - 1

    def test_exactly_two_chains(self, rng):
        from repro.model.chain import enumerate_source_chains

        scenario = generate_merged_pair_scenario(5, rng)
        chains = enumerate_source_chains(scenario.system.graph, "sink")
        assert len(chains) == 2


class TestReleaseModelKnob:
    def test_release_models_attached_and_schedulable(self):
        from repro.gen import ReleaseModelSampler

        config = ScenarioConfig(
            release_models=ReleaseModelSampler(
                jitter_fraction=0.4, sporadic_fraction=0.2
            )
        )
        kinds = set()
        for seed in range(6):
            scenario = generate_random_scenario(12, random.Random(seed), config)
            kinds |= {
                t.release_model.kind for t in scenario.system.graph.tasks
            }
            # System.build succeeded: the jitter/sporadic-aware RTA
            # accepted the task set.
            for task in scenario.system.graph.tasks:
                if task.kind == "message":
                    assert task.release_model.is_periodic
        assert "jitter" in kinds
        assert "sporadic" in kinds

    def test_default_config_stays_periodic_and_stream_identical(self):
        from repro.gen import ReleaseModelSampler

        plain = generate_random_scenario(10, random.Random(21))
        trivial = generate_random_scenario(
            10,
            random.Random(21),
            ScenarioConfig(release_models=ReleaseModelSampler()),
        )
        assert [t.describe() for t in plain.system.graph.tasks] == [
            t.describe() for t in trivial.system.graph.tasks
        ]
        assert all(
            t.release_model.is_periodic for t in plain.system.graph.tasks
        )

"""Differential suite for delta compilation (offset-only candidate views).

A :meth:`CompiledScenario.with_offsets` view rebases the precomputed
release-stream tables by vector shift instead of regenerating and
re-sorting grids — so its results must be byte-identical to

* a *fresh* ``compile_scenario`` evaluated at the same offset vector
  (pins that the shared per-horizon stream cache never leaks state
  between candidates), and
* the plain simulator run on a system with the offsets applied to the
  graph (an independent reference that shares none of the delta code).

Both identities are exercised on hypothesis-generated systems, under
both communication semantics, with zero-BCET finish-cascades, and for
out-of-domain offsets (outside ``[0, T]``), where the view must fall
back to the per-replication simulator rather than replaying the
compiled tables.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.batch as batch_mod
from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.batch import CompiledScenario, compile_scenario
from repro.sim.engine import simulate
from repro.sim.exec_time import named_policy
from repro.sim.metrics import DisparityMonitor


def _scenario(seed: int, n_tasks: int):
    scenario = generate_random_scenario(n_tasks, random.Random(seed))
    return scenario.system, scenario.sink


def _offset_vectors(system, seed: int, count: int):
    """``count`` in-domain candidate vectors, offsets in ``[1, T]``."""
    rng = random.Random(seed)
    periods = [task.period for task in system.graph.tasks]
    return [
        tuple(rng.randint(1, period) for period in periods)
        for _ in range(count)
    ]


def _simulator_reference(
    system, task, offsets, *, seed, duration, warmup, policy, semantics
):
    """Independent oracle: offsets applied to the graph, plain simulate."""
    graph = system.graph.copy()
    for tid, t in enumerate(graph.tasks):
        graph.replace_task(t.with_offset(offsets[tid]))
    variant = System(graph=graph, response_times=system.response_times)
    monitor = DisparityMonitor([task], warmup=warmup)
    simulate(
        variant,
        duration,
        seed=seed,
        policy=named_policy(policy),
        observers=[monitor],
        semantics=semantics,
    )
    return monitor.disparity(task)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_tasks=st.integers(min_value=5, max_value=12),
    semantics=st.sampled_from(["implicit", "let"]),
    policy=st.sampled_from(["uniform", "wcet"]),
)
def test_delta_replay_matches_fresh_compile_and_simulator(
    seed, n_tasks, semantics, policy
):
    system, sink = _scenario(seed, n_tasks)
    duration = 3 * max(task.period for task in system.graph.tasks)
    warmup = duration // 4
    shared = compile_scenario(system, sink, semantics=semantics)
    if not shared.eligible:
        return
    for index, vector in enumerate(_offset_vectors(system, seed ^ 0x5A, 4)):
        view = shared.with_offsets(vector)
        assert view.delta_replay
        run_seed = seed + index
        got = view.disparity(run_seed, duration, warmup, policy)
        fresh = (
            compile_scenario(system, sink, semantics=semantics)
            .with_offsets(vector)
            .disparity(run_seed, duration, warmup, policy)
        )
        assert got == fresh
        assert got == _simulator_reference(
            system,
            sink,
            vector,
            seed=run_seed,
            duration=duration,
            warmup=warmup,
            policy=policy,
            semantics=semantics,
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    semantics=st.sampled_from(["implicit", "let"]),
)
def test_delta_replay_with_zero_bcet_cascades(seed, semantics):
    """Instantaneous finish-cascades replay identically through views."""
    system, sink = _scenario(seed, 8)
    graph = system.graph.copy()
    for t in graph.tasks:
        if not t.is_instantaneous:
            graph.replace_task(replace(t, bcet=0))
    cascaded = System(graph=graph, response_times=system.response_times)
    shared = compile_scenario(cascaded, sink, semantics=semantics)
    if not shared.eligible:
        return
    duration = 2 * max(task.period for task in graph.tasks)
    for index, vector in enumerate(_offset_vectors(cascaded, seed, 3)):
        got = shared.with_offsets(vector).disparity(
            seed + index, duration, duration // 4, "bcet"
        )
        assert got == _simulator_reference(
            cascaded,
            sink,
            vector,
            seed=seed + index,
            duration=duration,
            warmup=duration // 4,
            policy="bcet",
            semantics=semantics,
        )


def test_out_of_domain_offsets_fall_back_identically():
    """Offsets outside ``[0, T]`` leave the delta path but not the contract."""
    system, sink = _scenario(19, 7)
    duration = 3 * max(task.period for task in system.graph.tasks)
    shared = compile_scenario(system, sink)
    assert shared.eligible
    periods = [task.period for task in system.graph.tasks]
    vector = tuple(period + 1 for period in periods)  # every offset > T
    view = shared.with_offsets(vector)
    assert not view.in_domain
    assert not view.delta_replay
    got = view.disparity(11, duration, duration // 4, "uniform")
    assert got == _simulator_reference(
        system,
        sink,
        vector,
        seed=11,
        duration=duration,
        warmup=duration // 4,
        policy="uniform",
        semantics="implicit",
    )
    # A single out-of-domain coordinate is enough to force the fallback.
    mixed = tuple(
        period + 1 if tid == 0 else 1 for tid, period in enumerate(periods)
    )
    assert not shared.with_offsets(mixed).in_domain


def test_with_offsets_accepts_name_mapping():
    system, sink = _scenario(5, 6)
    duration = 2 * max(task.period for task in system.graph.tasks)
    shared = compile_scenario(system, sink)
    vector = _offset_vectors(system, 5, 1)[0]
    by_name = {
        t.name: vector[tid] for tid, t in enumerate(system.graph.tasks)
    }
    seq_view = shared.with_offsets(vector)
    map_view = shared.with_offsets(by_name)
    assert seq_view.offsets == map_view.offsets
    assert seq_view.disparity(3, duration) == map_view.disparity(3, duration)
    with pytest.raises(ModelError):
        shared.with_offsets(vector[:-1])
    with pytest.raises(ModelError):
        shared.with_offsets({**by_name, "no-such-task": 1})


def test_delta_replay_without_numpy(monkeypatch):
    """The sorted()-based stream fallback replays views identically."""
    system, sink = _scenario(23, 8)
    duration = 2 * max(task.period for task in system.graph.tasks)
    vectors = _offset_vectors(system, 23, 3)
    with_numpy = [
        compile_scenario(system, sink)
        .with_offsets(vector)
        .disparity(9, duration, duration // 4, "uniform")
        for vector in vectors
    ]
    monkeypatch.setattr(batch_mod, "_np", None)
    shared = compile_scenario(system, sink)
    without_numpy = [
        shared.with_offsets(vector).disparity(
            9, duration, duration // 4, "uniform"
        )
        for vector in vectors
    ]
    assert without_numpy == with_numpy


@pytest.mark.skipif(
    batch_mod._np is None,
    reason="stream tables are the numpy delta path (pure-python "
    "fallback regenerates per candidate)",
)
def test_stream_tables_cached_per_horizon():
    """One candidate warms the per-horizon cache; later ones reuse it."""
    system, sink = _scenario(31, 7)
    duration = 2 * max(task.period for task in system.graph.tasks)
    compiled = CompiledScenario(system, sink)
    assert compiled._stream_cache == {}
    first, second = _offset_vectors(system, 31, 2)
    a = compiled.with_offsets(first).disparity(1, duration)
    assert duration in compiled._stream_cache
    cached = compiled._stream_cache[duration]
    b = compiled.with_offsets(second).disparity(1, duration)
    assert compiled._stream_cache[duration] is cached
    # Same candidate again: identical result off the warmed cache.
    assert compiled.with_offsets(first).disparity(1, duration) == a
    assert compiled.with_offsets(second).disparity(1, duration) == b

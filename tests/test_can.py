"""Tests for CAN frame timing."""

import pytest

from repro.model.can import (
    BITRATE_1M,
    BITRATE_500K,
    best_case_frame_time,
    frame_bits,
    frame_time,
)
from repro.model.task import ModelError
from repro.units import us


class TestFrameBits:
    def test_standard_8_bytes(self):
        # The classical 135-bit worst case.
        assert frame_bits(8) == 135

    def test_standard_0_bytes(self):
        # 47 framing bits + floor(33/4) = 8 stuff bits.
        assert frame_bits(0) == 55

    def test_extended_8_bytes(self):
        # 64 + 67 + floor(117/4) = 160.
        assert frame_bits(8, extended_id=True) == 160

    def test_monotone_in_payload(self):
        values = [frame_bits(n) for n in range(9)]
        assert values == sorted(values)

    def test_extended_larger(self):
        for n in range(9):
            assert frame_bits(n, extended_id=True) > frame_bits(n)

    def test_payload_range_enforced(self):
        with pytest.raises(ModelError):
            frame_bits(9)
        with pytest.raises(ModelError):
            frame_bits(-1)


class TestFrameTime:
    def test_500k_8_bytes(self):
        assert frame_time(8, BITRATE_500K) == us(270)

    def test_1m_8_bytes(self):
        assert frame_time(8, BITRATE_1M) == us(135)

    def test_ceiling_rounding(self):
        # 55 bits at 1 Mbit/s = 55 us exactly; at 999999 bit/s it must
        # round *up*.
        assert frame_time(0, BITRATE_1M) == us(55)
        assert frame_time(0, 999_999) > us(55)

    def test_best_case_below_worst_case(self):
        for n in range(9):
            assert best_case_frame_time(n) <= frame_time(n)

    def test_best_case_no_stuffing(self):
        # 64 + 47 = 111 bits at 1 Mbit/s.
        assert best_case_frame_time(8, BITRATE_1M) == us(111)

    def test_invalid_bitrate(self):
        with pytest.raises(ModelError):
            frame_time(8, 0)
        with pytest.raises(ModelError):
            best_case_frame_time(8, -1)

    def test_matches_default_frame_time_constant(self):
        from repro.model.platform import DEFAULT_FRAME_TIME

        assert frame_time(8, BITRATE_500K) == DEFAULT_FRAME_TIME

"""Cluster coordinator: fault injection, incremental merge, parity.

The coordinator's contract is the sharding contract under fire: no
matter how workers die (SIGKILL mid-shard, torn half-records, stalls,
double-issued shards), the re-issued shards resume from their JSONL
logs and the incrementally merged rows render to CSV text
byte-identical to a serial ``--jobs 1`` run — under implicit **and**
LET semantics.  The fault plans here are injected *inside* the worker
(:class:`ClusterFault` wraps the shard log's append), so every test is
deterministic: a worker dies after exactly N records, not whenever a
racing coordinator happens to notice.

The hypothesis suite drives :class:`IncrementalMerger` directly
against synthesized write interleavings — arbitrary shard counts,
append orders, torn tails, and death/re-issue truncations — and
checks the three-way equality ``incremental fold == merge_shards ==
--jobs 1``.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import SMOKE_AB
from repro.experiments.fig6 import AB_PART
from repro.parallel import (
    ClusterError,
    ClusterFault,
    IncrementalMerger,
    JsonlTail,
    ShardSpec,
    config_fingerprint,
    merge_shards,
    run_campaign,
    run_cluster,
    run_shard,
    write_worker_spec,
)
from repro.parallel.shard import SHARD_FORMAT
from repro.parallel.worker import load_spec, main as worker_main, run_spec
from repro.units import seconds

TINY = SMOKE_AB.scaled(
    x_values=(5, 8), graphs_per_point=2, sims_per_graph=2,
    sim_duration=seconds(2), warmup=seconds(1),
)
CONFIGS = {"implicit": TINY, "let": TINY.scaled(semantics="let")}

# Subprocess workers compute records in milliseconds, so a short
# watchdog deadline is safe everywhere except the stall test, which
# sets its own.
FAST = dict(heartbeat_timeout=30.0, poll_s=0.02, backoff_s=0.1)


@pytest.fixture(scope="module")
def baselines(tmp_path_factory):
    """Serial CSV bytes + the full per-graph record set, per semantics."""
    out = {}
    root = tmp_path_factory.mktemp("cluster-base")
    for semantics, config in CONFIGS.items():
        rows, _ = run_campaign(AB_PART, config, jobs=1)
        path = root / f"all-{semantics}.jsonl"
        run_shard(AB_PART, config, ShardSpec(0, 1), str(path))
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()[1:]
        ]
        out[semantics] = {
            "csv": AB_PART.to_csv(rows),
            "records": sorted(records, key=lambda r: r["ordinal"]),
        }
    return out


class TestFaultInjection:
    @pytest.mark.parametrize("semantics", ("implicit", "let"))
    def test_sigkill_mid_shard_reissues_to_serial_bytes(
        self, baselines, tmp_path, semantics
    ):
        # The acceptance scenario: a worker is SIGKILLed after its
        # first record and leaves a torn half-record behind; the
        # coordinator re-issues, the replacement resumes past the
        # recorded graph, and the CSV is byte-identical to serial.
        rows, report = run_cluster(
            AB_PART, CONFIGS[semantics], shards=2, workers=2,
            out_dir=str(tmp_path),
            faults={0: ClusterFault(die_after_records=1, tear=True)},
            **FAST,
        )
        assert AB_PART.to_csv(rows) == baselines[semantics]["csv"]
        assert report.complete
        assert report.deaths >= 1 and report.re_issues >= 1
        shard0 = report.shards[0]
        assert shard0.attempts >= 2 and shard0.status == "done"

    def test_resumed_worker_skips_recorded_graphs(self, tmp_path):
        # The re-issued worker must not recompute the graph the dead
        # one already recorded: its shard file keeps exactly one record
        # per owned ordinal (no rewrites, no duplicates).
        rows, report = run_cluster(
            AB_PART, CONFIGS["implicit"], shards=2, workers=2,
            out_dir=str(tmp_path),
            faults={0: ClusterFault(die_after_records=1)},
            **FAST,
        )
        assert report.complete
        lines = (tmp_path / "shard0.jsonl").read_text().splitlines()
        ordinals = [json.loads(line)["ordinal"] for line in lines[1:]]
        assert sorted(ordinals) == [0, 2]
        assert len(ordinals) == len(set(ordinals))

    def test_stalled_worker_declared_dead_by_watchdog(
        self, baselines, tmp_path
    ):
        # A worker that stops appending but never exits is only
        # detectable through file liveness — the watchdog must kill
        # and re-issue it.
        rows, report = run_cluster(
            AB_PART, CONFIGS["implicit"], shards=2, workers=2,
            out_dir=str(tmp_path),
            faults={0: ClusterFault(stall_after_records=1)},
            heartbeat_timeout=2.0, poll_s=0.05, backoff_s=0.1,
        )
        assert AB_PART.to_csv(rows) == baselines["implicit"]["csv"]
        assert report.complete
        assert report.deaths >= 1 and report.shards[0].attempts >= 2

    def test_double_issued_shard_is_harmless(self, baselines, tmp_path):
        # Two workers racing on the same shard file: whatever records
        # survive the race, the shard either completes or is re-issued,
        # and the ordinal-deduplicated merge stays byte-identical.
        rows, report = run_cluster(
            AB_PART, CONFIGS["implicit"], shards=2, workers=2,
            out_dir=str(tmp_path),
            faults={0: ClusterFault(double_issue=True)},
            **FAST,
        )
        assert AB_PART.to_csv(rows) == baselines["implicit"]["csv"]
        assert report.complete

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        # A shard that dies on every attempt must surface as a
        # ClusterError (not hang, not silently drop rows).  With no
        # retries allowed, one death exhausts the budget even though
        # the attempt made progress.
        with pytest.raises(ClusterError, match=r"shard 0/2.*allow-missing"):
            run_cluster(
                AB_PART, CONFIGS["implicit"], shards=2, workers=2,
                out_dir=str(tmp_path),
                faults={
                    0: ClusterFault(die_after_records=1, every_attempt=True)
                },
                max_retries=0,
                **FAST,
            )

    def test_allow_missing_degrades_with_coverage(
        self, baselines, tmp_path
    ):
        # Deterministic gap: shard 0 (owns ordinals 0 and 2) dies after
        # one record with no retries left, so ordinal 2 never arrives.
        # x=5 (ordinals 0, 1) completes exactly; x=8 (ordinals 2, 3) is
        # force-folded over ordinal 3 alone and flagged partial.
        rows, report = run_cluster(
            AB_PART, CONFIGS["implicit"], shards=2, workers=2,
            out_dir=str(tmp_path),
            faults={0: ClusterFault(die_after_records=1, every_attempt=True)},
            max_retries=0, allow_missing=True,
            **FAST,
        )
        assert not report.complete
        assert report.partial_rows == 1
        assert report.coverage["missing_ordinals"] == [2]
        assert report.coverage["points"]["8"] == {
            "merged": 1, "expected": 2,
        }
        assert report.shards[0].status == "failed"
        # The complete point's row is still the exact serial row.
        serial_first = baselines["implicit"]["csv"].splitlines()[1]
        assert AB_PART.to_csv(rows).splitlines()[1] == serial_first
        # The partial row folds the arrived subset with the exact
        # aggregation (here: ordinal 3's result alone).
        base = baselines["implicit"]["records"]
        expected = AB_PART.aggregate(
            8, [AB_PART.decode_result(base[3]["result"])]
        )
        assert rows[1] == expected

    def test_clean_run_has_no_deaths(self, baselines, tmp_path):
        rows, report = run_cluster(
            AB_PART, CONFIGS["implicit"], shards=3, workers=3,
            out_dir=str(tmp_path), **FAST,
        )
        assert AB_PART.to_csv(rows) == baselines["implicit"]["csv"]
        assert report.deaths == 0 and report.re_issues == 0
        assert all(s.attempts == 1 for s in report.shards)


class TestWorkerSpec:
    def test_spec_round_trip(self, tmp_path):
        spec = tmp_path / "w.spec.pkl"
        write_worker_spec(
            str(spec), part="ab", config=TINY, shard=ShardSpec(1, 3),
            out=str(tmp_path / "out.jsonl"), jobs=2,
            fault=ClusterFault(double_issue=True),  # not worker-side
        )
        payload = load_spec(str(spec))
        assert payload["part"] == "ab"
        assert payload["config"] == TINY
        assert payload["shard"] == "1/3"
        assert payload["jobs"] == 2
        # Coordinator-side faults never ship to the worker.
        assert payload["fault"] is None

    def test_run_spec_executes_shard_in_process(self, tmp_path):
        # The worker body is exercised in-process so coverage sees it;
        # the subprocess path is the same two functions.
        out = tmp_path / "s0.jsonl"
        spec = tmp_path / "w.spec.pkl"
        write_worker_spec(
            str(spec), part="ab", config=TINY, shard=ShardSpec(0, 2),
            out=str(out),
        )
        assert run_spec(str(spec)) == 0
        ordinals = [
            json.loads(line)["ordinal"]
            for line in out.read_text().splitlines()[1:]
        ]
        assert sorted(ordinals) == [0, 2]

    def test_main_usage_error(self, capsys):
        assert worker_main([]) == 2
        assert "usage" in capsys.readouterr().err


def _header(config, shard: ShardSpec) -> dict:
    return {
        "format": SHARD_FORMAT,
        "part": AB_PART.name,
        "fingerprint": config_fingerprint(AB_PART.name, config),
        "shard_index": shard.shard_index,
        "shard_count": shard.shard_count,
    }


def _write_lines(path: Path, objects) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for obj in objects:
            handle.write(json.dumps(obj, sort_keys=True) + "\n")


class TestIncrementalMerger:
    def _merger(self, config, tmp_path, shard_count=2):
        paths = {
            index: str(tmp_path / f"s{index}.jsonl")
            for index in range(shard_count)
        }
        return (
            IncrementalMerger(
                AB_PART, config, shard_count=shard_count, paths=paths
            ),
            {index: Path(path) for index, path in paths.items()},
        )

    def test_duplicates_and_foreign_ordinals_counted(
        self, baselines, tmp_path
    ):
        config = CONFIGS["implicit"]
        records = baselines["implicit"]["records"]
        merger, paths = self._merger(config, tmp_path)
        # Shard 0 owns ordinals 0 and 2; write ordinal 0 twice and a
        # foreign ordinal 1 (owned by shard 1).
        _write_lines(
            paths[0],
            [_header(config, ShardSpec(0, 2)),
             records[0], records[0], records[1]],
        )
        new, released = merger.poll_shard(0)
        assert new == 2  # both deliveries of ordinal 0 count as liveness
        assert merger.duplicates == 1
        assert merger.foreign_records == 1
        assert released == []  # x=5 still missing ordinal 1 via shard 1

    def test_missing_file_and_header_mismatch_tolerated(
        self, baselines, tmp_path
    ):
        config = CONFIGS["implicit"]
        merger, paths = self._merger(config, tmp_path)
        assert merger.poll_shard(0) == (0, [])  # no file yet
        # A stale file from a different campaign: no records, no crash.
        other = config.scaled(seed=config.seed + 1)
        _write_lines(paths[0], [_header(other, ShardSpec(0, 2))])
        assert merger.poll_shard(0) == (0, [])
        # The worker then rewrites it with the right header.
        _write_lines(
            paths[0],
            [_header(config, ShardSpec(0, 2))]
            + [baselines["implicit"]["records"][o] for o in (0, 2)],
        )
        new, _ = merger.poll_shard(0)
        assert new == 2
        assert merger.shard_done(0)

    def test_coverage_accounts_every_ordinal(self, baselines, tmp_path):
        config = CONFIGS["implicit"]
        records = baselines["implicit"]["records"]
        merger, paths = self._merger(config, tmp_path)
        _write_lines(
            paths[0], [_header(config, ShardSpec(0, 2)), records[0]]
        )
        merger.poll_shard(0)
        coverage = merger.coverage()
        assert coverage["merged_records"] == 1
        assert coverage["missing_ordinals"] == [1, 2, 3]
        assert coverage["points"]["5"] == {"merged": 1, "expected": 2}
        assert coverage["points"]["8"] == {"merged": 0, "expected": 2}


class TestJsonlTail:
    def test_torn_tail_never_consumed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        header = {"format": "f/1"}
        tail = JsonlTail(str(path), expected_header=header)
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write('{"a": 1}\n')
            handle.write('{"a": 2, "tor')  # no newline: in-flight write
        assert tail.poll() == [{"a": 1}]
        assert tail.poll() == []  # torn tail still pending
        with open(path, "a") as handle:
            handle.write('n": true}\n')  # writer finishes the record
        assert tail.poll() == [{"a": 2, "torn": True}]

    def test_truncation_resets_and_redelivers(self, tmp_path):
        path = tmp_path / "t.jsonl"
        header = {"format": "f/1"}
        tail = JsonlTail(str(path), expected_header=header)
        _write_lines(path, [header, {"a": 1}, {"a": 2}])
        assert len(tail.poll()) == 2
        # A resuming worker truncates the file shorter than consumed.
        _write_lines(path, [header, {"a": 1}])
        assert tail.poll() == [{"a": 1}]  # re-delivered; callers dedupe

    def test_unobserved_truncation_realigns_from_start(self, tmp_path):
        # Regression for the double-issue race: a worker truncates the
        # file and it grows back PAST the consumed offset between two
        # polls, so the shrink check cannot fire and the tail would
        # read from mid-record.  The misaligned garbage line must
        # trigger a realigning re-read, not a permanent record loss.
        path = tmp_path / "t.jsonl"
        header = {"format": "f/1"}
        tail = JsonlTail(str(path), expected_header=header)
        _write_lines(path, [header, {"a": 1}])
        assert tail.poll() == [{"a": 1}]
        # Rewritten larger: the old offset now lands inside record one.
        _write_lines(
            path, [header, {"a": 1, "pad": "x" * 40}, {"b": 2}]
        )
        assert tail.poll() == [{"a": 1, "pad": "x" * 40}, {"b": 2}]
        assert tail.corrupt_lines == 0  # misalignment, not corruption

    def test_corrupt_complete_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        header = {"format": "f/1"}
        tail = JsonlTail(str(path), expected_header=header)
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write("not json at all\n")
            handle.write('{"a": 1}\n')
        assert tail.poll() == [{"a": 1}]
        assert tail.corrupt_lines == 1


def _events_strategy():
    """Shrinkable interleaving of shard-file lifecycle events.

    ``("append", shard, k)`` appends the shard's next ``k`` owned
    records; ``("tear", shard)`` leaves a torn half-record (a SIGKILL
    mid-write); ``("restart", shard)`` is a re-issued worker resuming:
    it truncates the torn tail exactly like ``JsonlLog.load`` does.
    Appends after an un-restarted tear implicitly restart first — a
    writer never appends after a partial line survives.
    """
    event = st.one_of(
        st.tuples(
            st.just("append"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=4),
        ),
        st.tuples(st.just("tear"), st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("restart"), st.integers(min_value=0, max_value=3)),
    )
    return st.lists(event, max_size=12)


class TestIncrementalFoldParity:
    @settings(max_examples=25, deadline=None)
    @given(
        semantics=st.sampled_from(("implicit", "let")),
        shard_count=st.integers(min_value=1, max_value=4),
        events=_events_strategy(),
    )
    def test_incremental_equals_merge_shards_equals_serial(
        self, baselines, tmp_path_factory, semantics, shard_count, events
    ):
        config = CONFIGS[semantics]
        base = baselines[semantics]
        root = tmp_path_factory.mktemp("fold")
        paths = {
            index: str(root / f"s{index}.jsonl")
            for index in range(shard_count)
        }
        owned = {
            index: [
                r for r in base["records"]
                if r["ordinal"] % shard_count == index
            ]
            for index in range(shard_count)
        }
        cursor = {index: 0 for index in range(shard_count)}
        torn = {index: False for index in range(shard_count)}

        def ensure_file(index):
            if not os.path.exists(paths[index]):
                _write_lines(
                    Path(paths[index]),
                    [_header(config, ShardSpec(index, shard_count))],
                )

        def drop_torn_tail(index):
            if torn[index]:
                raw = open(paths[index], "rb").read()
                keep = raw[: raw.rfind(b"\n") + 1]
                open(paths[index], "wb").write(keep)
                torn[index] = False

        merger = IncrementalMerger(
            AB_PART, config, shard_count=shard_count, paths=paths
        )
        for event in events:
            kind, index = event[0], event[1] % shard_count
            ensure_file(index)
            if kind == "append":
                drop_torn_tail(index)
                take = owned[index][cursor[index]:cursor[index] + event[2]]
                cursor[index] += len(take)
                with open(paths[index], "a", encoding="utf-8") as handle:
                    for record in take:
                        handle.write(json.dumps(record, sort_keys=True) + "\n")
            elif kind == "tear":
                drop_torn_tail(index)
                with open(paths[index], "a", encoding="utf-8") as handle:
                    handle.write('{"ordinal": 99, "x": 5, "resu')
                torn[index] = True
            else:  # restart
                drop_torn_tail(index)
            merger.poll_shard(index)
        # Completion: every shard finishes its remaining records.
        for index in range(shard_count):
            ensure_file(index)
            drop_torn_tail(index)
            rest = owned[index][cursor[index]:]
            with open(paths[index], "a", encoding="utf-8") as handle:
                for record in rest:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        merger.poll_all()
        assert merger.done
        incremental = AB_PART.to_csv([p.row for p in merger.rows])
        merged = merge_shards(AB_PART, config, list(paths.values()))
        assert incremental == base["csv"]
        assert AB_PART.to_csv(merged) == base["csv"]


class TestClusterCLI:
    def test_cluster_run_cli_matches_serial(
        self, baselines, tmp_path, capsys
    ):
        from repro.cli import main

        import repro.experiments.runner as runner

        # Pin the smoke preset down to the TINY config so the CLI path
        # (preset resolution included) runs in test time.
        original = runner._PRESETS_AB["smoke"]
        runner._PRESETS_AB["smoke"] = TINY
        try:
            csv_path = tmp_path / "out.csv"
            code = main([
                "cluster", "run", "--part", "ab", "--preset", "smoke",
                "--shards", "2", "--workers", "2",
                "--dir", str(tmp_path / "shards"),
                "--csv", str(csv_path),
                "--chaos-kill", "0:1", "--chaos-tear",
                "--backoff", "0.1",
            ])
        finally:
            runner._PRESETS_AB["smoke"] = original
        assert code == 0
        # Byte comparison: the csv module's \r\n endings must survive
        # (read_text would translate them away).
        assert csv_path.read_bytes() == baselines["implicit"]["csv"].encode()
        report = json.loads(
            (tmp_path / "out.csv.cluster.json").read_text()
        )
        assert report["complete"] and report["deaths"] >= 1
        out = capsys.readouterr().out
        assert "re-issue" in out

    def test_emit_commands_lists_every_shard(self, capsys):
        from repro.cli import main

        code = main([
            "cluster", "run", "--part", "ab", "--preset", "smoke",
            "--shards", "3", "--dir", "out/cluster", "--emit-commands",
        ])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 3
        for index, line in enumerate(lines):
            assert f"--shard {index}/3" in line
            assert f"out/cluster/shard{index}.jsonl" in line

    def test_chaos_kill_spec_validated(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="SHARD:RECORDS"):
            main([
                "cluster", "run", "--part", "ab", "--preset", "smoke",
                "--shards", "2", "--dir", "out", "--chaos-kill", "bogus",
            ])

#!/usr/bin/env python3
"""Quickstart: model, analyze, and simulate a cause-effect graph.

Builds the paper's Fig. 2 topology (two sensors, a fork-join around
the fusion task), computes the backward-time bounds and both disparity
bounds of the sink, and validates them against a randomized
simulation.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AnalysisSession,
    CauseEffectGraph,
    System,
    Task,
    format_time,
    ms,
    source_task,
    us,
)
from repro.units import seconds


def build_fig2_system() -> System:
    """The paper's Fig. 2 graph: t1,t2 sensors; t3 fuses; t4,t5 fork;
    t6 joins (all on one ECU, rate-monotonic-ish priorities)."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("t1", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("t2", ms(20), ecu="ecu0", priority=1))
    graph.add_task(Task("t3", ms(10), us(500), us(100), ecu="ecu0", priority=2))
    graph.add_task(Task("t4", ms(20), us(800), us(200), ecu="ecu0", priority=3))
    graph.add_task(Task("t5", ms(20), us(600), us(150), ecu="ecu0", priority=4))
    graph.add_task(Task("t6", ms(40), us(900), us(300), ecu="ecu0", priority=5))
    graph.add_channel("t1", "t3")
    graph.add_channel("t2", "t3")
    graph.add_channel("t3", "t4")
    graph.add_channel("t3", "t5")
    graph.add_channel("t4", "t6")
    graph.add_channel("t5", "t6")
    return System.build(graph)


def main() -> None:
    # One session owns every shared cache: the response-time table, the
    # backward-bounds cache, chain enumerations, and disparity results.
    session = AnalysisSession(build_fig2_system())
    print("=== system ===")
    print(session.system.describe())

    print("\n=== per-chain backward-time bounds (Lemmas 4 & 5) ===")
    for chain in session.chains("t6"):
        bounds = session.backward(chain)
        print(
            f"  {' -> '.join(chain.tasks):<28} "
            f"WCBT={format_time(bounds.wcbt):>10}  "
            f"BCBT={format_time(bounds.bcbt):>10}"
        )

    print("\n=== worst-case time disparity of t6 ===")
    p_diff = session.disparity("t6", method="p-diff")
    result = session.worst_case("t6", method="s-diff")
    print(f"  P-diff (Theorem 1): {format_time(p_diff)}")
    print(f"  S-diff (Theorem 2): {format_time(result.bound)}")
    assert result.worst_pair is not None
    print(
        f"  worst pair: {' -> '.join(result.worst_pair.lam.tasks)}"
        f"  vs  {' -> '.join(result.worst_pair.nu.tasks)}"
    )

    print("\n=== simulation check (random offsets, 5 runs x 10s) ===")
    worst_observed = session.observed_disparity(
        "t6",
        sims=5,
        duration=seconds(10),
        warmup=seconds(1),
        rng=random.Random(7),
    )
    print(f"  max observed disparity: {format_time(worst_observed)}")
    print(f"  bound honored: {worst_observed <= result.bound}")


if __name__ == "__main__":
    main()

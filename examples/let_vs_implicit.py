#!/usr/bin/env python3
"""LET versus implicit communication: the disparity/latency trade-off.

The Logical Execution Time paradigm (reads at release, publishes at
the deadline) removes all scheduling jitter from the data flow.  For
time disparity this cuts both ways:

* sampling windows become narrow and deterministic — the *disparity*
  bound typically shrinks and no longer depends on priorities or
  execution times;
* every non-source hop delays data by one full period — the *data age*
  grows.

This script quantifies both effects on the same two-sensor pipeline,
analytically and in simulation.

Run:  python examples/let_vs_implicit.py
"""

from repro import (
    CauseEffectGraph,
    System,
    Task,
    format_time,
    ms,
    source_task,
)
from repro.chains.backward import BackwardBoundsCache
from repro.let import let_bounds_cache, semantics_tradeoff
from repro.model.chain import enumerate_source_chains
from repro.units import seconds


def build_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(50), ecu="e", priority=1))
    graph.add_task(Task("img", ms(10), ms(2), ms(1), ecu="e", priority=2))
    graph.add_task(Task("pcl", ms(50), ms(8), ms(3), ecu="e", priority=3))
    graph.add_task(Task("fuse", ms(50), ms(4), ms(2), ecu="e", priority=4))
    graph.add_channel("cam", "img")
    graph.add_channel("lidar", "pcl")
    graph.add_channel("img", "fuse")
    graph.add_channel("pcl", "fuse")
    return System.build(graph)


def main() -> None:
    system = build_system()

    print("=== per-chain backward-time windows ===")
    implicit_cache = BackwardBoundsCache(system)
    let_cache = let_bounds_cache(system)
    for chain in enumerate_source_chains(system.graph, "fuse"):
        imp = implicit_cache.bounds(chain)
        let = let_cache.bounds(chain)
        print(f"  {' -> '.join(chain.tasks)}")
        print(
            f"    implicit: [{format_time(imp.bcbt)}, {format_time(imp.wcbt)}]"
            f"  LET: [{format_time(let.bcbt)}, {format_time(let.wcbt)}]"
        )

    # One paired study: analytical bound + 6 batched random-offset
    # replications per semantics, both semantics on identical seed
    # streams (delta-replayed through one compiled scenario each).
    result = semantics_tradeoff(
        system, "fuse", sims=6, duration=seconds(8), warmup=seconds(1), seed=3
    )

    print("\n=== worst-case time disparity of 'fuse' ===")
    print(f"  implicit (Theorem 2): {format_time(result.implicit.bound)}")
    print(f"  LET:                  {format_time(result.let.bound)}")

    print("\n=== simulated disparity (6 random-offset runs each) ===")
    for point in result.points:
        print(
            f"  {point.semantics:<9} observed {format_time(point.observed):>11} "
            f"<= bound {format_time(point.bound):>11}: {point.sound}"
        )

    print("\nLET makes the sampling windows deterministic (no response-time")
    print("terms, no execution jitter) but shifts every window right by one")
    print("producer period per non-source hop.  Whether the *disparity*")
    print("improves depends on how the extra shifts balance across the two")
    print("chains — here the slow LiDAR chain pays more, so implicit")
    print("communication wins on disparity while LET wins on determinism.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""An autonomous-driving pipeline across two ECUs and a CAN bus.

Recreates the flavour of the paper's Fig. 1 (the PerceptIn /
RTSS 2021 industry challenge application): camera, LiDAR, radar and
GPS feed per-sensor pre-processing, sensor fusion, perception,
planning, and control, deployed on two ECUs connected by a CAN bus.
Cross-ECU edges become periodic message tasks on the bus
automatically.

The script answers the engineering questions the paper poses:

1. What is the worst-case time disparity at the fusion and control
   stages (can the perception algorithm trust its inputs)?
2. Does it meet the synchronization requirement (here: 120 ms)?
3. What are the end-to-end data-age / reaction-time figures?
4. Does a randomized simulation respect all bounds?

Run:  python examples/autonomous_driving.py
"""

import random

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    Platform,
    System,
    Task,
    disparity_bound,
    format_time,
    ms,
    randomize_offsets,
    simulate,
    source_task,
    us,
)
from repro.chains.latency import max_data_age, max_reaction_time_np
from repro.core.disparity import check_disparity_requirement
from repro.model.chain import enumerate_source_chains
from repro.model.platform import insert_message_tasks
from repro.sched.priority import assign_rate_monotonic
from repro.units import seconds


def build_pipeline() -> System:
    graph = CauseEffectGraph()
    # Sensors (sources): camera 33ms-ish -> use 30ms; LiDAR 100ms;
    # radar 50ms; GPS 100ms.  Sources are colocated with their first
    # consumer, so the sensor hop stays ECU-local.
    graph.add_task(source_task("camera", ms(30), ecu="ecu0"))
    graph.add_task(source_task("lidar", ms(100), ecu="ecu0"))
    graph.add_task(source_task("radar", ms(50), ecu="ecu1"))
    graph.add_task(source_task("gps", ms(100), ecu="ecu1"))

    # Per-sensor pre-processing on the sensor's ECU.
    graph.add_task(Task("img_proc", ms(30), ms(8), ms(3), ecu="ecu0"))
    graph.add_task(Task("pcl_proc", ms(100), ms(15), ms(6), ecu="ecu0"))
    graph.add_task(Task("radar_proc", ms(50), ms(4), ms(1), ecu="ecu1"))
    graph.add_task(Task("localize", ms(100), ms(10), ms(4), ecu="ecu1"))

    # Fusion + perception on ECU0; planning + control on ECU1.
    graph.add_task(Task("fusion", ms(50), ms(6), ms(2), ecu="ecu0"))
    graph.add_task(Task("perception", ms(50), ms(12), ms(5), ecu="ecu0"))
    # Control runs at 20 ms: under *non-preemptive* scheduling it must
    # tolerate blocking by one in-flight lower-priority job (up to the
    # 10 ms localize stage), which a 10 ms period could not absorb —
    # exactly the blocking term of the response-time analysis.
    graph.add_task(Task("planning", ms(100), ms(9), ms(4), ecu="ecu1"))
    graph.add_task(Task("control", ms(20), ms(1), us(300), ecu="ecu1"))

    for src, dst in [
        ("camera", "img_proc"),
        ("lidar", "pcl_proc"),
        ("radar", "radar_proc"),
        ("gps", "localize"),
        ("img_proc", "fusion"),
        ("pcl_proc", "fusion"),
        ("radar_proc", "fusion"),
        ("fusion", "perception"),
        ("perception", "planning"),
        ("localize", "planning"),
        ("planning", "control"),
    ]:
        graph.add_channel(src, dst)

    platform = Platform.symmetric(2)  # ecu0, ecu1 + can0
    deployed = insert_message_tasks(graph, platform)
    deployed = assign_rate_monotonic(deployed)
    return System.build(deployed)


def main() -> None:
    system = build_pipeline()
    print("=== deployed pipeline (message tasks inserted on can0) ===")
    print(system.describe())

    requirement = ms(120)
    print("\n=== time disparity (Theorem 2) ===")
    for stage in ("fusion", "perception", "control"):
        bound = disparity_bound(system, stage, method="forkjoin")
        verdict = (
            "OK"
            if check_disparity_requirement(system, stage, requirement)
            else "VIOLATED"
        )
        print(
            f"  {stage:<11} worst-case disparity {format_time(bound):>11} "
            f"(requirement {format_time(requirement)}: {verdict})"
        )

    print("\n=== buffer design to rein in the fusion disparity ===")
    from repro import design_buffers_multi

    design = design_buffers_multi(system, "fusion")
    if design.plan:
        plan_text = ", ".join(
            f"{src}->{dst}: cap {capacity}"
            for (src, dst), capacity in design.plan.items()
        )
        print(f"  plan: {plan_text}")
        print(
            f"  fusion disparity bound: {format_time(design.bound_before)} -> "
            f"{format_time(design.bound_after)}"
        )
    else:
        print(
            "  no buffer plan improves the bound here: the binding pair's"
            " windows are already within one source period of alignment"
        )

    print("\n=== end-to-end latency of the camera -> control chains ===")
    for chain in enumerate_source_chains(system.graph, "control"):
        if chain.head != "camera":
            continue
        age = max_data_age(chain, system)
        reaction = max_reaction_time_np(chain, system)
        print(f"  {' -> '.join(chain.tasks)}")
        print(
            f"    max data age {format_time(age)}, "
            f"max reaction time {format_time(reaction)}"
        )

    print("\n=== simulation check (random offsets, 5 runs x 10s) ===")
    rng = random.Random(2023)
    bounds = {
        stage: disparity_bound(system, stage, method="forkjoin")
        for stage in ("fusion", "control")
    }
    worst = {stage: 0 for stage in bounds}
    for run in range(5):
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor(list(bounds), warmup=seconds(2))
        simulate(variant, seconds(10), seed=run, observers=[monitor])
        for stage in bounds:
            worst[stage] = max(worst[stage], monitor.disparity(stage))
    for stage, bound in bounds.items():
        print(
            f"  {stage:<11} observed {format_time(worst[stage]):>11} "
            f"<= bound {format_time(bound):>11}: {worst[stage] <= bound}"
        )


if __name__ == "__main__":
    main()

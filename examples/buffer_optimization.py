#!/usr/bin/env python3
"""Buffer sizing (Section IV): cut the worst-case time disparity.

Two sensor chains with very different rates merge at one fusion sink —
the camera path samples at 10 ms while the LiDAR path crawls at 100 ms,
so the sink fuses a fresh image with a stale point cloud.  Algorithm 1
enlarges the FIFO on the *fast* chain's head channel so the fusion task
deliberately reads an older image, aligning the two sampling windows;
Theorem 3 certifies the improved bound, and the simulation confirms
the *actual* disparity drops too.

Run:  python examples/buffer_optimization.py
"""

import random

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    System,
    Task,
    design_buffer_pair,
    disparity_bound_buffered,
    format_time,
    ms,
    randomize_offsets,
    simulate,
    source_task,
)
from repro.chains.backward import BackwardBoundsCache
from repro.core.pairwise import disparity_bound_forkjoin
from repro.model.chain import enumerate_source_chains
from repro.units import seconds


def build_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("camera", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("lidar", ms(100), ecu="ecu0", priority=1))
    graph.add_task(Task("img", ms(10), ms(1), ms(1), ecu="ecu0", priority=2))
    graph.add_task(Task("pcl", ms(100), ms(5), ms(2), ecu="ecu0", priority=3))
    graph.add_task(Task("fusion", ms(50), ms(2), ms(1), ecu="ecu0", priority=4))
    graph.add_channel("camera", "img")
    graph.add_channel("lidar", "pcl")
    graph.add_channel("img", "fusion")
    graph.add_channel("pcl", "fusion")
    return System.build(graph)


def observed_disparity(system: System, rng: random.Random, warmup) -> int:
    worst = 0
    for run in range(6):
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor(["fusion"], warmup=warmup)
        simulate(variant, warmup + seconds(6), seed=run, observers=[monitor])
        worst = max(worst, monitor.disparity("fusion"))
    return worst


def main() -> None:
    system = build_system()
    cache = BackwardBoundsCache(system)
    lam, nu = enumerate_source_chains(system.graph, "fusion")

    base = disparity_bound_forkjoin(lam, nu, cache)
    print("=== before optimization ===")
    print(f"  chains: {' -> '.join(lam.tasks)}  |  {' -> '.join(nu.tasks)}")
    print(f"  S-diff bound: {format_time(base.bound)}")
    assert base.window_lam is not None and base.window_nu is not None
    print(
        f"  sampling windows: lam [{format_time(base.window_lam.lo)}, "
        f"{format_time(base.window_lam.hi)}], nu [{format_time(base.window_nu.lo)}, "
        f"{format_time(base.window_nu.hi)}]"
    )

    result, design = disparity_bound_buffered(lam, nu, cache)
    print("\n=== Algorithm 1 design ===")
    if design.channel is None:
        print("  windows already aligned; no buffer needed")
        return
    print(
        f"  enlarge channel {design.channel[0]} -> {design.channel[1]} "
        f"to capacity {design.capacity} (shift L = {format_time(design.shift)})"
    )
    print(f"  S-diff-B bound (Theorem 3): {format_time(result.bound)}")

    print("\n=== simulated actual disparity (6 runs each) ===")
    rng = random.Random(99)
    warmup = seconds(2) + 2 * design.capacity * system.T(design.channel[0])
    sim_before = observed_disparity(system, rng, warmup)
    buffered = system.with_buffer_plan(design.plan)
    sim_after = observed_disparity(buffered, rng, warmup)
    print(f"  Sim   (register):  {format_time(sim_before)}")
    print(f"  Sim-B (buffered):  {format_time(sim_after)}")
    print(
        f"  bound honored: before {sim_before <= base.bound}, "
        f"after {sim_after <= result.bound}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Fig. 4 counter-example: raising a task's frequency doesn't help.

Section IV opens with a design puzzle taken from the RTSS 2021
industry challenge: the camera path's middle task t3 can run at 30 ms
or at 10 ms.  Intuitively, sampling the camera faster should reduce
the time disparity at the fusion task t5 — but the worst-case time
disparity is decided by the WCBT of one chain against the BCBT of the
*other*, and neither term depends on T(t3).  This script shows the
bound (and the simulated disparity) staying put while the frequency
triples, and then shows the buffer design achieving what the frequency
raise could not.

Run:  python examples/frequency_design.py
"""

import random

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    System,
    Task,
    design_buffers_multi,
    disparity_bound,
    format_time,
    ms,
    randomize_offsets,
    simulate,
    source_task,
    us,
)
from repro.units import seconds


def build_system(t3_period_ms: int) -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("t1", ms(10), ecu="ecu0", priority=0))
    graph.add_task(source_task("t2", ms(30), ecu="ecu0", priority=1))
    graph.add_task(
        Task("t3", ms(t3_period_ms), us(500), us(100), ecu="ecu0", priority=2)
    )
    graph.add_task(Task("t4", ms(30), us(500), us(100), ecu="ecu0", priority=3))
    graph.add_task(Task("t5", ms(30), us(500), us(100), ecu="ecu0", priority=4))
    graph.add_channel("t1", "t3")
    graph.add_channel("t2", "t4")
    graph.add_channel("t3", "t5")
    graph.add_channel("t4", "t5")
    return System.build(graph)


def simulated_disparity(system: System, seed: int) -> int:
    rng = random.Random(seed)
    worst = 0
    for run in range(8):
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor(["t5"], warmup=seconds(1))
        simulate(variant, seconds(6), seed=run, observers=[monitor])
        worst = max(worst, monitor.disparity("t5"))
    return worst


def main() -> None:
    print("=== raising t3's frequency: 30ms -> 10ms ===")
    for period in (30, 10):
        system = build_system(period)
        bound = disparity_bound(system, "t5", method="forkjoin")
        sim = simulated_disparity(system, seed=5)
        print(
            f"  T(t3) = {period:>3}ms: S-diff = {format_time(bound):>11}, "
            f"simulated = {format_time(sim):>11}"
        )
    print("  -> the worst-case time disparity did not improve.")

    print("\n=== buffer design instead (Section IV) ===")
    system = build_system(10)
    design = design_buffers_multi(system, "t5")
    if design.plan:
        plan_text = ", ".join(
            f"{src}->{dst}: capacity {capacity}"
            for (src, dst), capacity in design.plan.items()
        )
        print(f"  plan: {plan_text}")
        print(
            f"  bound: {format_time(design.bound_before)} -> "
            f"{format_time(design.bound_after)}"
        )
        buffered = system.with_buffer_plan(design.plan)
        sim = simulated_disparity(buffered, seed=5)
        print(f"  simulated (buffered): {format_time(sim)}")
    else:
        print("  no improving plan found")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault injection: how fast does sensor loss break synchronization?

The disparity bounds of the paper hold for a *healthy* system.  When a
sensor goes dark (glare, connector fault, network burst loss), the
downstream fusion keeps reading the last sample it got, and the time
disparity grows by one period of wall clock per period — until the
requirement is violated.  This script measures the violation latency:
how long a camera dropout the system can tolerate before the fusion
stage's inputs drift beyond the synchronization threshold.

Run:  python examples/fault_injection.py

A second mode runs a small Fig. 6-style campaign over random graphs —
one *jittered* point, one *sporadic* point, one *faulted* periodic
point — through the batched replay tiers, optionally fanned across
worker processes.  Per-graph seeds are derived upfront in a fixed
order, so the CSV is byte-identical for any ``--jobs`` value (CI runs
it at ``--jobs 1`` and ``--jobs 2`` and compares):

      python examples/fault_injection.py --campaign --jobs 2 --csv out.csv
"""

import argparse
import random
import sys
from concurrent.futures import ProcessPoolExecutor

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    System,
    Task,
    disparity_bound,
    format_time,
    ms,
    simulate,
    source_task,
)
from repro.gen import ReleaseModelSampler, generate_random_scenario
from repro.gen.scenario import ScenarioConfig, derive_seed
from repro.sim.batch import run_batch
from repro.sim.exec_time import wcet_policy
from repro.sim.faults import FaultPlan, StalenessMonitor
from repro.units import seconds, to_ms


def build_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("camera", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(50), ecu="e", priority=1, offset=ms(3)))
    graph.add_task(Task("fusion", ms(50), ms(4), ms(2), ecu="e", priority=2))
    graph.add_channel("camera", "fusion")
    graph.add_channel("lidar", "fusion")
    return System.build(graph)


def max_disparity_with_dropout(system: System, dropout: int) -> int:
    """Max observed fusion disparity with a camera dropout of `dropout` ns."""
    faults = FaultPlan()
    if dropout > 0:
        faults.drop("camera", seconds(2), seconds(2) + dropout)
    monitor = DisparityMonitor(["fusion"], warmup=seconds(1))
    simulate(
        system,
        seconds(4),
        policy=wcet_policy,
        observers=[monitor],
        faults=faults if dropout > 0 else None,
    )
    return monitor.disparity("fusion")


# --------------------------------------------------------------------------
# Fig. 6-style campaign: jittered / sporadic / faulted points

#: (point name, scenario config) — the faulted point stays periodic and
#: gets a per-graph dropout plan instead.
CAMPAIGN_POINTS = (
    (
        "jitter",
        ScenarioConfig(
            release_models=ReleaseModelSampler(jitter_fraction=0.5)
        ),
    ),
    (
        "sporadic",
        ScenarioConfig(
            release_models=ReleaseModelSampler(sporadic_fraction=0.4)
        ),
    ),
    ("faulted", ScenarioConfig()),
)
N_TASKS = 10
GRAPHS_PER_POINT = 2
SIMS_PER_GRAPH = 4
DURATION = seconds(2)
WARMUP = seconds(1)


def run_campaign_graph(task) -> tuple:
    """One graph of one point — pure in its argument, any process/order."""
    point, graph_index, seed = task
    config = dict(CAMPAIGN_POINTS)[point]
    rng = random.Random(seed)
    scenario = generate_random_scenario(N_TASKS, rng, config)
    faults = None
    if point == "faulted":
        # Drop the alphabetically first source for the middle fifth of
        # the horizon — deterministic per graph, independent of order.
        victim = sorted(scenario.system.graph.sources())[0]
        faults = FaultPlan().drop(
            victim, 2 * DURATION // 5, 3 * DURATION // 5
        )
    result = run_batch(
        scenario.system,
        scenario.sink,
        sims=SIMS_PER_GRAPH,
        duration=DURATION,
        warmup=WARMUP,
        rng=rng,
        faults=faults,
    )
    return point, graph_index, to_ms(result.max_disparity), result.engine


def run_campaign(jobs: int) -> str:
    """The campaign CSV — byte-identical for every ``jobs`` value."""
    root = random.Random(2023)
    tasks = [
        (point, graph_index, derive_seed(root))
        for point, _config in CAMPAIGN_POINTS
        for graph_index in range(GRAPHS_PER_POINT)
    ]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(run_campaign_graph, tasks))
    else:
        results = [run_campaign_graph(task) for task in tasks]
    by_point = {}
    for point, graph_index, sim_ms, engine in sorted(
        results, key=lambda r: (r[0], r[1])
    ):
        by_point.setdefault(point, []).append((sim_ms, engine))
    lines = ["point,graphs,sims_per_graph,mean_sim_ms,max_sim_ms,engines"]
    for point, _config in CAMPAIGN_POINTS:
        rows = by_point[point]
        sims = [sim_ms for sim_ms, _engine in rows]
        engines = "+".join(sorted({engine for _sim, engine in rows}))
        lines.append(
            f"{point},{len(rows)},{SIMS_PER_GRAPH},"
            f"{sum(sims) / len(sims):.6f},{max(sims):.6f},{engines}"
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--campaign", action="store_true",
        help="run the jittered/sporadic/faulted campaign instead",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--csv", default=None,
                        help="write the campaign CSV here (default stdout)")
    args = parser.parse_args()
    if args.campaign:
        csv = run_campaign(args.jobs)
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(csv)
        else:
            sys.stdout.write(csv)
        return

    system = build_system()
    requirement = ms(120)
    healthy_bound = disparity_bound(system, "fusion")
    print(f"healthy worst-case disparity bound: {format_time(healthy_bound)}")
    print(f"synchronization requirement:        {format_time(requirement)}")
    print()

    print(f"{'camera dropout':>15} {'observed disparity':>19} {'requirement':>12}")
    for dropout_ms in (0, 20, 50, 100, 200, 500):
        observed = max_disparity_with_dropout(system, ms(dropout_ms))
        verdict = "OK" if observed <= requirement else "VIOLATED"
        print(
            f"{format_time(ms(dropout_ms)):>15} "
            f"{format_time(observed):>19} {verdict:>12}"
        )

    print()
    print("staleness detail for a 200ms dropout:")
    faults = FaultPlan().drop("camera", seconds(2), seconds(2) + ms(200))
    staleness = StalenessMonitor(["fusion"], warmup=seconds(1))
    simulate(system, seconds(4), policy=wcet_policy, observers=[staleness],
             faults=faults)
    for source in ("camera", "lidar"):
        age = staleness.age_for("fusion", source)
        print(f"  max age of {source:<7} data read by fusion: {format_time(age)}")


if __name__ == "__main__":
    main()

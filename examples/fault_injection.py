#!/usr/bin/env python3
"""Fault injection: how fast does sensor loss break synchronization?

The disparity bounds of the paper hold for a *healthy* system.  When a
sensor goes dark (glare, connector fault, network burst loss), the
downstream fusion keeps reading the last sample it got, and the time
disparity grows by one period of wall clock per period — until the
requirement is violated.  This script measures the violation latency:
how long a camera dropout the system can tolerate before the fusion
stage's inputs drift beyond the synchronization threshold.

Run:  python examples/fault_injection.py
"""

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    System,
    Task,
    disparity_bound,
    format_time,
    ms,
    simulate,
    source_task,
)
from repro.sim.exec_time import wcet_policy
from repro.sim.faults import FaultPlan, StalenessMonitor
from repro.units import seconds


def build_system() -> System:
    graph = CauseEffectGraph()
    graph.add_task(source_task("camera", ms(10), ecu="e", priority=0))
    graph.add_task(source_task("lidar", ms(50), ecu="e", priority=1, offset=ms(3)))
    graph.add_task(Task("fusion", ms(50), ms(4), ms(2), ecu="e", priority=2))
    graph.add_channel("camera", "fusion")
    graph.add_channel("lidar", "fusion")
    return System.build(graph)


def max_disparity_with_dropout(system: System, dropout: int) -> int:
    """Max observed fusion disparity with a camera dropout of `dropout` ns."""
    faults = FaultPlan()
    if dropout > 0:
        faults.drop("camera", seconds(2), seconds(2) + dropout)
    monitor = DisparityMonitor(["fusion"], warmup=seconds(1))
    simulate(
        system,
        seconds(4),
        policy=wcet_policy,
        observers=[monitor],
        faults=faults if dropout > 0 else None,
    )
    return monitor.disparity("fusion")


def main() -> None:
    system = build_system()
    requirement = ms(120)
    healthy_bound = disparity_bound(system, "fusion")
    print(f"healthy worst-case disparity bound: {format_time(healthy_bound)}")
    print(f"synchronization requirement:        {format_time(requirement)}")
    print()

    print(f"{'camera dropout':>15} {'observed disparity':>19} {'requirement':>12}")
    for dropout_ms in (0, 20, 50, 100, 200, 500):
        observed = max_disparity_with_dropout(system, ms(dropout_ms))
        verdict = "OK" if observed <= requirement else "VIOLATED"
        print(
            f"{format_time(ms(dropout_ms)):>15} "
            f"{format_time(observed):>19} {verdict:>12}"
        )

    print()
    print("staleness detail for a 200ms dropout:")
    faults = FaultPlan().drop("camera", seconds(2), seconds(2) + ms(200))
    staleness = StalenessMonitor(["fusion"], warmup=seconds(1))
    simulate(system, seconds(4), policy=wcet_policy, observers=[staleness],
             faults=faults)
    for source in ("camera", "lidar"):
        age = staleness.age_for("fusion", source)
        print(f"  max age of {source:<7} data read by fusion: {format_time(age)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space walk: diagnose, then pull every lever.

Starting from a deliberately badly designed two-chain system (inverted
priorities, misaligned sampling windows), this script:

1. diagnoses the disparity bound (which pair binds, which hops cost),
2. fixes the priorities with the local search,
3. sweeps the head-channel buffer capacity and applies the best one,
4. verifies the final design by simulation.

Run:  python examples/design_space.py
"""

import random

from repro import (
    CauseEffectGraph,
    DisparityMonitor,
    System,
    Task,
    disparity_bound,
    format_time,
    ms,
    randomize_offsets,
    simulate,
    source_task,
)
from repro.explore import (
    best_capacity,
    buffer_capacity_sweep,
    explain_disparity,
    optimize_priorities,
    render_explanation,
)
from repro.units import seconds


def build_bad_design() -> System:
    """Two sensor chains into a fusion sink, priorities against flow."""
    graph = CauseEffectGraph()
    graph.add_task(source_task("cam", ms(10), ecu="e", priority=8))
    graph.add_task(source_task("lidar", ms(100), ecu="e", priority=9))
    # Consumers deliberately outrank their producers.
    graph.add_task(Task("img", ms(10), ms(1), ms(1), ecu="e", priority=3))
    graph.add_task(Task("pcl", ms(100), ms(6), ms(2), ecu="e", priority=2))
    graph.add_task(Task("fuse", ms(100), ms(3), ms(1), ecu="e", priority=0))
    graph.add_channel("cam", "img")
    graph.add_channel("lidar", "pcl")
    graph.add_channel("img", "fuse")
    graph.add_channel("pcl", "fuse")
    return System.build(graph)


def simulated(system: System, seed: int, warmup_extra=0) -> int:
    rng = random.Random(seed)
    worst = 0
    for run in range(5):
        graph = randomize_offsets(system.graph, rng)
        variant = System(graph=graph, response_times=system.response_times)
        monitor = DisparityMonitor(["fuse"], warmup=seconds(1) + warmup_extra)
        simulate(variant, seconds(6) + warmup_extra, seed=run, observers=[monitor])
        worst = max(worst, monitor.disparity("fuse"))
    return worst


def main() -> None:
    system = build_bad_design()

    print("=== step 1: diagnose ===")
    print(render_explanation(explain_disparity(system, "fuse")))

    print("\n=== step 2: fix priorities ===")
    priority_result = optimize_priorities(system, "fuse")
    print(
        f"  bound {format_time(priority_result.bound_before)} -> "
        f"{format_time(priority_result.bound_after)} "
        f"({len(priority_result.swaps_applied)} swaps, "
        f"{priority_result.evaluations} evaluations)"
    )
    system = priority_result.system

    print("\n=== step 3: buffer sweep on the camera head channel ===")
    points = buffer_capacity_sweep(system, ("cam", "img"), "fuse", max_capacity=12)
    for point in points:
        marker = ""
        if point is best_capacity(points):
            marker = "   <-- best"
        print(f"  capacity {point.value:>2}: {format_time(point.bound)}{marker}")
    best = best_capacity(points)
    system = system.with_channel_capacity("cam", "img", best.value)
    final_bound = disparity_bound(system, "fuse")
    print(f"  applied capacity {best.value}: bound {format_time(final_bound)}")

    print("\n=== step 4: verify by simulation ===")
    fill = 2 * best.value * ms(10)
    observed = simulated(system, seed=11, warmup_extra=fill)
    print(
        f"  observed {format_time(observed)} <= bound {format_time(final_bound)}: "
        f"{observed <= final_bound}"
    )


if __name__ == "__main__":
    main()

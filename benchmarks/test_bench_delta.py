"""Delta-compilation benchmarks: replayed views vs per-candidate compiles.

The delta-compilation work splits :class:`repro.sim.batch.CompiledScenario`
into offset-independent tables compiled once plus cheap per-candidate
:meth:`~repro.sim.batch.CompiledScenario.with_offsets` views.  Two
structural assertions guard it (machine independent, current run only):

* evaluating many offset candidates through delta-replayed views must
  beat compiling a fresh scenario per candidate — with byte-identical
  per-candidate disparities (asserted inside the paired bench);
* constructing a view must be orders of magnitude cheaper than a
  compile, so sweeps can create one view per candidate without budget.

The committed-baseline regression gate for the ``delta`` section lives
with the other sections in ``test_bench_kernel.py``
(``BENCH_kernel.json`` / ``repro bench --check``).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.gen import generate_random_scenario
from repro.profile import bench_delta_kernel
from repro.sim.batch import CompiledScenario


@pytest.mark.benchmark(group="delta")
def test_delta_replay_beats_fresh_compile(benchmark):
    """Paired sweep: delta-replayed views outrun per-candidate compiles."""
    result = benchmark.pedantic(bench_delta_kernel, rounds=1, iterations=1)
    print()
    print(
        f"delta: {result['candidates']} candidates, "
        f"{result['fresh_s']:.3f}s recompiled -> "
        f"{result['delta_s']:.3f}s delta-replayed "
        f"({result['speedup']:.2f}x)"
    )
    assert result["delta_replay"], "candidates fell off the delta path"
    assert result["delta_s"] < result["fresh_s"]


@pytest.mark.benchmark(group="delta")
def test_offset_view_is_cheap(benchmark):
    """One view per candidate costs a fraction of one compile."""
    rng = random.Random(2023)
    scenario = generate_random_scenario(20, rng)
    system, sink = scenario.system, scenario.sink
    periods = [task.period for task in system.graph.tasks]
    vectors = [
        tuple(rng.randint(1, period) for period in periods)
        for _ in range(500)
    ]

    def measure():
        started = time.perf_counter()
        compiled = CompiledScenario(system, sink)
        compile_s = time.perf_counter() - started
        started = time.perf_counter()
        views = [compiled.with_offsets(vector) for vector in vectors]
        views_s = time.perf_counter() - started
        return compile_s, views_s / len(views), views

    compile_s, per_view_s, views = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print(
        f"compile {compile_s*1e3:.2f} ms, view {per_view_s*1e6:.2f} us "
        f"({compile_s/per_view_s:.0f}x cheaper per candidate)"
    )
    assert all(view.delta_replay for view in views)
    assert per_view_s * 20 < compile_s

"""Shared sweep configurations and cached results for the benchmarks.

Panels (a)/(b) of Fig. 6 plot two views of one sweep, as do (c)/(d);
the sweeps are cached at process scope so each pair of benchmarks costs
one run.  Benchmarks use ``benchmark.pedantic(rounds=1)`` — the
quantity of interest is the regenerated series (printed below each
bench and asserted against the paper's qualitative shapes), not
micro-timing stability.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.config import Fig6ABConfig, Fig6CDConfig
from repro.experiments.fig6 import PointAB, PointCD, run_fig6_ab, run_fig6_cd
from repro.units import seconds

#: Bench-scale configuration: the paper's full X sweep at reduced
#: replication so the suite completes in minutes.  EXPERIMENTS.md
#: documents the default- and paper-scale commands.
BENCH_AB = Fig6ABConfig(
    x_values=(5, 10, 15, 20, 25, 30, 35),
    graphs_per_point=3,
    sims_per_graph=6,
    sim_duration=seconds(5),
    warmup=seconds(2),
    seed=2023,
)
BENCH_CD = Fig6CDConfig(
    x_values=(5, 10, 15, 20, 25, 30),
    graphs_per_point=3,
    sims_per_graph=6,
    sim_duration=seconds(6),
    warmup=seconds(2),
    seed=2023,
)

_CACHE: Dict[str, object] = {}


def ab_rows_cached() -> List[PointAB]:
    """The Fig. 6 (a)/(b) sweep, computed once per process."""
    if "ab" not in _CACHE:
        _CACHE["ab"] = run_fig6_ab(BENCH_AB)
    return _CACHE["ab"]  # type: ignore[return-value]


def cd_rows_cached() -> List[PointCD]:
    """The Fig. 6 (c)/(d) sweep, computed once per process."""
    if "cd" not in _CACHE:
        _CACHE["cd"] = run_fig6_cd(BENCH_CD)
    return _CACHE["cd"]  # type: ignore[return-value]

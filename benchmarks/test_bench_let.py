"""Ablation (extension): LET vs implicit communication semantics.

Not a paper artifact — the paper's related work ([4]/[15]) analyzes age
latency under the LET paradigm, and this bench quantifies how the two
communication semantics compare on the *disparity* metric over the same
random workloads: bound and simulated disparity under each semantics.

Expected shape: both semantics' simulated disparities respect their
own bounds; neither semantics dominates the other's bound universally
(LET trades response-time jitter for a full period of delay per hop).
"""

import random

import pytest

from repro.core.disparity import disparity_bound
from repro.gen.scenario import ScenarioConfig, generate_random_scenario
from repro.let import disparity_bound_let
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.metrics import DisparityMonitor
from repro.units import seconds, to_ms


def run_comparison(n_graphs: int = 5, n_tasks: int = 12, seed: int = 41):
    rng = random.Random(seed)
    config = ScenarioConfig(n_ecus=1, use_bus=False)
    rows = []
    for index in range(n_graphs):
        scenario = generate_random_scenario(n_tasks, rng, config)
        system = scenario.system
        bound_implicit = disparity_bound(system, scenario.sink, method="forkjoin")
        bound_let = disparity_bound_let(system, scenario.sink)

        sims = {"implicit": 0, "let": 0}
        for semantics in sims:
            worst = 0
            for _ in range(4):
                graph = randomize_offsets(system.graph, rng)
                variant = System(
                    graph=graph, response_times=system.response_times
                )
                monitor = DisparityMonitor([scenario.sink], warmup=seconds(2))
                simulate(
                    variant,
                    seconds(5),
                    seed=rng.randrange(2**31),
                    observers=[monitor],
                    semantics=semantics,
                )
                worst = max(worst, monitor.disparity(scenario.sink))
            sims[semantics] = worst
        rows.append(
            {
                "graph": index,
                "bound_implicit_ms": to_ms(bound_implicit),
                "bound_let_ms": to_ms(bound_let),
                "sim_implicit_ms": to_ms(sims["implicit"]),
                "sim_let_ms": to_ms(sims["let"]),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_let_vs_implicit(benchmark, out_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print()
    print("Ablation: disparity under implicit vs LET communication")
    header = (
        f"{'graph':>6} {'bound-imp':>10} {'bound-LET':>10} "
        f"{'sim-imp':>9} {'sim-LET':>9}   (ms)"
    )
    print(header)
    for row in rows:
        print(
            f"{row['graph']:>6} {row['bound_implicit_ms']:>10.1f} "
            f"{row['bound_let_ms']:>10.1f} {row['sim_implicit_ms']:>9.1f} "
            f"{row['sim_let_ms']:>9.1f}"
        )
    lines = ["graph,bound_implicit_ms,bound_let_ms,sim_implicit_ms,sim_let_ms"]
    lines += [
        f"{r['graph']},{r['bound_implicit_ms']:.3f},{r['bound_let_ms']:.3f},"
        f"{r['sim_implicit_ms']:.3f},{r['sim_let_ms']:.3f}"
        for r in rows
    ]
    (out_dir / "ablation_let.csv").write_text("\n".join(lines) + "\n")

    # Soundness under each semantics.
    for row in rows:
        assert row["sim_implicit_ms"] <= row["bound_implicit_ms"] + 1e-9
        assert row["sim_let_ms"] <= row["bound_let_ms"] + 1e-9

"""Batched-replication benchmarks and their committed-baseline gate.

The batched replication engine (:mod:`repro.sim.batch`) compiles a
scenario once and replays it per replication, where the pre-batch path
re-did the setup inside every ``simulate()`` call.  The same pairing
is measured twice — under implicit semantics (vs the per-sim
``simulate()`` path) and under LET (vs the general event loop, the
pre-fast-path LET baseline).  Two guards each:

* **Structural** — machine independent, properties of one run: the
  batched arm of the paired measurement must beat the sequential arm
  (``bench_batch_kernel`` itself asserts the two arms produce identical
  per-replication disparities, so the win cannot come from doing less
  work).
* **Regression gate** — the quick batch measurement compared against
  the ``batch`` entry of the committed ``BENCH_kernel.json``.  The
  gated metric is the sequential/batched *ratio*, which survives
  machine changes; timing on shared CI runners is still noisy, so a
  regression only *warns* by default (``::warning::`` annotation); set
  ``BENCH_STRICT=1`` to turn it into a failure.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.profile import (
    SCHEMA_VERSION,
    bench_batch_kernel,
    bench_let_kernel,
    compare_to_baseline,
    load_baseline,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@pytest.mark.benchmark(group="batch")
def test_batched_beats_sequential(benchmark):
    """Compiled-scenario reuse must outrun per-sim setup (same run)."""
    result = benchmark.pedantic(
        bench_batch_kernel,
        kwargs={"sims": 12, "duration_s": 2.0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"batch: {result['sims']} sims "
        f"{result['sequential_s']:.3f}s sequential -> "
        f"{result['batched_s']:.3f}s batched ({result['speedup']:.2f}x)"
    )
    assert result["engine"] in ("columnar", "compiled")
    assert result["batched_s"] < result["sequential_s"]


@pytest.mark.benchmark(group="batch")
def test_committed_batch_gate(benchmark):
    """Quick batch run vs BENCH_kernel.json; warning unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "batch" in baseline, f"no batch entry in {BASELINE_PATH}"
    batch = benchmark.pedantic(
        bench_batch_kernel,
        kwargs={"sims": 8, "duration_s": 2.0, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "batch": batch}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)


@pytest.mark.benchmark(group="let")
def test_let_batched_beats_general_loop(benchmark):
    """LET compiled replay must outrun sequential general-loop runs.

    The sequential arm is the only LET path that existed before the
    fast-path/batch work reached LET; ``bench_let_kernel`` asserts both
    arms produce identical per-replication disparities.
    """
    result = benchmark.pedantic(
        bench_let_kernel,
        kwargs={"sims": 12, "duration_s": 2.0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"let:   {result['sims']} sims "
        f"{result['sequential_s']:.3f}s general loop -> "
        f"{result['batched_s']:.3f}s batched ({result['speedup']:.2f}x)"
    )
    assert result["engine"] in ("columnar", "compiled")
    assert result["batched_s"] < result["sequential_s"]


@pytest.mark.benchmark(group="let")
def test_committed_let_gate(benchmark):
    """Quick LET run vs BENCH_kernel.json; warning unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "let" in baseline, f"no let entry in {BASELINE_PATH}"
    let = benchmark.pedantic(
        bench_let_kernel,
        kwargs={"sims": 8, "duration_s": 2.0, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "let": let}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

"""Micro-benchmarks: analysis cost scaling with system size.

Times the individual analysis stages (response-time table, backward
bounds, Theorem 1 sweep, Theorem 2 sweep) on a fixed 25-task workload
with pytest-benchmark's regular statistics — these are the pieces a
downstream user pays per design-space-exploration step, so their cost
matters independently of the Fig. 6 harness.
"""

import random

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound
from repro.gen.scenario import generate_random_scenario
from repro.sched.response_time import analyze_all


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(31)
    return generate_random_scenario(25, rng)


@pytest.mark.benchmark(group="scaling")
def test_response_time_table(benchmark, workload):
    tasks = workload.system.graph.tasks
    table = benchmark(analyze_all, tasks)
    assert all(name in table for name in workload.system.graph.task_names)


@pytest.mark.benchmark(group="scaling")
def test_backward_bounds_all_chains(benchmark, workload):
    from repro.model.chain import enumerate_source_chains

    system = workload.system
    chains = enumerate_source_chains(system.graph, workload.sink)

    def compute():
        cache = BackwardBoundsCache(system)
        return [cache.bounds(chain) for chain in chains]

    bounds = benchmark(compute)
    assert len(bounds) == len(chains)


@pytest.mark.benchmark(group="scaling")
def test_theorem1_task_bound(benchmark, workload):
    value = benchmark(
        disparity_bound, workload.system, workload.sink, method="independent"
    )
    assert value >= 0


@pytest.mark.benchmark(group="scaling")
def test_theorem2_task_bound(benchmark, workload):
    value = benchmark(
        disparity_bound, workload.system, workload.sink, method="forkjoin"
    )
    assert value >= 0

"""Runtime claim of Section V: analysis is cheap, simulation is not.

The paper motivates the analytical bounds by noting the simulation
baseline "is not only unsafe but also time consuming".  This bench
measures both on the same workloads: wall-time of the full S-diff
analysis vs wall-time of one 5-second simulated run, and asserts the
analysis is at least an order of magnitude cheaper at Fig. 6 scale.
"""

import random
import time

import pytest

from repro.core.disparity import disparity_bound
from repro.gen.scenario import generate_random_scenario
from repro.model.system import System
from repro.sim.engine import randomize_offsets, simulate
from repro.sim.metrics import DisparityMonitor
from repro.units import seconds


def measure(n_tasks: int = 25, n_graphs: int = 3, seed: int = 23):
    rng = random.Random(seed)
    scenarios = [generate_random_scenario(n_tasks, rng) for _ in range(n_graphs)]

    started = time.perf_counter()
    for scenario in scenarios:
        disparity_bound(scenario.system, scenario.sink, method="forkjoin")
    analysis_s = time.perf_counter() - started

    started = time.perf_counter()
    for scenario in scenarios:
        graph = randomize_offsets(scenario.system.graph, rng)
        variant = System(
            graph=graph, response_times=scenario.system.response_times
        )
        monitor = DisparityMonitor([scenario.sink], warmup=seconds(1))
        simulate(variant, seconds(5), seed=seed, observers=[monitor])
    simulation_s = time.perf_counter() - started
    return {"analysis_s": analysis_s, "simulation_s": simulation_s}


@pytest.mark.benchmark(group="runtime")
def test_analysis_vs_simulation_runtime(benchmark, out_dir):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)

    print()
    print(
        f"analysis: {result['analysis_s']*1000:.1f} ms total; "
        f"one 5s-horizon simulation sweep: {result['simulation_s']*1000:.1f} ms"
    )
    (out_dir / "runtime.csv").write_text(
        "analysis_s,simulation_s\n"
        f"{result['analysis_s']:.6f},{result['simulation_s']:.6f}\n"
    )
    # The full analysis must be much cheaper than even one short
    # simulated run per graph (the paper simulates 10 minutes x 10
    # offsets x 10 graphs per point).
    assert result["analysis_s"] * 10 < result["simulation_s"]

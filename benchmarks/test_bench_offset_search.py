"""Ablation (extension): offset search vs random offset draws.

The paper's ``Sim`` draws release offsets uniformly at random, which
under-explores the worst case and inflates the reported "incremental
ratio" of the analytical bounds (see EXPERIMENTS.md).  This bench runs
the coordinate-ascent offset search of :mod:`repro.exact.search` on
Fig. 6-style workloads with the same evaluation budget as the random
baseline and reports how much closer the searched lower bound gets to
S-diff.

Expected shape: searched >= random on (almost) every graph, never above
S-diff (soundness).
"""

import random

import pytest

from repro.core.disparity import disparity_bound
from repro.exact.hyperperiod import steady_state_disparity
from repro.exact.search import maximize_disparity_offsets
from repro.gen.scenario import ScenarioConfig, generate_random_scenario
from repro.model.system import System
from repro.units import to_ms


def run_search_study(n_graphs: int = 4, n_tasks: int = 10, seed: int = 61):
    rng = random.Random(seed)
    config = ScenarioConfig(n_ecus=1, use_bus=False)
    rows = []
    for index in range(n_graphs):
        scenario = generate_random_scenario(n_tasks, rng, config)
        system = scenario.system
        s_diff = disparity_bound(system, scenario.sink, method="forkjoin")

        searched = maximize_disparity_offsets(
            system, scenario.sink, rng, restarts=2, sweeps=1,
            candidates_per_task=3, max_windows=4,
        )
        random_best = 0
        for _ in range(searched.evaluations):
            graph = system.graph.copy()
            for task in graph.tasks:
                graph.replace_task(
                    task.with_offset(rng.randint(1, task.period))
                )
            variant = System(graph=graph, response_times=system.response_times)
            value = steady_state_disparity(
                variant, scenario.sink, max_windows=4
            ).disparity
            random_best = max(random_best, value)

        rows.append(
            {
                "graph": index,
                "s_diff_ms": to_ms(s_diff),
                "random_ms": to_ms(random_best),
                "searched_ms": to_ms(searched.disparity),
                "evaluations": searched.evaluations,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_offset_search_tightens_sim(benchmark, out_dir):
    rows = benchmark.pedantic(run_search_study, rounds=1, iterations=1)

    print()
    print("Ablation: random offset draws vs coordinate-ascent offset search")
    print(f"{'graph':>6} {'S-diff':>9} {'random':>9} {'searched':>9} {'evals':>6}")
    for row in rows:
        print(
            f"{row['graph']:>6} {row['s_diff_ms']:>9.1f} {row['random_ms']:>9.1f} "
            f"{row['searched_ms']:>9.1f} {row['evaluations']:>6}"
        )
    lines = ["graph,s_diff_ms,random_ms,searched_ms,evaluations"]
    lines += [
        f"{r['graph']},{r['s_diff_ms']:.3f},{r['random_ms']:.3f},"
        f"{r['searched_ms']:.3f},{r['evaluations']}"
        for r in rows
    ]
    (out_dir / "ablation_offset_search.csv").write_text("\n".join(lines) + "\n")

    for row in rows:
        # Soundness: no observation above the analytical bound.
        assert row["searched_ms"] <= row["s_diff_ms"] + 1e-9
        assert row["random_ms"] <= row["s_diff_ms"] + 1e-9
    # The search should win (or tie) in aggregate.
    assert sum(r["searched_ms"] for r in rows) >= sum(
        r["random_ms"] for r in rows
    )

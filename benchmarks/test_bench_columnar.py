"""Columnar-engine benchmarks and their committed-baseline gate.

The columnar tier replaces the per-replication Python event loop with
one C-kernel lockstep advance plus bulk provenance derivation across
all replications, so its paired benchmark
(:func:`repro.profile.bench_columnar_kernel`) pits it directly against
the compiled per-replication replay on identical draws.  Two guards:

* **Structural** — machine independent: the columnar arm must beat the
  per-replication replay arm on the same run (the bench itself asserts
  the two arms return identical per-replication disparities, so the
  win cannot come from doing less work), and auto-selection must
  actually have picked the columnar engine — otherwise the benchmark
  would be comparing the compiled loop against itself.
* **Regression gate** — the quick columnar measurement compared
  against the ``columnar`` entry of the committed
  ``BENCH_kernel.json``.  The gated metric is the replay/columnar
  *ratio*, which survives machine changes; shared-runner timing is
  noisy, so a regression only *warns* by default; set
  ``BENCH_STRICT=1`` to fail hard.

Both tests skip when the columnar engine cannot run at all (no numpy
or no C toolchain) — the pairing is meaningless without the fast arm.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro.sim.batch as batch_mod
from repro.profile import (
    SCHEMA_VERSION,
    bench_columnar_kernel,
    compare_to_baseline,
    load_baseline,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _columnar_available() -> bool:
    if batch_mod._np is None:
        return False
    from repro.sim import ckernel

    kernel, _why = ckernel.load_kernel()
    return kernel is not None


pytestmark = pytest.mark.skipif(
    not _columnar_available(),
    reason="columnar engine unavailable (numpy or C toolchain missing)",
)


@pytest.mark.benchmark(group="columnar")
def test_columnar_beats_compiled_replay(benchmark):
    """Lockstep advance must outrun the per-replication loop (same run)."""
    result = benchmark.pedantic(
        bench_columnar_kernel,
        kwargs={"sims": 12, "duration_s": 2.0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"columnar: {result['sims']} sims "
        f"{result['replay_s']:.3f}s replayed -> "
        f"{result['columnar_s']:.3f}s columnar ({result['speedup']:.2f}x; "
        f"phases {result['phases']})"
    )
    assert result["engine"] == "columnar"
    assert result["columnar_s"] < result["replay_s"]


@pytest.mark.benchmark(group="columnar")
def test_committed_columnar_gate(benchmark):
    """Quick columnar run vs BENCH_kernel.json; warns unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "columnar" in baseline, f"no columnar entry in {BASELINE_PATH}"
    columnar = benchmark.pedantic(
        bench_columnar_kernel,
        kwargs={"sims": 12, "duration_s": 2.0, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "columnar": columnar}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

"""Streaming-campaign benchmarks and their committed-baseline gate.

The streaming campaign engine replaces the legacy per-point loop (one
pool barrier and one linear task filter per point, one whole-document
checkpoint rewrite per completed point — both quadratic in the point
count) with a single adaptive map feeding bounded accumulators and an
append-only JSONL checkpoint.  Its paired benchmark
(:func:`repro.profile.bench_campaign_kernel`) runs the same
points-heavy synthetic campaign through both engines with
checkpointing enabled, asserts the rows identical, and records the
streaming arm's *measured* peak result residency next to the legacy
arm's whole-campaign row dict.  Two guards:

* **Structural** — machine independent: the streaming arm must beat
  the legacy loop on the same run (the bench itself asserts identical
  rows, so the win cannot come from doing less work), and the
  accumulator's peak residency must stay O(points in flight) — a
  handful of results — rather than growing with the campaign.
* **Regression gate** — the measurement compared against the
  ``campaign`` entry of the committed ``BENCH_kernel.json``.  The
  legacy loop's overhead is quadratic in the point count, so
  :func:`repro.profile.compare_to_baseline` only compares the ratio at
  matching campaign shapes (the committed entry is the full shape;
  quick-shape runs skip the comparison, exactly like the analysis
  ladder rows).  Shared-runner timing is noisy, so a regression only
  *warns* by default; set ``BENCH_STRICT=1`` to fail hard.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.profile import (
    SCHEMA_VERSION,
    bench_campaign_kernel,
    compare_to_baseline,
    load_baseline,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

QUICK = {"points": 120, "sims_per_graph": 2}


@pytest.mark.benchmark(group="campaign")
def test_streaming_beats_legacy_loop(benchmark):
    """Streaming engine must outrun the per-point loop (same campaign)."""
    result = benchmark.pedantic(
        bench_campaign_kernel, kwargs=QUICK, rounds=1, iterations=1
    )
    print()
    print(
        f"campaign: {result['scenarios']} scenarios "
        f"{result['legacy_s']:.3f}s legacy -> "
        f"{result['streaming_s']:.3f}s streaming "
        f"({result['speedup']:.2f}x; peak {result['peak_in_flight_results']} "
        f"results in flight vs {result['legacy_resident_rows']} resident rows)"
    )
    assert result["streaming_s"] < result["legacy_s"]
    # Bounded memory: residency must not scale with the campaign.  On
    # one worker at one graph per point, at most a couple of results
    # and open points exist at any instant.
    assert result["peak_in_flight_results"] <= 2
    assert result["peak_points_open"] <= 2


@pytest.mark.benchmark(group="campaign")
def test_committed_campaign_gate(benchmark):
    """Quick campaign run vs BENCH_kernel.json; warns unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "campaign" in baseline, f"no campaign entry in {BASELINE_PATH}"
    # The committed entry must carry the acceptance evidence: >= 10^4
    # scenarios, >= 1.3x over the legacy loop, bounded peak residency.
    committed = baseline["campaign"]
    assert committed["scenarios"] >= 10_000
    assert committed["speedup"] >= 1.3
    assert (
        committed["peak_in_flight_results"] < committed["legacy_resident_rows"]
    )
    campaign = benchmark.pedantic(
        bench_campaign_kernel, kwargs=QUICK, rounds=1, iterations=1
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "campaign": campaign}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

"""Fig. 6(c): absolute disparity of merged chain pairs, with buffers.

Regenerates the four series — ``Sim``, ``S-diff`` (Theorem 2) and
their buffered counterparts ``Sim-B``, ``S-diff-B`` (Algorithm 1 +
Theorem 3) — over the tasks-per-chain of two chains merged at one
sink.  Asserted shape: soundness on both systems, the optimization
never worsening the bound, and the buffered bound being strictly lower
somewhere (the paper's headline optimization result).
"""

import pytest

from benchmarks.common import cd_rows_cached
from repro.experiments.reporting import check_shapes_cd, csv_cd, render_table_cd


@pytest.mark.benchmark(group="fig6")
def test_fig6c_buffered_disparity(benchmark, out_dir):
    rows = benchmark.pedantic(cd_rows_cached, rounds=1, iterations=1)

    print()
    print("Fig. 6(c): absolute time disparity (ms) with/without buffers")
    print(render_table_cd(rows))
    (out_dir / "fig6c.csv").write_text(csv_cd(rows))

    violations = check_shapes_cd(rows)
    assert not violations, violations
    assert rows[0].tasks_per_chain == 5 and rows[-1].tasks_per_chain == 30
    # The optimization must strictly reduce the bound on most points.
    improved = [row for row in rows if row.s_diff_b_ms < row.s_diff_ms]
    assert len(improved) >= len(rows) // 2
    # And the *actual* (simulated) disparity should drop on average —
    # the paper's "most importantly" observation.
    mean_sim = sum(row.sim_ms for row in rows) / len(rows)
    mean_sim_b = sum(row.sim_b_ms for row in rows) / len(rows)
    assert mean_sim_b <= mean_sim * 1.1  # allow sampling noise

"""Faulted-batch benchmark and its committed-baseline gate.

Fault plans used to force the general event loop, so faulted runs
never benefited from the batched tiers.  With dropouts compiled to
boolean release masks over the pre-drawn release tables, a faulted
periodic scenario replays through the fastest eligible batched tier.
Two guards:

* **Structural** — machine independent, properties of one run: the
  masked batched arm must beat the sequential general-loop arm
  (``bench_fault_kernel`` itself asserts the two arms produce
  identical per-replication disparities, so the win cannot come from
  suppressing different jobs).
* **Regression gate** — the quick fault measurement compared against
  the ``fault`` entry of the committed ``BENCH_kernel.json``.  The
  gated metric is the sequential/batched *ratio*, which survives
  machine changes; timing on shared CI runners is still noisy, so a
  regression only *warns* by default (``::warning::`` annotation); set
  ``BENCH_STRICT=1`` to turn it into a failure.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.profile import (
    SCHEMA_VERSION,
    bench_fault_kernel,
    compare_to_baseline,
    load_baseline,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@pytest.mark.benchmark(group="fault")
def test_masked_batch_beats_general_loop(benchmark):
    """Masked batched replay must outrun per-sim general-loop runs."""
    result = benchmark.pedantic(
        bench_fault_kernel,
        kwargs={"sims": 12, "duration_s": 2.0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"fault: {result['sims']} sims "
        f"{result['sequential_s']:.3f}s general loop -> "
        f"{result['batched_s']:.3f}s masked batched "
        f"({result['speedup']:.2f}x)"
    )
    assert result["engine"] in ("columnar", "compiled")
    assert result["batched_s"] < result["sequential_s"]


@pytest.mark.benchmark(group="fault")
def test_committed_fault_gate(benchmark):
    """Quick fault run vs BENCH_kernel.json; warning unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "fault" in baseline, f"no fault entry in {BASELINE_PATH}"
    fault = benchmark.pedantic(
        bench_fault_kernel,
        kwargs={"sims": 8, "duration_s": 2.0, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "fault": fault}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

"""Measure the Fig. 6 harness speedup over the seed-equivalent baseline.

Usage::

    python -m benchmarks.parallel_speedup --preset default --jobs 4

Runs the (a)/(b) sweep twice on the same preset — once with the
implicit-semantics simulator fast path disabled and no worker pool
(the seed's configuration), once with the fast path active and
``--jobs`` workers — and writes the wall times, speedup, and worker
utilization to ``benchmarks/out/parallel_speedup_<preset>_ab.json``.

The two runs cover the same workload (same preset, same pre-derived
per-graph seeds); their simulated series differ only in the uniform
draw sequence, which the fast path inlines.  The speedup multiplies the
single-core simulator gain with the process-level parallel gain; on a
single-CPU host the latter is ~1x and the report's ``cpus`` field says
so.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Optional, Sequence

import repro.sim.engine as engine
from repro.experiments.fig6 import run_fig6_ab_timed


def measure_speedup(config, *, jobs: int = 4) -> dict:
    """Baseline (seed-equivalent serial) vs optimized (fast loop + pool)."""
    original = engine.Simulator._run_events_implicit
    engine.Simulator._run_events_implicit = engine.Simulator._run_events_general
    try:
        started = time.perf_counter()
        run_fig6_ab_timed(config, jobs=1)
        baseline_s = time.perf_counter() - started
    finally:
        engine.Simulator._run_events_implicit = original

    started = time.perf_counter()
    _, timing = run_fig6_ab_timed(config, jobs=jobs)
    optimized_s = time.perf_counter() - started

    return {
        "workload": repr(config),
        "jobs": jobs,
        "cpus": os.cpu_count(),
        "baseline_s": round(baseline_s, 3),
        "optimized_s": round(optimized_s, 3),
        "speedup": round(baseline_s / optimized_s, 3),
        "utilization": timing.utilization,
        "stage_totals": timing.stage_totals(),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=("paper", "default", "smoke"), default="default"
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", help="output JSON path (default: out/)")
    args = parser.parse_args(argv)

    from repro.experiments.runner import preset_ab

    config = preset_ab(args.preset)
    report = measure_speedup(config, jobs=args.jobs)
    report["preset"] = args.preset

    out = Path(
        args.out
        or Path(__file__).parent / "out" / f"parallel_speedup_{args.preset}_ab.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"baseline {report['baseline_s']:.2f}s -> optimized "
        f"{report['optimized_s']:.2f}s = {report['speedup']:.2f}x "
        f"({args.jobs} workers, {report['cpus']} CPU(s))"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Wall-clock speedup of the parallel experiment engine.

Measures the full Fig. 6 (a)/(b) sweep two ways on the same preset:

* **baseline** — the harness as shipped in the seed: the
  general-semantics event loop (the implicit-semantics fast path
  disabled) driven serially (``jobs=1``);
* **optimized** — the specialized implicit-semantics simulator loop
  with per-graph work fanned across 4 worker processes.

The optimized run must be at least 2x faster.  Two independent factors
multiply into that number: the simulator fast path (~2.4x on one core)
and process-level parallelism (near-linear on real multicore; ~1x on a
single-CPU container, where the pool can only time-slice).  Measuring
end-to-end keeps the claim honest either way — the committed result in
``out/parallel_speedup_ab.json`` records both wall times plus the
worker utilization, so the contribution of each factor is visible.

Run ``python -m benchmarks.parallel_speedup --preset default`` for the
default-preset measurement (minutes); this benchmark uses the bench
preset so the suite stays fast.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.common import BENCH_AB
from benchmarks.parallel_speedup import measure_speedup
from repro.experiments.fig6 import run_fig6_ab
from repro.experiments.reporting import csv_ab


@pytest.mark.benchmark(group="parallel")
def test_parallel_speedup_ab(benchmark, out_dir):
    report = benchmark.pedantic(
        lambda: measure_speedup(BENCH_AB, jobs=4), rounds=1, iterations=1
    )

    print()
    print(
        f"baseline {report['baseline_s']:.2f}s -> optimized "
        f"{report['optimized_s']:.2f}s = {report['speedup']:.2f}x "
        f"({report['jobs']} workers, {report['cpus']} CPU(s), "
        f"{report['utilization']:.0%} busy)"
    )
    (out_dir / "parallel_speedup_ab.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    assert report["speedup"] >= 2.0, report


@pytest.mark.benchmark(group="parallel")
def test_jobs_do_not_change_the_csv(benchmark, out_dir):
    serial = csv_ab(run_fig6_ab(BENCH_AB, jobs=1))
    parallel = benchmark.pedantic(
        lambda: csv_ab(run_fig6_ab(BENCH_AB, jobs=4)), rounds=1, iterations=1
    )
    assert parallel == serial

"""Fig. 6(d): incremental ratios of the buffered and unbuffered bounds.

The paper reports ``(S-diff - Sim)/Sim`` and ``(S-diff-B - Sim-B)/
Sim-B`` and observes ratios "below 25% in most settings" at its
replication scale.  Bench scale explores fewer offsets (higher
ratios); the asserted shape is that both ratio series are finite and
the buffered analysis stays sound.  EXPERIMENTS.md records the
measured values against the paper's.
"""

import pytest

from benchmarks.common import cd_rows_cached
from repro.experiments.reporting import check_shapes_cd


@pytest.mark.benchmark(group="fig6")
def test_fig6d_incremental_ratios(benchmark, out_dir):
    rows = benchmark.pedantic(cd_rows_cached, rounds=1, iterations=1)

    print()
    print("Fig. 6(d): incremental ratios (bound - Sim) / Sim")
    print(f"{'k/chain':>8} {'S-ratio':>8} {'S-B-ratio':>9}")
    for row in rows:
        print(f"{row.tasks_per_chain:>8} {row.s_ratio:>8.2f} {row.s_b_ratio:>9.2f}")
    lines = ["tasks_per_chain,s_ratio,s_b_ratio"]
    lines += [
        f"{r.tasks_per_chain},{r.s_ratio:.6f},{r.s_b_ratio:.6f}" for r in rows
    ]
    (out_dir / "fig6d.csv").write_text("\n".join(lines) + "\n")

    assert not check_shapes_cd(rows)
    for row in rows:
        assert row.s_ratio >= 0
        assert row.s_b_ratio >= 0

"""Fig. 6(a): absolute worst-case time disparity on random DAGs.

Regenerates the three series of the paper's Fig. 6(a) — ``Sim``
(simulated lower bound), ``P-diff`` (Theorem 1), ``S-diff``
(Theorem 2) — over the number of tasks, and asserts the qualitative
shape: soundness (Sim below both bounds) and the dominance of S-diff
over P-diff.
"""

import pytest

from benchmarks.common import ab_rows_cached
from repro.experiments.reporting import check_shapes_ab, csv_ab, render_table_ab


@pytest.mark.benchmark(group="fig6")
def test_fig6a_absolute_disparity(benchmark, out_dir):
    rows = benchmark.pedantic(ab_rows_cached, rounds=1, iterations=1)

    print()
    print("Fig. 6(a): absolute time disparity (ms), averaged per point")
    print(render_table_ab(rows))
    (out_dir / "fig6a.csv").write_text(csv_ab(rows))

    violations = check_shapes_ab(rows)
    assert not violations, violations
    # The sweep covers the paper's X range and disparity grows with n.
    assert rows[0].n_tasks == 5 and rows[-1].n_tasks == 35
    assert rows[-1].s_diff_ms > rows[0].s_diff_ms
    # S-diff must be strictly tighter than P-diff somewhere (the
    # paper's headline improvement).
    assert any(row.s_diff_ms < row.p_diff_ms for row in rows)

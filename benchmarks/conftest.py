"""Shared output directory for benchmark artifacts."""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR

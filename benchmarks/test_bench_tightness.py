"""Ablation (extension): exact bound tightness on small systems.

The Fig. 6 ``Sim`` series under-reports the true worst case, so the
paper's "incremental ratio" conflates bound pessimism with sampling
weakness.  On *small* systems the exhaustive offset-grid verifier
(:mod:`repro.exact.exhaustive`) computes the exact steady-state maximum
over a dense offset grid (WCET policy), separating the two effects:
``grid-max / S-diff`` is a true tightness measure.

Expected shape: soundness (grid-max <= S-diff always) with tightness
well above the random-draw Sim would suggest.
"""

import random

import pytest

from repro.core.disparity import disparity_bound
from repro.exact.exhaustive import exhaustive_offset_disparity
from repro.gen.waters import WatersSampler
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import Task, source_task
from repro.units import ms, to_ms


def build_small_fusion(rng: random.Random) -> System:
    """A random 2-sensor, 4-task fusion system with WATERS-ish periods."""
    sampler = WatersSampler(rng)
    graph = CauseEffectGraph()
    p_fast = sampler.sample_parameters(period_ms=10)
    p_slow = sampler.sample_parameters(
        period_ms=rng.choice((20, 50, 100))
    )
    p_mid = sampler.sample_parameters(period_ms=rng.choice((10, 20)))
    p_sink = sampler.sample_parameters(period_ms=p_slow.period // ms(1))
    graph.add_task(source_task("cam", p_fast.period, ecu="e", priority=0))
    graph.add_task(source_task("lidar", p_slow.period, ecu="e", priority=1))
    graph.add_task(
        Task("img", p_mid.period, p_mid.wcet, p_mid.bcet, ecu="e", priority=2)
    )
    graph.add_task(
        Task("fuse", p_sink.period, p_sink.wcet, p_sink.bcet, ecu="e", priority=3)
    )
    graph.add_channel("cam", "img")
    graph.add_channel("img", "fuse")
    graph.add_channel("lidar", "fuse")
    return System.build(graph)


def run_tightness(n_systems: int = 5, steps: int = 5, seed: int = 77):
    rng = random.Random(seed)
    rows = []
    for index in range(n_systems):
        system = build_small_fusion(rng)
        bound = disparity_bound(system, "fuse", method="forkjoin")
        exact = exhaustive_offset_disparity(system, "fuse", steps=steps)
        rows.append(
            {
                "system": index,
                "s_diff_ms": to_ms(bound),
                "grid_max_ms": to_ms(exact.disparity),
                "tightness": (exact.disparity / bound) if bound else 1.0,
                "points": exact.points_evaluated,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_bound_tightness_exhaustive(benchmark, out_dir):
    rows = benchmark.pedantic(run_tightness, rounds=1, iterations=1)

    print()
    print("Ablation: exact grid maximum vs S-diff on small fusion systems")
    print(f"{'sys':>4} {'S-diff':>9} {'grid-max':>9} {'tightness':>10} {'points':>7}")
    for row in rows:
        print(
            f"{row['system']:>4} {row['s_diff_ms']:>9.1f} "
            f"{row['grid_max_ms']:>9.1f} {row['tightness']:>10.2f} "
            f"{row['points']:>7}"
        )
    lines = ["system,s_diff_ms,grid_max_ms,tightness,points"]
    lines += [
        f"{r['system']},{r['s_diff_ms']:.3f},{r['grid_max_ms']:.3f},"
        f"{r['tightness']:.4f},{r['points']}"
        for r in rows
    ]
    (out_dir / "ablation_tightness.csv").write_text("\n".join(lines) + "\n")

    for row in rows:
        assert row["grid_max_ms"] <= row["s_diff_ms"] + 1e-9
    # The bounds are not vacuous: the exact maximum reaches a sizable
    # fraction of the bound on average.
    mean_tightness = sum(r["tightness"] for r in rows) / len(rows)
    assert mean_tightness > 0.3
"""Kernel-throughput benchmarks and the committed-baseline gate.

The hot-path work (two-phase fast path in the engine, DAG-shared
backward bounds) is guarded by two kinds of assertion:

* **Structural** — properties of the current run alone, machine
  independent: the fast path must beat the classic loop on the same
  scenario, and the per-chain analysis cost must fall as the chain
  count grows (prefix sharing + fixed-cost amortization).
* **Regression gate** — the quick benchmark document compared against
  the committed ``BENCH_kernel.json`` via
  :func:`repro.profile.compare_to_baseline`.  Timing on shared CI
  runners is noisy, so a regression only *warns* by default
  (``::warning::`` annotation); set ``BENCH_STRICT=1`` (e.g. on a
  quiet dedicated box) to turn it into a failure.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

import pytest

from repro.gen import generate_random_scenario
from repro.model.system import System
from repro.profile import (
    bench_analysis_scaling,
    bench_sim_kernel,
    compare_to_baseline,
    load_baseline,
    run_benchmarks,
)
from repro.sim.engine import Simulator, randomize_offsets
from repro.sim.metrics import DisparityMonitor
from repro.units import seconds

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


@pytest.mark.benchmark(group="kernel")
def test_sim_kernel_throughput(benchmark):
    result = benchmark.pedantic(bench_sim_kernel, rounds=1, iterations=1)
    print()
    print(
        f"kernel: {result['jobs']} jobs in {result['wall_s']:.2f}s "
        f"-> {result['jobs_per_s']:,.0f} jobs/s"
    )
    assert result["jobs"] > 0


@pytest.mark.benchmark(group="kernel")
def test_fastpath_beats_classic_loop(benchmark):
    """The specialized loop must outrun the reference loop (same run)."""
    rng = random.Random(2023)
    scenario = generate_random_scenario(30, rng)
    graph = randomize_offsets(scenario.system.graph, rng)
    system = System(
        graph=graph, response_times=scenario.system.response_times
    )
    duration = seconds(2)

    def run(loop: str) -> float:
        best = None
        for _ in range(3):
            monitor = DisparityMonitor([scenario.sink], warmup=duration // 4)
            started = time.perf_counter()
            Simulator(
                system, duration, seed=7, observers=[monitor], loop=loop
            ).run()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    times = benchmark.pedantic(
        lambda: {"fast": run("fast"), "classic": run("classic")},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"fast {times['fast']*1000:.1f} ms vs "
        f"classic {times['classic']*1000:.1f} ms "
        f"({times['classic']/times['fast']:.2f}x)"
    )
    assert times["fast"] < times["classic"]


@pytest.mark.benchmark(group="kernel")
def test_analysis_per_chain_cost_falls(benchmark):
    """Prefix sharing: per-chain cost at 15625 chains < cost at 1."""
    rows = benchmark.pedantic(bench_analysis_scaling, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            f"{row['chains']:>7} chains: {row['per_chain_us']:.1f} us/chain"
        )
    assert rows[-1]["chains"] > rows[0]["chains"]
    assert rows[-1]["per_chain_us"] < rows[0]["per_chain_us"]


@pytest.mark.benchmark(group="kernel")
def test_committed_baseline_gate(benchmark):
    """Quick run vs BENCH_kernel.json; soft warning unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    current = benchmark.pedantic(
        run_benchmarks, kwargs={"quick": True}, rounds=1, iterations=1
    )
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

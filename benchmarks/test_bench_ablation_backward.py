"""Ablation: the paper's NP-FP backward bounds vs the agnostic baseline.

Section III argues Lemma 4 is "more precise than the results presented
in [5]" (Dürr et al.'s scheduling-agnostic bounds).  This bench
quantifies that claim: over random WATERS workloads it compares

* per-chain WCBT: ours (Lemma 4) vs agnostic (T + R per hop), and
* the resulting task-level S-diff when each WCBT feeds Theorem 2.

Expected shape: ours <= agnostic per chain, with a strict improvement
whenever chains have same-ECU hops; the disparity bound improves
accordingly.
"""

import random
from itertools import combinations

import pytest

from repro.chains.backward import BackwardBoundsCache, wcbt_upper
from repro.chains.duerr import wcbt_upper_agnostic
from repro.core.disparity import disparity_bound
from repro.gen.scenario import ScenarioConfig, generate_random_scenario
from repro.model.chain import enumerate_source_chains
from repro.units import to_ms


def run_ablation(n_graphs: int = 6, n_tasks: int = 20, seed: int = 17):
    rng = random.Random(seed)
    rows = []
    for index in range(n_graphs):
        scenario = generate_random_scenario(n_tasks, rng)
        system = scenario.system
        chains = enumerate_source_chains(system.graph, scenario.sink)
        ours = [wcbt_upper(chain, system) for chain in chains]
        agnostic = [wcbt_upper_agnostic(chain, system) for chain in chains]
        s_diff = disparity_bound(system, scenario.sink, method="forkjoin")
        rows.append(
            {
                "graph": index,
                "chains": len(chains),
                "wcbt_ours_ms": to_ms(max(ours)),
                "wcbt_agnostic_ms": to_ms(max(agnostic)),
                "s_diff_ms": to_ms(s_diff),
                "per_chain_ok": all(o <= a for o, a in zip(ours, agnostic)),
                "strict": sum(1 for o, a in zip(ours, agnostic) if o < a),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_backward_bounds(benchmark, out_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    print("Ablation: WCBT — Lemma 4 (ours) vs scheduling-agnostic baseline")
    print(f"{'graph':>6} {'chains':>7} {'ours(ms)':>9} {'agnostic(ms)':>13} {'strict':>7}")
    for row in rows:
        print(
            f"{row['graph']:>6} {row['chains']:>7} {row['wcbt_ours_ms']:>9.1f} "
            f"{row['wcbt_agnostic_ms']:>13.1f} {row['strict']:>7}"
        )
    lines = ["graph,chains,wcbt_ours_ms,wcbt_agnostic_ms,strict"]
    lines += [
        f"{r['graph']},{r['chains']},{r['wcbt_ours_ms']:.3f},"
        f"{r['wcbt_agnostic_ms']:.3f},{r['strict']}"
        for r in rows
    ]
    (out_dir / "ablation_backward.csv").write_text("\n".join(lines) + "\n")

    assert all(row["per_chain_ok"] for row in rows)
    # With same-ECU hops present, the improvement is strict somewhere.
    assert any(row["strict"] > 0 for row in rows)

"""Fig. 6(b): incremental ratios of P-diff and S-diff over Sim.

The paper reports ``(bound - Sim) / Sim`` and claims S-diff's ratio is
"in general below 50%" at their replication scale (10-minute runs, 10
offset draws, 10 graphs per point).  At bench scale Sim explores fewer
offsets, so the absolute ratios run higher; the asserted shape is the
ordering (S-ratio <= P-ratio pointwise) and that S-diff improves the
average ratio.  EXPERIMENTS.md records measured-vs-paper values.
"""

import pytest

from benchmarks.common import ab_rows_cached
from repro.experiments.reporting import check_shapes_ab


def _ratio_series(rows):
    return (
        [row.p_ratio for row in rows],
        [row.s_ratio for row in rows],
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6b_incremental_ratios(benchmark, out_dir):
    rows = benchmark.pedantic(ab_rows_cached, rounds=1, iterations=1)
    p_ratios, s_ratios = _ratio_series(rows)

    print()
    print("Fig. 6(b): incremental ratio (bound - Sim) / Sim")
    print(f"{'n_tasks':>8} {'P-ratio':>8} {'S-ratio':>8}")
    for row in rows:
        print(f"{row.n_tasks:>8} {row.p_ratio:>8.2f} {row.s_ratio:>8.2f}")
    lines = ["n_tasks,p_ratio,s_ratio"]
    lines += [f"{r.n_tasks},{r.p_ratio:.6f},{r.s_ratio:.6f}" for r in rows]
    (out_dir / "fig6b.csv").write_text("\n".join(lines) + "\n")

    assert not check_shapes_ab(rows)
    # Pointwise ordering: S-diff never has a larger ratio than P-diff.
    for p_ratio, s_ratio in zip(p_ratios, s_ratios):
        assert s_ratio <= p_ratio + 1e-9
    # And the improvement is real on average.
    assert sum(s_ratios) < sum(p_ratios)

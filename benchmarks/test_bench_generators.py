"""Ablation: graph-family choice and the S-diff/P-diff separation.

The paper's text names ``dense_gnm_random_graph`` as the generator,
but its Fig. 6(a) shows S-diff clearly below P-diff — a separation that
requires the *worst* pair of chains to share interior tasks.  Under a
plain G(n, m) construction the worst pair is almost always structure-
disjoint (S-diff == P-diff at the task level); the default fusion-
pipeline family (matching the paper's Fig. 1 application) restores the
separation.  This bench documents both, so the deviation is measured
rather than asserted (see EXPERIMENTS.md).
"""

import random

import pytest

from repro.chains.backward import BackwardBoundsCache
from repro.core.disparity import disparity_bound
from repro.gen.scenario import ScenarioConfig, generate_random_scenario


def run_family(generator: str, n_graphs: int = 8, n_tasks: int = 20, seed: int = 5):
    rng = random.Random(seed)
    config = ScenarioConfig(generator=generator)
    ratios = []
    strict = 0
    for _ in range(n_graphs):
        scenario = generate_random_scenario(n_tasks, rng, config)
        cache = BackwardBoundsCache(scenario.system)
        p = disparity_bound(
            scenario.system, scenario.sink, method="independent", cache=cache
        )
        s = disparity_bound(
            scenario.system, scenario.sink, method="forkjoin", cache=cache
        )
        assert s <= p + 0  # dominance never violated at task level here
        ratios.append(s / p if p else 1.0)
        if s < p:
            strict += 1
    return {"mean_s_over_p": sum(ratios) / len(ratios), "strict": strict,
            "graphs": n_graphs}


@pytest.mark.benchmark(group="ablation")
def test_generator_family_separation(benchmark, out_dir):
    def run_both():
        return {
            "fusion": run_family("fusion"),
            "gnm": run_family("gnm"),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print()
    print("Ablation: S-diff/P-diff separation by graph family")
    for family, stats in results.items():
        print(
            f"  {family:>7}: mean S/P = {stats['mean_s_over_p']:.3f}, "
            f"strict improvement on {stats['strict']}/{stats['graphs']} graphs"
        )
    (out_dir / "ablation_generators.csv").write_text(
        "family,mean_s_over_p,strict,graphs\n"
        + "\n".join(
            f"{family},{s['mean_s_over_p']:.6f},{s['strict']},{s['graphs']}"
            for family, s in results.items()
        )
        + "\n"
    )

    # Fusion pipelines must show the paper's separation...
    assert results["fusion"]["mean_s_over_p"] < 0.95
    assert results["fusion"]["strict"] == results["fusion"]["graphs"]
    # ...while plain gnm stays (nearly) degenerate — documenting why
    # the default generator deviates from the paper's text.
    assert results["gnm"]["mean_s_over_p"] > results["fusion"]["mean_s_over_p"]

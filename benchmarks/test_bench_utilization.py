"""Ablation (extension): disparity bounds versus processor load.

WATERS workloads are execution-light (a few percent utilization), so
the response-time terms of Lemma 4 barely register in the Fig. 6
numbers.  This bench rescales the same graphs to a range of per-unit
utilizations (structure, periods and priorities preserved —
``repro.gen.uunifast.scale_to_utilization``) and tracks both disparity
bounds, separating the sampling-driven part of the bound (periods)
from the scheduling-driven part (response times and blocking).

Expected shape: bounds grow monotonically-ish with utilization, with
the growth concentrated in the P-diff/S-diff *levels* (the ``R`` and
``W + B`` terms of the same-unit hop budgets); schedulability fails
somewhere above ~80% (non-preemptive blocking), which the bench
reports rather than hides.
"""

import random

import pytest

from repro.core.disparity import disparity_bound
from repro.gen.graphgen import deploy, fusion_pipeline_graph
from repro.gen.uunifast import scale_to_utilization
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import to_ms

UTILIZATIONS = (0.05, 0.2, 0.4, 0.6, 0.8)


def run_utilization_sweep(n_graphs: int = 4, n_tasks: int = 14, seed: int = 29):
    rng = random.Random(seed)
    base_graphs = [
        deploy(fusion_pipeline_graph(n_tasks, rng), rng, n_ecus=1, use_bus=False)
        for _ in range(n_graphs)
    ]
    rows = []
    for target in UTILIZATIONS:
        p_values, s_values, feasible = [], [], 0
        for graph in base_graphs:
            scaled = scale_to_utilization(graph, target)
            try:
                system = System.build(scaled)
            except ModelError:
                continue  # unschedulable at this load
            feasible += 1
            sink = system.graph.sinks()[0]
            p_values.append(to_ms(disparity_bound(system, sink, method="independent")))
            s_values.append(to_ms(disparity_bound(system, sink, method="forkjoin")))
        rows.append(
            {
                "utilization": target,
                "feasible": feasible,
                "p_diff_ms": sum(p_values) / len(p_values) if p_values else None,
                "s_diff_ms": sum(s_values) / len(s_values) if s_values else None,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_disparity_vs_utilization(benchmark, out_dir):
    rows = benchmark.pedantic(run_utilization_sweep, rounds=1, iterations=1)

    print()
    print("Ablation: disparity bounds vs per-unit utilization")
    print(f"{'U':>5} {'feasible':>9} {'P-diff(ms)':>11} {'S-diff(ms)':>11}")
    for row in rows:
        p = f"{row['p_diff_ms']:.1f}" if row["p_diff_ms"] is not None else "-"
        s = f"{row['s_diff_ms']:.1f}" if row["s_diff_ms"] is not None else "-"
        print(f"{row['utilization']:>5.2f} {row['feasible']:>9} {p:>11} {s:>11}")
    lines = ["utilization,feasible,p_diff_ms,s_diff_ms"]
    for row in rows:
        p = f"{row['p_diff_ms']:.3f}" if row["p_diff_ms"] is not None else ""
        s = f"{row['s_diff_ms']:.3f}" if row["s_diff_ms"] is not None else ""
        lines.append(f"{row['utilization']},{row['feasible']},{p},{s}")
    (out_dir / "ablation_utilization.csv").write_text("\n".join(lines) + "\n")

    # Everything schedulable at light load.
    assert rows[0]["feasible"] > 0
    # Bounds grow with load where feasible on both ends of the sweep.
    light = [r for r in rows if r["s_diff_ms"] is not None][0]
    heavy = [r for r in rows if r["s_diff_ms"] is not None][-1]
    if heavy is not light:
        assert heavy["s_diff_ms"] >= light["s_diff_ms"]
    # S-diff never exceeds P-diff.
    for row in rows:
        if row["s_diff_ms"] is not None:
            assert row["s_diff_ms"] <= row["p_diff_ms"] + 1e-9

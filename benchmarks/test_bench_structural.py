"""Structural-view benchmarks: edited views vs per-candidate compiles.

The structural delta-compilation work extends
:class:`repro.sim.batch.CompiledScenario` beyond offsets: period,
priority and capacity edits become
:meth:`~repro.sim.batch.CompiledScenario.edit` views that invalidate
only the tables the edit touches (release grids per period, rank
tables per priority band, channel tables per edge) and share the rest
with the base — capacity views even share the memoized schedule, since
buffer sizes never affect scheduling.  Two structural assertions guard
it (machine independent, current run only):

* a mixed period/capacity sweep evaluated through views must beat
  compiling a fresh scenario per candidate — with byte-identical
  per-candidate disparities (asserted inside the paired bench);
* a capacity view evaluated at draws its base has already scheduled
  must hit the shared schedule memo instead of re-simulating.

The committed-baseline regression gate for the ``structural`` section
lives with the other sections in ``test_bench_kernel.py``
(``BENCH_kernel.json`` / ``repro bench --check``).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.gen import generate_random_scenario
from repro.profile import bench_structural_kernel
from repro.sim.batch import CompiledScenario
from repro.sim.exec_time import wcet_policy
from repro.units import seconds


@pytest.mark.benchmark(group="structural")
def test_structural_views_beat_fresh_compiles(benchmark):
    """Paired sweep: structural views outrun per-candidate compiles."""
    result = benchmark.pedantic(
        bench_structural_kernel, rounds=1, iterations=1
    )
    print()
    print(
        f"structural: {result['candidates']} edits "
        f"({result['period_candidates']} period, "
        f"{result['capacity_candidates']} capacity), "
        f"{result['fresh_s']:.3f}s recompiled -> "
        f"{result['view_s']:.3f}s via views "
        f"({result['speedup']:.2f}x)"
    )
    assert result["delta_replay"], "candidates fell off the delta path"
    assert result["view_s"] < result["fresh_s"]


@pytest.mark.benchmark(group="structural")
def test_capacity_view_shares_schedule(benchmark):
    """Capacity views replay the base's memoized schedule for free."""
    rng = random.Random(2023)
    scenario = generate_random_scenario(20, rng)
    system, sink = scenario.system, scenario.sink
    duration = seconds(0.25)
    warmup = duration // 4
    vector = tuple(rng.randint(1, t.period) for t in system.graph.tasks)
    channel = system.graph.channels[0]
    edge = (channel.src, channel.dst)

    def measure():
        base = CompiledScenario(system, sink)
        started = time.perf_counter()
        base.with_offsets(vector).disparity(0, duration, warmup, wcet_policy)
        cold_s = time.perf_counter() - started
        view = base.edit(capacities={edge: 4}, offsets=vector)
        assert view.compiled._sched_cache is base._sched_cache
        started = time.perf_counter()
        view.disparity(0, duration, warmup, wcet_policy)
        shared_s = time.perf_counter() - started
        return cold_s, shared_s, base._sched_cache.stats()

    cold_s, shared_s, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print(
        f"schedule {cold_s*1e3:.2f} ms cold, capacity view "
        f"{shared_s*1e3:.2f} ms via shared memo "
        f"(hits={stats['hits']}, misses={stats['misses']})"
    )
    assert stats["hits"] >= 1
    assert shared_s < cold_s

"""Cluster-coordinator benchmarks and their committed-baseline gate.

The cluster coordinator (:func:`repro.parallel.cluster.run_cluster`)
buys crash tolerance — shard JSONL resume logs, liveness watchdog,
dead-shard re-issue, incremental merge — and pays for it with worker
subprocess launches and file-tail polling that a plain in-process pool
does not have.  Its paired benchmark
(:func:`repro.profile.bench_cluster_kernel`) runs the same synthetic
campaign through :func:`repro.parallel.campaign.run_campaign` on a
process pool and through the coordinator on the same worker count,
asserts the rows identical (the byte-identity contract) and zero
deaths, and records the coordinator's **overhead ratio**.  Two guards:

* **Structural** — machine independent: the paired run must complete
  with identical rows (asserted inside the bench itself) and the
  overhead must stay within a generous constant bound — the
  coordinator's fixed costs (subprocess spawn, poll interval) dominate
  at quick shapes, so the bound is loose; it exists to catch
  accidental serialization (e.g. overhead growing with the scenario
  count would blow far past it).
* **Regression gate** — the measurement compared against the
  ``cluster`` entry of the committed ``BENCH_kernel.json``.  Launch
  cost amortizes with campaign size, so
  :func:`repro.profile.compare_to_baseline` only compares overhead at
  matching shapes (points, sims per graph, shard count); quick-shape
  runs skip the comparison, exactly like the campaign gate.
  Shared-runner timing is noisy, so a regression only *warns* by
  default; set ``BENCH_STRICT=1`` to fail hard.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.profile import (
    SCHEMA_VERSION,
    bench_cluster_kernel,
    compare_to_baseline,
    load_baseline,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

QUICK = {"points": 24, "sims_per_graph": 2}


@pytest.mark.benchmark(group="cluster")
def test_coordinator_pays_bounded_overhead(benchmark):
    """Coordinator completes with identical rows at bounded overhead."""
    result = benchmark.pedantic(
        bench_cluster_kernel, kwargs=QUICK, rounds=1, iterations=1
    )
    print()
    print(
        f"cluster: {result['scenarios']} scenarios "
        f"{result['pool_s']:.3f}s single pool -> "
        f"{result['cluster_s']:.3f}s coordinated "
        f"({result['overhead']:.2f}x overhead, "
        f"{result['shards']} shards on {result['workers']} workers)"
    )
    # bench_cluster_kernel itself asserts rows identical and zero
    # deaths; here we pin the shape and bound the fixed-cost overhead.
    assert result["scenarios"] == QUICK["points"] * QUICK["sims_per_graph"]
    assert result["shards"] == 2 and result["workers"] == 2
    assert result["cluster_s"] > 0 and result["pool_s"] > 0
    # At 48 scenarios the subprocess launches dominate, so the ratio is
    # large but fixed; a coordinator that serialized the campaign or
    # spun on its poll loop would blow far past this.
    assert result["overhead"] < 30.0


@pytest.mark.benchmark(group="cluster")
def test_committed_cluster_gate(benchmark):
    """Quick cluster run vs BENCH_kernel.json; warns unless BENCH_STRICT."""
    baseline = load_baseline(BASELINE_PATH)
    assert baseline is not None, f"missing {BASELINE_PATH}"
    assert "cluster" in baseline, f"no cluster entry in {BASELINE_PATH}"
    # The committed entry must carry the acceptance evidence: a real
    # multi-shard full-shape run whose fault-tolerance tax stays small
    # enough to be worth paying on a single machine.
    committed = baseline["cluster"]
    assert committed["scenarios"] >= 400
    assert committed["shards"] >= 2
    assert committed["overhead"] <= 5.0
    cluster = benchmark.pedantic(
        bench_cluster_kernel, kwargs=QUICK, rounds=1, iterations=1
    )
    current = {"schema": SCHEMA_VERSION, "quick": True, "cluster": cluster}
    regressions = compare_to_baseline(current, baseline)
    for message in regressions:
        print(f"::warning::benchmark regression: {message}")
    if os.environ.get("BENCH_STRICT", "") not in ("", "0"):
        assert not regressions, "; ".join(regressions)

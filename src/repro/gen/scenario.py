"""End-to-end scenario generation for the evaluation harness.

Couples the random structure generators with deployment, validation,
and schedulability screening, retrying with fresh randomness when a
draw violates the paper's standing assumptions (every task schedulable,
path enumeration tractable).  The Fig. 6 harness consumes these
scenarios; examples and tests use them for realistic inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.gen.graphgen import (
    count_source_sink_paths,
    fusion_pipeline_graph,
    merged_chain_pair,
    random_cause_effect_graph,
    deploy,
)
from repro.gen.waters import ReleaseModelSampler
from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError


#: Child seeds span the full Mersenne-friendly 63-bit range.
SEED_RANGE = 2**63


def derive_seed(rng: random.Random) -> int:
    """Draw one independent child seed from ``rng``.

    Seeding hygiene: a consumer that needs its own random stream should
    receive ``random.Random(derive_seed(parent))`` rather than the
    parent generator itself.  The parent then advances by exactly one
    draw per child, no matter how much randomness the child consumes —
    so sibling scenarios stay statistically independent and their
    streams do not shift when an unrelated generation step changes how
    many draws it makes.
    """
    return rng.randrange(SEED_RANGE)


def derive_rng(rng: random.Random) -> random.Random:
    """A fresh generator seeded with one draw from ``rng``."""
    return random.Random(derive_seed(rng))


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the random-graph scenario generator."""

    n_ecus: int = 2
    use_bus: bool = True
    #: Graph family: ``"fusion"`` (automotive sensor-fusion pipelines,
    #: the default — see :func:`repro.gen.graphgen.fusion_pipeline_graph`
    #: for why) or ``"gnm"`` (the dense_gnm_random_graph construction
    #: the paper's text names).
    generator: str = "fusion"
    #: Edge factor of the ``"gnm"`` family (``m = edge_factor * n``).
    edge_factor: float = 1.5
    #: Skip graphs with more source-to-sink paths than this — explicit
    #: chain enumeration is quadratic in this count per task pair.
    max_paths: int = 256
    #: Retries before giving up on generating a valid scenario.
    max_attempts: int = 64
    #: Optional per-task release-model distribution (jittered/sporadic
    #: tasks); ``None`` keeps the paper's strictly periodic releases and
    #: leaves every random stream untouched.  Bus message tasks inserted
    #: by deployment always stay periodic (time-triggered frames).
    release_models: Optional[ReleaseModelSampler] = None


@dataclass(frozen=True)
class Scenario:
    """A generated, validated, deployed system ready for analysis."""

    system: System
    sink: str
    n_tasks_requested: int
    attempts: int


def _try_build(graph: CauseEffectGraph) -> Optional[System]:
    try:
        return System.build(graph)
    except ModelError:
        return None


def generate_random_scenario(
    n_tasks: int,
    rng: random.Random,
    config: ScenarioConfig = ScenarioConfig(),
) -> Scenario:
    """A random single-sink scenario with ``n_tasks`` tasks (Fig. 6 a/b).

    Retries (with fresh randomness from ``rng``) until the deployed
    graph is schedulable and its path count is tractable.
    """
    if config.generator not in ("fusion", "gnm"):
        raise ModelError(
            f"unknown generator {config.generator!r}; use 'fusion' or 'gnm'"
        )
    for attempt in range(1, config.max_attempts + 1):
        # One parent draw per attempt: rejected attempts advance the
        # parent stream by a fixed amount, keeping siblings independent.
        attempt_rng = derive_rng(rng)
        if config.generator == "fusion":
            graph = fusion_pipeline_graph(
                n_tasks, attempt_rng, release_models=config.release_models
            )
        else:
            graph = random_cause_effect_graph(
                n_tasks,
                attempt_rng,
                edge_factor=config.edge_factor,
                release_models=config.release_models,
            )
        sinks = graph.sinks()
        if len(sinks) != 1:
            continue
        sink = sinks[0]
        if count_source_sink_paths(graph, sink) > config.max_paths:
            continue
        deployed = deploy(
            graph, attempt_rng, n_ecus=config.n_ecus, use_bus=config.use_bus
        )
        system = _try_build(deployed)
        if system is None:
            continue
        # Deployment may add message tasks; the sink name is unchanged.
        return Scenario(
            system=system,
            sink=sink,
            n_tasks_requested=n_tasks,
            attempts=attempt,
        )
    raise ModelError(
        f"failed to generate a valid {n_tasks}-task scenario in "
        f"{config.max_attempts} attempts"
    )


def generate_merged_pair_scenario(
    tasks_per_chain: int,
    rng: random.Random,
    config: ScenarioConfig = ScenarioConfig(),
) -> Scenario:
    """A two-chains-merged-at-one-sink scenario (Fig. 6 c/d)."""
    for attempt in range(1, config.max_attempts + 1):
        attempt_rng = derive_rng(rng)
        graph = merged_chain_pair(
            tasks_per_chain, attempt_rng, release_models=config.release_models
        )
        deployed = deploy(
            graph, attempt_rng, n_ecus=config.n_ecus, use_bus=config.use_bus
        )
        system = _try_build(deployed)
        if system is None:
            continue
        return Scenario(
            system=system,
            sink="sink",
            n_tasks_requested=tasks_per_chain,
            attempts=attempt,
        )
    raise ModelError(
        f"failed to generate a valid merged-pair scenario "
        f"({tasks_per_chain} tasks/chain) in {config.max_attempts} attempts"
    )

"""Workload generation: WATERS 2015 parameters and random graphs."""

from repro.gen.graphgen import (
    chain_graph,
    count_source_sink_paths,
    deploy,
    from_networkx,
    merged_chain_pair,
    random_cause_effect_graph,
    random_dag_edges,
    to_networkx,
)
from repro.gen.scenario import (
    Scenario,
    ScenarioConfig,
    derive_rng,
    derive_seed,
    generate_merged_pair_scenario,
    generate_random_scenario,
)
from repro.gen.graphgen import fusion_pipeline_graph
from repro.gen.uunifast import (
    scale_to_utilization,
    uunifast,
    uunifast_periodic_taskset,
)
from repro.gen.waters import (
    ACET_US,
    BCET_FACTOR_RANGE,
    PERIOD_SHARE_PERCENT,
    PERIODS_MS,
    WCET_FACTOR_RANGE,
    ReleaseModelSampler,
    TaskParameters,
    WatersSampler,
    expected_utilization_per_task,
)

__all__ = [
    "fusion_pipeline_graph",
    "scale_to_utilization",
    "uunifast",
    "uunifast_periodic_taskset",
    "chain_graph",
    "count_source_sink_paths",
    "deploy",
    "from_networkx",
    "merged_chain_pair",
    "random_cause_effect_graph",
    "random_dag_edges",
    "to_networkx",
    "Scenario",
    "ScenarioConfig",
    "derive_rng",
    "derive_seed",
    "generate_merged_pair_scenario",
    "generate_random_scenario",
    "ACET_US",
    "BCET_FACTOR_RANGE",
    "PERIOD_SHARE_PERCENT",
    "PERIODS_MS",
    "WCET_FACTOR_RANGE",
    "ReleaseModelSampler",
    "TaskParameters",
    "WatersSampler",
    "expected_utilization_per_task",
]

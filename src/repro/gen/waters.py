"""WATERS 2015 automotive benchmark parameters (Kramer et al.).

The paper's evaluation generates tasks "by using the synthesized
automotive task sets presented by Kramer et al. in WATERS challenge
2015" ("Real World Automotive Benchmarks For Free"):

* **Table III** — the share of runnables per activation period.  The
  paper restricts periods to the subset {1, 2, 5, 10, 20, 50, 100,
  200} ms; the angle-synchronous, ISR and 1000 ms classes are folded
  out and the remaining shares renormalized.
* **Table IV** — average-case execution time (ACET) per period class,
  in microseconds.
* **Table V** — per-period uniform ranges for the *best-case* factor
  ``f_bc`` (``BCET = f_bc * ACET``) and *worst-case* factor ``f_wc``
  (``WCET = f_wc * ACET``).

All values below are transcribed from the published benchmark tables;
each row is annotated with its period class.  The sampled BCET/WCET are
converted to integer nanoseconds at the boundary (see
:mod:`repro.units`).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Tuple

from repro.model.task import PERIODIC_RELEASE, ModelError, ReleaseModel
from repro.units import Time, ms, us

#: Periods used by the paper's evaluation, in milliseconds.
PERIODS_MS: Tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200)

#: WATERS Table III — share of runnables per period (periodic classes
#: only; angle-synchronous, ISR and sporadic classes excluded as in the
#: paper).  Keys are periods in ms, values the published percentages.
PERIOD_SHARE_PERCENT: Dict[int, float] = {
    1: 3.0,
    2: 2.0,
    5: 2.0,
    10: 25.0,
    20: 25.0,
    50: 3.0,
    100: 20.0,
    200: 1.0,
}

#: WATERS Table IV — average ACET per period class, in microseconds.
ACET_US: Dict[int, float] = {
    1: 5.00,
    2: 4.20,
    5: 11.04,
    10: 10.09,
    20: 8.74,
    50: 17.56,
    100: 10.53,
    200: 2.56,
}

#: WATERS Table V — uniform range of the best-case factor f_bc per
#: period class (BCET = f_bc * ACET).
BCET_FACTOR_RANGE: Dict[int, Tuple[float, float]] = {
    1: (0.19, 0.92),
    2: (0.12, 0.89),
    5: (0.17, 0.94),
    10: (0.05, 0.99),
    20: (0.11, 0.98),
    50: (0.32, 0.95),
    100: (0.09, 0.99),
    200: (0.45, 0.98),
}

#: WATERS Table V — uniform range of the worst-case factor f_wc per
#: period class (WCET = f_wc * ACET).
WCET_FACTOR_RANGE: Dict[int, Tuple[float, float]] = {
    1: (1.30, 29.11),
    2: (1.54, 19.04),
    5: (1.13, 18.44),
    10: (1.06, 30.03),
    20: (1.06, 15.61),
    50: (1.13, 7.76),
    100: (1.02, 8.88),
    200: (1.03, 4.90),
}


@dataclass(frozen=True)
class ReleaseModelSampler:
    """Distribution over per-task release models.

    The WATERS benchmark's excluded activation classes (sporadic and
    angle-synchronous runnables) motivate evaluating the simulator
    beyond the paper's strictly periodic model.  A sampler assigns each
    task, independently:

    * with probability ``sporadic_fraction`` — sporadic releases with
      inter-arrivals uniform in ``[sporadic_gap[0] * T,
      sporadic_gap[1] * T]`` (``T`` the task's nominal period);
    * with probability ``jitter_fraction`` — bounded release jitter of
      ``round(jitter_scale * T)``, clamped to ``[1, T - 1]``;
    * otherwise — the paper's strictly periodic releases.

    The two fractions must sum to at most 1.  A sampler with both
    fractions zero draws **nothing** from the generator, so enabling
    the mechanism does not shift any existing random stream.
    """

    jitter_fraction: float = 0.0
    jitter_scale: float = 0.1
    sporadic_fraction: float = 0.0
    sporadic_gap: Tuple[float, float] = (1.0, 2.0)

    def __post_init__(self) -> None:
        for name in ("jitter_fraction", "sporadic_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must lie in [0, 1], got {value}")
        if self.jitter_fraction + self.sporadic_fraction > 1.0:
            raise ModelError(
                "jitter_fraction + sporadic_fraction must not exceed 1, "
                f"got {self.jitter_fraction} + {self.sporadic_fraction}"
            )
        if not 0.0 < self.jitter_scale < 1.0:
            raise ModelError(
                f"jitter_scale must lie in (0, 1), got {self.jitter_scale}"
            )
        lo, hi = self.sporadic_gap
        if lo <= 0.0 or hi < lo:
            raise ModelError(
                f"sporadic_gap must satisfy 0 < lo <= hi, got {self.sporadic_gap}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when every sample is periodic (and draws nothing)."""
        return self.jitter_fraction == 0.0 and self.sporadic_fraction == 0.0

    def sample(self, period: Time, rng: random.Random) -> ReleaseModel:
        """Draw one task's release model (one ``rng`` draw, or none)."""
        if self.is_trivial:
            return PERIODIC_RELEASE
        u = rng.random()
        if u < self.sporadic_fraction:
            lo = max(1, round(self.sporadic_gap[0] * period))
            hi = max(lo, round(self.sporadic_gap[1] * period))
            return ReleaseModel.sporadic(lo, hi)
        if u < self.sporadic_fraction + self.jitter_fraction:
            jitter = min(period - 1, max(1, round(self.jitter_scale * period)))
            if jitter <= 0:  # period == 1 leaves no room for jitter
                return PERIODIC_RELEASE
            return ReleaseModel.jittered(jitter)
        return PERIODIC_RELEASE


@dataclass(frozen=True)
class TaskParameters:
    """Sampled timing parameters of one WATERS task."""

    period: Time
    bcet: Time
    wcet: Time
    acet_us: float
    release_model: ReleaseModel = PERIODIC_RELEASE


class WatersSampler:
    """Samples task parameters following the WATERS 2015 distributions.

    Deterministic given its ``random.Random``; the period distribution
    is the renormalized Table III restricted to :data:`PERIODS_MS`, and
    the execution-time factors are uniform in the Table V ranges.

    ``release_models`` optionally attaches a
    :class:`ReleaseModelSampler` so sampled tasks carry jittered or
    sporadic release models; the default (``None``) keeps every task
    strictly periodic and consumes no extra randomness.
    """

    def __init__(
        self,
        rng: random.Random,
        release_models: "ReleaseModelSampler | None" = None,
    ) -> None:
        self._rng = rng
        self._release_models = release_models
        weights = [PERIOD_SHARE_PERCENT[p] for p in PERIODS_MS]
        total = sum(weights)
        self._cumulative: List[float] = list(
            accumulate(w / total for w in weights)
        )
        # Guard against float accumulation leaving the last bucket at
        # 0.9999...; the final entry must cover the whole unit interval.
        self._cumulative[-1] = 1.0

    def sample_period_ms(self) -> int:
        """Draw a period class (ms) from the Table III distribution."""
        u = self._rng.random()
        index = bisect_right(self._cumulative, u)
        return PERIODS_MS[min(index, len(PERIODS_MS) - 1)]

    def sample_parameters(self, period_ms: int | None = None) -> TaskParameters:
        """Draw one task's ``(T, B, W)`` tuple.

        Args:
            period_ms: Fix the period class instead of sampling it
                (used when a scenario pins periods, e.g. Fig. 4's
                example).
        """
        if period_ms is None:
            period_ms = self.sample_period_ms()
        if period_ms not in ACET_US:
            raise ModelError(
                f"period {period_ms}ms is not a WATERS period class "
                f"{sorted(ACET_US)}"
            )
        acet = ACET_US[period_ms]
        f_bc = self._rng.uniform(*BCET_FACTOR_RANGE[period_ms])
        f_wc = self._rng.uniform(*WCET_FACTOR_RANGE[period_ms])
        bcet = us(f_bc * acet)
        wcet = us(f_wc * acet)
        # Rounding to integer ns can only invert the order when both are
        # sub-nanosecond, which WATERS values never are; still, clamp.
        if bcet > wcet:
            bcet = wcet
        period = ms(period_ms)
        release = PERIODIC_RELEASE
        if self._release_models is not None:
            release = self._release_models.sample(period, self._rng)
        return TaskParameters(
            period=period,
            bcet=bcet,
            wcet=wcet,
            acet_us=acet,
            release_model=release,
        )

    def sample_many(self, count: int) -> List[TaskParameters]:
        """Draw ``count`` independent parameter tuples."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        return [self.sample_parameters() for _ in range(count)]


def expected_utilization_per_task() -> float:
    """Average single-task utilization implied by the tables.

    Useful as a sanity check: WATERS workloads are execution-light
    (microsecond ACETs against millisecond periods), so even 35-task
    systems fit comfortably on a couple of ECUs — matching the paper's
    standing schedulability assumption.
    """
    total_share = sum(PERIOD_SHARE_PERCENT[p] for p in PERIODS_MS)
    expected = 0.0
    for period_ms in PERIODS_MS:
        share = PERIOD_SHARE_PERCENT[period_ms] / total_share
        f_wc_mid = sum(WCET_FACTOR_RANGE[period_ms]) / 2
        wcet_us = f_wc_mid * ACET_US[period_ms]
        expected += share * (wcet_us / (period_ms * 1000.0))
    return expected

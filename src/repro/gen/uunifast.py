"""UUniFast task-set synthesis (extension substrate).

The WATERS generator fixes execution times by period class, which pins
the per-unit utilization to a few percent — realistic for automotive
runnables but useless for studying how the disparity bounds behave as
the processor *load* grows (response times blow up near saturation,
and every ``R`` term in Lemma 4 with them).  UUniFast (Bini & Buttazzo,
"Measuring the performance of schedulability tests", 2005) draws
``n`` task utilizations uniformly over the simplex summing to ``U``;
combined with WATERS periods it yields load-controlled workloads.

``scale_to_utilization`` alternatively rescales an existing graph's
execution times to hit a target per-unit utilization, preserving the
structure — the form the utilization-sweep ablation uses.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.gen.waters import WatersSampler
from repro.model.graph import CauseEffectGraph
from repro.model.task import ModelError, Task
from repro.units import ms


def uunifast(n: int, total_utilization: float, rng: random.Random) -> List[float]:
    """Draw ``n`` utilizations uniformly on the simplex summing to ``U``.

    The classic recurrence: ``sum_i = U``, then repeatedly split off
    ``sum_{i+1} = sum_i * u^(1/(n-i))`` with ``u`` uniform.
    """
    if n < 1:
        raise ModelError(f"n must be >= 1, got {n}")
    if total_utilization <= 0:
        raise ModelError(
            f"total utilization must be positive, got {total_utilization}"
        )
    utilizations: List[float] = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def scale_to_utilization(
    graph: CauseEffectGraph,
    target_per_unit: float,
    *,
    bcet_fraction: float = 0.25,
) -> CauseEffectGraph:
    """Rescale execution times so each unit hits a target utilization.

    Structure, periods, mapping, and priorities are preserved; every
    non-source task's WCET is scaled by its unit's common factor (so
    relative weights stay WATERS-shaped) and BCET is set to
    ``bcet_fraction * WCET``.  Tasks whose scaled WCET would exceed
    their period are clamped to the period (the caller's
    schedulability validation then decides).
    """
    if not 0 < target_per_unit <= 1.0:
        raise ModelError(
            f"target utilization must be in (0, 1], got {target_per_unit}"
        )
    if not 0 < bcet_fraction <= 1.0:
        raise ModelError(
            f"bcet_fraction must be in (0, 1], got {bcet_fraction}"
        )
    current: Dict[str, float] = {}
    for task in graph.tasks:
        if task.is_instantaneous or task.ecu is None:
            continue
        current[task.ecu] = current.get(task.ecu, 0.0) + task.utilization
    scaled = graph.copy()
    for task in graph.tasks:
        if task.is_instantaneous or task.ecu is None:
            continue
        unit_utilization = current[task.ecu]
        if unit_utilization <= 0:
            continue
        factor = target_per_unit / unit_utilization
        wcet = min(task.period, max(1, round(task.wcet * factor)))
        bcet = max(1, round(wcet * bcet_fraction))
        scaled.replace_task(
            Task(
                name=task.name,
                period=task.period,
                wcet=wcet,
                bcet=min(bcet, wcet),
                ecu=task.ecu,
                priority=task.priority,
                offset=task.offset,
                kind=task.kind,
            )
        )
    return scaled


def uunifast_periodic_taskset(
    n: int,
    total_utilization: float,
    rng: random.Random,
    *,
    ecu: str = "ecu0",
    bcet_fraction: float = 0.25,
) -> List[Task]:
    """A flat UUniFast task set with WATERS periods (no graph edges).

    Useful for pure schedulability studies of the response-time
    analysis; the cause-effect experiments use
    :func:`scale_to_utilization` instead.
    """
    utilizations = uunifast(n, total_utilization, rng)
    sampler = WatersSampler(rng)
    tasks: List[Task] = []
    for index, utilization in enumerate(utilizations):
        period = ms(sampler.sample_period_ms())
        wcet = min(period, max(1, round(utilization * period)))
        bcet = max(1, round(wcet * bcet_fraction))
        tasks.append(
            Task(
                name=f"u{index}",
                period=period,
                wcet=wcet,
                bcet=min(bcet, wcet),
                ecu=ecu,
                priority=index,
            )
        )
    # Rate-monotonic priorities keep the set plausible.
    ordered = sorted(tasks, key=lambda t: (t.period, t.name))
    return [task.with_priority(level) for level, task in enumerate(ordered)]

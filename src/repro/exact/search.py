"""Offset search: a stronger empirical lower bound on disparity.

The paper's ``Sim`` series draws release offsets uniformly at random —
a weak explorer of the worst case, since the worst alignment of a long
chain needs many per-hop coincidences.  This module searches the offset
space directly: the objective is the (deterministic) steady-state
disparity of :mod:`repro.exact.hyperperiod`, and the optimizer is a
seeded multi-start coordinate ascent — for each task in turn, try a
handful of candidate offsets and keep the best.

The result is still a *lower* bound on the true worst case (execution
times are pinned to WCET during the search), but a substantially
tighter one than random draws, which narrows the measured gap to the
analytical upper bounds (see ``benchmarks/test_bench_offset_search.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exact.hyperperiod import steady_state_disparity
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.exec_time import ExecTimePolicy, wcet_policy
from repro.units import Time


@dataclass(frozen=True)
class OffsetSearchResult:
    """Best offsets found and the disparity they exhibit."""

    offsets: Dict[str, Time]
    disparity: Time
    evaluations: int


def _apply_offsets(system: System, offsets: Dict[str, Time]) -> System:
    graph = system.graph.copy()
    for name, offset in offsets.items():
        graph.replace_task(graph.task(name).with_offset(offset))
    return System(graph=graph, response_times=system.response_times)


def _random_offsets(system: System, rng: random.Random) -> Dict[str, Time]:
    return {
        task.name: rng.randint(1, task.period) for task in system.graph.tasks
    }


def maximize_disparity_offsets(
    system: System,
    task: str,
    rng: random.Random,
    *,
    restarts: int = 3,
    sweeps: int = 2,
    candidates_per_task: int = 4,
    policy: ExecTimePolicy = wcet_policy,
    max_windows: int = 4,
) -> OffsetSearchResult:
    """Coordinate-ascent search for offsets maximizing the disparity.

    Args:
        system: The analyzed system (offsets in it are ignored).
        task: Task whose disparity is maximized.
        rng: Randomness for restarts and candidate offsets.
        restarts: Independent random starting points.
        sweeps: Coordinate-ascent passes over all tasks per restart.
        candidates_per_task: Offsets tried per task per pass.
        policy: Deterministic execution-time policy for the objective.
        max_windows: Steady-state detection budget per evaluation.
    """
    if restarts < 1 or sweeps < 1 or candidates_per_task < 1:
        raise ModelError("restarts, sweeps and candidates_per_task must be >= 1")
    evaluations = 0

    def objective(offsets: Dict[str, Time]) -> Time:
        nonlocal evaluations
        evaluations += 1
        return steady_state_disparity(
            _apply_offsets(system, offsets),
            task,
            policy=policy,
            max_windows=max_windows,
        ).disparity

    task_names = [t.name for t in system.graph.tasks]
    best_offsets: Optional[Dict[str, Time]] = None
    best_value: Time = -1

    for _restart in range(restarts):
        offsets = _random_offsets(system, rng)
        value = objective(offsets)
        for _sweep in range(sweeps):
            improved = False
            order = list(task_names)
            rng.shuffle(order)
            for name in order:
                period = system.graph.task(name).period
                for _ in range(candidates_per_task):
                    candidate = dict(offsets)
                    candidate[name] = rng.randint(1, period)
                    candidate_value = objective(candidate)
                    if candidate_value > value:
                        offsets, value = candidate, candidate_value
                        improved = True
            if not improved:
                break
        if value > best_value:
            best_offsets, best_value = offsets, value

    assert best_offsets is not None
    return OffsetSearchResult(
        offsets=best_offsets, disparity=best_value, evaluations=evaluations
    )

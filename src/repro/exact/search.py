"""Offset search: a stronger empirical lower bound on disparity.

The paper's ``Sim`` series draws release offsets uniformly at random —
a weak explorer of the worst case, since the worst alignment of a long
chain needs many per-hop coincidences.  This module searches the offset
space directly: the objective is the (deterministic) steady-state
disparity of :mod:`repro.exact.hyperperiod`, and the optimizer is a
seeded multi-start coordinate ascent — for each task in turn, try a
handful of candidate offsets and keep the best.

Two structural properties make the search fast and parallel:

* **Compiled objective.** Every evaluation re-simulates the same
  system with nothing but the offset vector changed — exactly the
  shape :class:`repro.sim.batch.CompiledScenario` amortizes.  The
  scenario is compiled once per restart and each candidate becomes a
  cheap offset-delta view (:meth:`CompiledScenario.with_offsets`): the
  precomputed release-stream tables are rebased by vector shift and
  the steady-state probe runs through the compiled replication loop
  (results are pinned equal to
  :func:`~repro.exact.hyperperiod.steady_state_disparity`); systems
  the compiled loop cannot handle fall back to the reference
  implementation per evaluation.

* **Independent restarts.** Each restart runs from its own seed,
  derived up front from the caller's ``rng``, so restarts can fan out
  across :class:`repro.parallel.PoolRunner` workers and the result is
  bit-identical for any ``jobs`` value.  Restart costs are highly
  heterogeneous (early termination, fallback evaluations), which is
  exactly what the pool's adaptive chunk resizing absorbs: observed
  restart timings shrink or grow the chunks in flight so no worker
  idles behind one slow restart.  Within a sweep, the candidate
  offsets of one task are drawn as a batch before any is evaluated and
  acceptance is replayed as a running max afterwards — equivalent to
  the serial draw-then-test loop, with every evaluation of the batch
  independent.

The result is still a *lower* bound on the true worst case (execution
times are pinned to WCET during the search), but a substantially
tighter one than random draws, which narrows the measured gap to the
analytical upper bounds (see ``benchmarks/test_bench_offset_search.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, Optional, Tuple

from repro.exact.hyperperiod import steady_state_disparity
from repro.model.system import System
from repro.model.task import ModelError
from repro.parallel.engine import PoolRunner
from repro.sim.batch import CompiledScenario
from repro.sim.exec_time import ExecTimePolicy, wcet_policy
from repro.units import Time


@dataclass(frozen=True)
class OffsetSearchResult:
    """Best offsets found and the disparity they exhibit."""

    offsets: Dict[str, Time]
    disparity: Time
    evaluations: int


def _apply_offsets(system: System, offsets: Dict[str, Time]) -> System:
    graph = system.graph.copy()
    for name, offset in offsets.items():
        graph.replace_task(graph.task(name).with_offset(offset))
    return System(graph=graph, response_times=system.response_times)


def _random_offsets(system: System, rng: random.Random) -> Dict[str, Time]:
    return {
        task.name: rng.randint(1, task.period) for task in system.graph.tasks
    }


class _CompiledObjective:
    """The steady-state objective, evaluated on a compiled scenario.

    Replays :func:`~repro.exact.hyperperiod.steady_state_disparity`
    (seed 0, implicit semantics) with everything offset-independent
    hoisted out of the per-evaluation path: the hyperperiod, the
    offset-free part of the warmup horizon, and the response-time gate
    of the two-window convergence probe.  Ineligible scenarios (see
    :attr:`CompiledScenario.ineligible_reason`) evaluate through the
    reference implementation instead, so results never depend on
    eligibility.
    """

    def __init__(
        self,
        system: System,
        task: str,
        policy: ExecTimePolicy,
        max_windows: int,
    ) -> None:
        self.system = system
        self.task = task
        self.policy = policy
        self.max_windows = max_windows
        self.compiled = CompiledScenario(system, task)
        graph = system.graph
        self.order = [t.name for t in graph.tasks]
        self.hyperperiod = graph.hyperperiod()
        # warmup_horizon(system) minus its max-offset term; offsets
        # are the search variables, the rest is fixed per system.
        self.warmup_base = 2 * sum(t.period for t in graph.tasks) + sum(
            (channel.capacity - 1) * graph.task(channel.src).period
            for channel in graph.channels
        )
        self.probe_ok = max_windows >= 3 and all(
            system.R(t.name) <= self.hyperperiod for t in graph.tasks
        )

    def value(self, offsets: Dict[str, Time]) -> Time:
        if not self.compiled.eligible:
            return steady_state_disparity(
                _apply_offsets(self.system, offsets),
                self.task,
                policy=self.policy,
                max_windows=self.max_windows,
            ).disparity
        # One candidate = one offset-delta view of the shared compiled
        # tables; the release grid is rebased by vector shift instead
        # of being regenerated per evaluation (candidates are drawn in
        # [1, T], so the view always takes the delta-replay path).
        # Deterministic-policy schedules are memoized on the scenario,
        # so re-drawn duplicate candidates replay for free.
        view = self.compiled.edit(offsets=offsets)
        horizon = self.hyperperiod
        warmup = max(offsets.values()) + self.warmup_base
        if self.probe_ok:
            first = view.windowed_maxima(
                warmup + 3 * horizon,
                warmup,
                horizon,
                2,
                policy=self.policy,
            )
            if first[0] == first[1]:
                return first[1]
        count = self.max_windows
        values = view.windowed_maxima(
            warmup + count * horizon,
            warmup,
            horizon,
            count,
            policy=self.policy,
        )
        for index in range(1, count):
            if values[index] == values[index - 1]:
                return values[index]
        return max(values)


def _run_restart(
    seed: int,
    *,
    system: System,
    task: str,
    sweeps: int,
    candidates_per_task: int,
    policy: ExecTimePolicy,
    max_windows: int,
) -> Tuple[Dict[str, Time], Time, int]:
    """One coordinate-ascent restart from its own derived seed.

    Top-level (hence picklable) so restarts can run in pool workers;
    the scenario is compiled inside the worker, never shipped.
    Returns ``(best offsets, best value, evaluations)``.
    """
    rng = random.Random(seed)
    objective = _CompiledObjective(system, task, policy, max_windows)
    evaluations = 1
    offsets = _random_offsets(system, rng)
    value = objective.value(offsets)
    for _sweep in range(sweeps):
        improved = False
        order = list(objective.order)
        rng.shuffle(order)
        for name in order:
            period = system.graph.task(name).period
            # Draw the task's whole candidate batch before evaluating
            # any of it (every candidate replaces only ``name``, so
            # acceptance cannot change later candidates), then replay
            # the serial running-max acceptance over the batch.
            draws = [
                rng.randint(1, period) for _ in range(candidates_per_task)
            ]
            batch_values = [
                objective.value({**offsets, name: off}) for off in draws
            ]
            evaluations += len(draws)
            for off, candidate_value in zip(draws, batch_values):
                if candidate_value > value:
                    offsets = {**offsets, name: off}
                    value = candidate_value
                    improved = True
        if not improved:
            break
    return offsets, value, evaluations


def maximize_disparity_offsets(
    system: System,
    task: str,
    rng: random.Random,
    *,
    restarts: int = 3,
    sweeps: int = 2,
    candidates_per_task: int = 4,
    policy: ExecTimePolicy = wcet_policy,
    max_windows: int = 4,
    jobs: int = 1,
) -> OffsetSearchResult:
    """Coordinate-ascent search for offsets maximizing the disparity.

    Restarts are independent (each gets a seed derived up front from
    ``rng``) and run across ``jobs`` worker processes; the result is
    identical for any ``jobs`` value.

    Args:
        system: The analyzed system (offsets in it are ignored).
        task: Task whose disparity is maximized.
        rng: Randomness source; consumed only to derive one seed per
            restart.
        restarts: Independent random starting points.
        sweeps: Coordinate-ascent passes over all tasks per restart.
        candidates_per_task: Offsets tried per task per pass.
        policy: Deterministic execution-time policy for the objective.
        max_windows: Steady-state detection budget per evaluation.
        jobs: Worker processes for the restarts (1 = inline serial;
            0/None = all CPUs, as in the CLI).
    """
    if restarts < 1 or sweeps < 1 or candidates_per_task < 1:
        raise ModelError("restarts, sweeps and candidates_per_task must be >= 1")
    if max_windows < 2:
        raise ModelError(f"max_windows must be >= 2, got {max_windows}")
    restart_seeds = [rng.randrange(2**31) for _ in range(restarts)]
    worker = partial(
        _run_restart,
        system=system,
        task=task,
        sweeps=sweeps,
        candidates_per_task=candidates_per_task,
        policy=policy,
        max_windows=max_windows,
    )
    with PoolRunner(jobs) as runner:
        results, _stats = runner.map_ordered(worker, restart_seeds)

    best_offsets: Optional[Dict[str, Time]] = None
    best_value: Time = -1
    evaluations = 0
    for offsets, value, restart_evals in results:
        evaluations += restart_evals
        if value > best_value:
            best_offsets, best_value = offsets, value

    assert best_offsets is not None
    return OffsetSearchResult(
        offsets=best_offsets, disparity=best_value, evaluations=evaluations
    )

"""Exhaustive offset-space verification for small systems.

For a *small* system, the disparity-relevant behaviour is determined by
the release offsets (mod periods) and the execution times.  Fixing a
deterministic execution-time policy and sweeping offsets over a grid
covering each task's period yields the **exact maximum** steady-state
disparity over that grid — ground truth to measure how tight the
analytical bounds really are, and a brutal regression test for the
whole stack (any unsound bound shows up as grid point above it).

The grid is exponential in the task count — intended for systems of up
to ~5 tasks with coarse steps.  :func:`grid_size` lets callers check
the cost before committing.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List

from repro.exact.hyperperiod import steady_state_disparity
from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.exec_time import ExecTimePolicy, wcet_policy
from repro.units import Time


@dataclass(frozen=True)
class ExhaustiveResult:
    """Exact grid maximum and the witnessing offsets."""

    disparity: Time
    offsets: Dict[str, Time]
    points_evaluated: int
    all_converged: bool


def _offset_grid(period: Time, steps: int) -> List[Time]:
    """``steps`` offsets spread uniformly over ``[0, period)``."""
    return [period * k // steps for k in range(steps)]


def grid_size(system: System, steps: int) -> int:
    """Number of offset combinations a sweep would evaluate."""
    size = 1
    for _task in system.graph.tasks:
        size *= steps
    return size


def exhaustive_offset_disparity(
    system: System,
    task: str,
    *,
    steps: int = 4,
    policy: ExecTimePolicy = wcet_policy,
    max_points: int = 4096,
    max_windows: int = 6,
) -> ExhaustiveResult:
    """Exact maximum steady-state disparity over the offset grid.

    Args:
        system: The analyzed system (its own offsets are ignored).
        task: Task whose disparity is maximized.
        steps: Grid resolution per task (offsets at ``k*T/steps``).
        policy: Deterministic execution-time policy.
        max_points: Hard cap on grid size; exceeding it raises instead
            of silently running for hours.
        max_windows: Steady-state detection budget per point.
    """
    if steps < 1:
        raise ModelError(f"steps must be >= 1, got {steps}")
    total = grid_size(system, steps)
    if total > max_points:
        raise ModelError(
            f"offset grid has {total} points (> max_points={max_points}); "
            f"reduce steps or use the coordinate search instead"
        )
    names = [t.name for t in system.graph.tasks]
    grids = [_offset_grid(system.T(name), steps) for name in names]

    best: Time = -1
    best_offsets: Dict[str, Time] = {}
    evaluated = 0
    all_converged = True
    for combo in product(*grids):
        offsets = dict(zip(names, combo))
        graph = system.graph.copy()
        for name, offset in offsets.items():
            graph.replace_task(graph.task(name).with_offset(offset))
        variant = System(graph=graph, response_times=system.response_times)
        result = steady_state_disparity(
            variant, task, policy=policy, max_windows=max_windows
        )
        evaluated += 1
        all_converged = all_converged and result.converged
        if result.disparity > best:
            best = result.disparity
            best_offsets = offsets
    return ExhaustiveResult(
        disparity=best,
        offsets=best_offsets,
        points_evaluated=evaluated,
        all_converged=all_converged,
    )

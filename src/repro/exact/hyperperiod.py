"""Steady-state disparity of a fully determined system (extension).

With fixed release offsets and a *deterministic* execution-time policy
(e.g. every job at WCET), a schedulable periodic system reaches a
steady state in which its behaviour repeats with the hyperperiod ``H``
(the channel contents, ready queues, and token ages all become
periodic).  The maximum disparity observed over one steady-state
hyperperiod is then the *exact* worst-case disparity of that concrete
system — not a bound, not a sample.

:func:`steady_state_disparity` simulates window after window of length
``H`` and returns once two consecutive windows agree (with a cap); the
result is flagged ``converged``.  This machinery gives the offset
search of :mod:`repro.exact.search` a well-defined objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.engine import Job, Observer, Simulator
from repro.sim.exec_time import ExecTimePolicy, wcet_policy
from repro.sim.provenance import Token, disparity_of
from repro.units import Time


class _WindowedDisparity(Observer):
    """Max disparity of one task per consecutive time window."""

    def __init__(self, task: str, window: Time, start: Time) -> None:
        self._task = task
        self._window = window
        self._start = start
        self.per_window: Dict[int, Time] = {}

    def on_job_complete(self, job: Job, token: Token) -> None:
        if job.task.name != self._task or job.release < self._start:
            return
        disparity = disparity_of(token.provenance)
        if disparity is None:
            return
        index = (job.release - self._start) // self._window
        if disparity > self.per_window.get(index, -1):
            self.per_window[index] = disparity

    @property
    def interested_tasks(self) -> frozenset:
        """Only the measured task (engine fast-path dispatch filter)."""
        return frozenset((self._task,))


@dataclass(frozen=True)
class SteadyStateResult:
    """Outcome of the steady-state measurement."""

    disparity: Time
    converged: bool
    windows_used: int
    hyperperiod: Time


def warmup_horizon(system: System) -> Time:
    """A horizon after which the pipeline is plausibly in steady state.

    Covers the largest offset, the deepest chain's propagation (two
    producer periods per hop is the LET/implicit worst case), and the
    fill time of every FIFO.
    """
    graph = system.graph
    max_offset = max((task.offset for task in graph.tasks), default=0)
    # Longest path propagation: bounded by 2*sum of all periods along
    # the deepest chain; bounded above by 2*sum over all tasks.
    propagation = 2 * sum(task.period for task in graph.tasks)
    fill = sum(
        (channel.capacity - 1) * graph.task(channel.src).period
        for channel in graph.channels
    )
    return max_offset + propagation + fill


def _window_values(
    system: System,
    task: str,
    *,
    policy: ExecTimePolicy,
    seed: int,
    semantics: str,
    warmup: Time,
    hyperperiod: Time,
    horizon_windows: int,
    count: int,
) -> List[Time]:
    """Per-hyperperiod maxima of the first ``count`` windows.

    Simulates ``warmup + horizon_windows * H``; windows beyond the
    horizon (or without any completed sample) read as 0, matching the
    historical behaviour of the single-shot measurement.
    """
    monitor = _WindowedDisparity(task, hyperperiod, warmup)
    Simulator(
        system,
        warmup + horizon_windows * hyperperiod,
        seed=seed,
        policy=policy,
        observers=[monitor],
        semantics=semantics,
    ).run()
    return [monitor.per_window.get(i, 0) for i in range(count)]


def steady_state_disparity(
    system: System,
    task: str,
    *,
    policy: ExecTimePolicy = wcet_policy,
    seed: int = 0,
    max_windows: int = 8,
    semantics: str = "implicit",
) -> SteadyStateResult:
    """Exact steady-state disparity under a deterministic policy.

    Simulates ``warmup + k*H`` and returns the per-hyperperiod maximum
    once two consecutive windows agree.  With a *randomized* policy
    the result is still a valid observed lower bound, but the
    ``converged`` flag loses its exactness meaning.
    """
    if max_windows < 2:
        raise ModelError(f"max_windows must be >= 2, got {max_windows}")
    hyperperiod = system.graph.hyperperiod()
    warmup = warmup_horizon(system)

    # Early exit: convergence is decided by the *first two* windows
    # agreeing, so when every response-time bound fits inside one
    # hyperperiod a ``warmup + 3H`` prefix already contains every
    # completion of a job released in those two windows — the probe
    # values are exactly the values the full horizon would yield, and
    # the (typical) converging case never pays for ``max_windows``
    # hyperperiods.  The gate needs ``max_windows >= 3`` so the probe
    # horizon never exceeds the full one with different window values.
    if max_windows >= 3 and all(
        system.R(t.name) <= hyperperiod for t in system.graph.tasks
    ):
        first = _window_values(
            system,
            task,
            policy=policy,
            seed=seed,
            semantics=semantics,
            warmup=warmup,
            hyperperiod=hyperperiod,
            horizon_windows=3,
            count=2,
        )
        if first[0] == first[1]:
            return SteadyStateResult(
                disparity=first[1],
                converged=True,
                windows_used=2,
                hyperperiod=hyperperiod,
            )

    values = _window_values(
        system,
        task,
        policy=policy,
        seed=seed,
        semantics=semantics,
        warmup=warmup,
        hyperperiod=hyperperiod,
        horizon_windows=max_windows,
        count=max_windows,
    )
    for index in range(1, max_windows):
        if values[index] == values[index - 1]:
            return SteadyStateResult(
                disparity=values[index],
                converged=True,
                windows_used=index + 1,
                hyperperiod=hyperperiod,
            )
    return SteadyStateResult(
        disparity=max(values),
        converged=False,
        windows_used=max_windows,
        hyperperiod=hyperperiod,
    )

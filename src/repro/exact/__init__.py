"""Exact steady-state measurement and offset search (extension)."""

from repro.exact.exhaustive import (
    ExhaustiveResult,
    exhaustive_offset_disparity,
    grid_size,
)
from repro.exact.hyperperiod import (
    SteadyStateResult,
    steady_state_disparity,
    warmup_horizon,
)
from repro.exact.search import OffsetSearchResult, maximize_disparity_offsets

__all__ = [
    "ExhaustiveResult",
    "exhaustive_offset_disparity",
    "grid_size",
    "SteadyStateResult",
    "steady_state_disparity",
    "warmup_horizon",
    "OffsetSearchResult",
    "maximize_disparity_offsets",
]

"""Append-only JSONL persistence for campaign runs.

A campaign's progress is one JSONL file: a header line naming the
format and the fingerprint of ``(part, config)``, then one record per
completed unit.  Appends are **O(1)** — a single newline-terminated
``os.write`` per record, never a rewrite of what came before — so
checkpoint cost no longer grows with campaign size, and a kill at any
byte leaves every previously written record intact.

Crash tolerance is structural: :class:`JsonlLog.load` scans line by
line and remembers the offset after the last *complete, parseable*
line; a torn final line (the one the kill interrupted) is skipped on
read and truncated away before the next append, so the log never
accumulates garbage.  A fingerprint mismatch or an unrecognized header
(including the pre-JSONL whole-file JSON format) simply yields an empty
log that the first append rewrites fresh.

:class:`CampaignCheckpoint` keeps its point-level API (``load`` /
``completed`` / ``record`` / ``clear``) on top of :class:`JsonlLog`;
the shard runner (:mod:`repro.parallel.shard`) reuses the same log
class so a shard's output file doubles as its own resume log.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

#: Format tag of campaign checkpoint headers.
CHECKPOINT_FORMAT = "repro-campaign-jsonl/1"


def config_fingerprint(part: str, config) -> str:
    """Stable digest of one campaign's identity.

    Frozen-dataclass ``repr`` covers every field deterministically, so
    any change to the preset (X grid, seeds, durations, scenario knobs,
    semantics) changes the fingerprint.
    """
    return hashlib.sha256(f"{part}:{config!r}".encode()).hexdigest()


class JsonlLog:
    """An append-only, torn-tail-tolerant JSONL file with a header.

    The first line is a header object that must contain ``format ==
    expected_format`` and match every ``expected_header`` key; anything
    else (missing file, legacy format, stale fingerprint, unreadable
    JSON) loads as empty.  Records are the subsequent lines.

    Appends are single ``write`` calls of a newline-terminated line on
    an ``O_APPEND`` descriptor.  Before the first append after a load,
    the file is truncated to the last valid byte (dropping a torn tail)
    — or rewritten with a fresh header when the existing content was
    not resumable.
    """

    def __init__(
        self,
        path: str,
        *,
        expected_format: str,
        header: Dict[str, object],
    ) -> None:
        self.path = path
        self.expected_format = expected_format
        self.header = {"format": expected_format, **header}
        self._valid_bytes = 0
        self._resumable = False
        self._fd: Optional[int] = None
        #: The actual header object of the last successful load (it may
        #: carry keys beyond the expected ones, e.g. a shard index).
        self.loaded_header: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def load(self) -> List[dict]:
        """Read every intact record; tolerates a torn final line.

        Also positions the log for appending: subsequent
        :meth:`append` calls extend the surviving records (or start a
        fresh file when the header did not match).
        """
        self.close()
        records: List[dict] = []
        self._valid_bytes = 0
        self._resumable = False
        self.loaded_header = None
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return records
        offset = 0
        first = True
        for line, end in _complete_lines(raw):
            try:
                data = json.loads(line)
            except ValueError:
                break
            if not isinstance(data, dict):
                break
            if first:
                if not self._header_matches(data):
                    return []
                self.loaded_header = data
                first = False
            else:
                records.append(data)
            offset = end
        self._valid_bytes = offset
        self._resumable = not first and offset > 0
        return records

    def _header_matches(self, data: dict) -> bool:
        return all(data.get(key) == value for key, value in self.header.items())

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Persist one record: a single atomic newline-terminated write."""
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._fd is None:
            self._open_for_append()
        os.write(self._fd, line.encode("utf-8"))

    def _open_for_append(self) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if self._resumable:
            # Drop the torn tail (if any), keep every intact record.
            fd = os.open(self.path, os.O_WRONLY)
            try:
                os.ftruncate(fd, self._valid_bytes)
            finally:
                os.close(fd)
            self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        else:
            # Fresh log: write the header via tmp + rename so a kill
            # mid-header never leaves a half-written first line.
            tmp = f"{self.path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self.header, sort_keys=True) + "\n")
            os.replace(tmp, self.path)
            self._resumable = True
            self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def clear(self) -> None:
        """Delete the log file."""
        self.close()
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __enter__(self) -> "JsonlLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _complete_lines(raw: bytes) -> Iterator[Tuple[bytes, int]]:
    """Yield ``(line, end_offset)`` for every newline-terminated line."""
    start = 0
    while True:
        end = raw.find(b"\n", start)
        if end < 0:
            return
        yield raw[start:end], end + 1
        start = end + 1


class JsonlTail:
    """Incrementally read complete records appended to a JSONL log.

    The coordinator's side of the shard-file liveness protocol: while a
    worker appends to a :class:`JsonlLog`, a tail ``poll()`` returns the
    records that became complete since the previous poll, never blocking
    and never consuming a torn final line (the offset only advances past
    newline-terminated parseable lines, so a record the writer is still
    mid-``write`` on is simply picked up by a later poll).

    Concurrent rewrites are tolerated structurally: if the file shrinks
    below the consumed offset (a resuming worker truncated it, or a
    fresh header replaced an incompatible log) the tail resets and
    re-reads from the start — callers dedupe records by their natural
    key, so re-delivery is harmless.  A truncation the tail never
    observes (the file regrew past the offset between polls) surfaces
    as an unparseable line at the misaligned offset; the tail then
    realigns by re-reading from the start.  A header that does not match
    ``expected_header`` yields no records (it may be a stale file the
    worker is about to replace); it is re-examined on every poll.
    """

    def __init__(
        self,
        path: str,
        *,
        expected_header: Dict[str, object],
    ) -> None:
        self.path = path
        self.expected_header = expected_header
        self._offset = 0
        self._header_ok = False
        #: Complete-but-unparseable record lines skipped so far.
        self.corrupt_lines = 0
        #: Polls that saw a non-matching header (stale/foreign file).
        self.header_mismatches = 0

    def reset(self) -> None:
        self._offset = 0
        self._header_ok = False

    def poll(self) -> List[dict]:
        """Every record that became complete since the last poll."""
        records, corrupt = self._scan()
        if corrupt:
            # A complete-but-unparseable line almost always means the
            # consumed offset is misaligned: a resuming (or
            # double-issued) worker truncated the file between polls
            # and it grew back past the offset before the shrink check
            # could fire, so we were reading from mid-record.
            # Re-reading from the start realigns on the header; callers
            # dedupe the re-delivered records.  Lines still unparseable
            # from offset zero are genuine corruption: skipped, counted.
            self.reset()
            records, corrupt = self._scan()
            self.corrupt_lines += corrupt
        return records

    def _scan(self) -> Tuple[List[dict], int]:
        """One read from the consumed offset: ``(records, corrupt)``."""
        try:
            with open(self.path, "rb") as handle:
                size = handle.seek(0, os.SEEK_END)
                if size < self._offset:
                    # Truncated or rewritten underneath us: start over
                    # (callers dedupe, so re-reading is safe).
                    self.reset()
                handle.seek(self._offset)
                raw = handle.read()
        except OSError:
            return [], 0
        records: List[dict] = []
        corrupt = 0
        consumed = 0
        for line, end in _complete_lines(raw):
            if not self._header_ok:
                try:
                    data = json.loads(line)
                except ValueError:
                    data = None
                if not isinstance(data, dict) or any(
                    data.get(key) != value
                    for key, value in self.expected_header.items()
                ):
                    # Stale or foreign header: report nothing and keep
                    # watching from the start of the file.
                    self.header_mismatches += 1
                    self.reset()
                    return [], 0
                self._header_ok = True
                consumed = end
                continue
            try:
                data = json.loads(line)
            except ValueError:
                data = None
            if isinstance(data, dict):
                records.append(data)
            else:
                corrupt += 1
            consumed = end
        self._offset += consumed
        return records, corrupt


class CampaignCheckpoint:
    """Per-point resume log of one campaign run (append-only JSONL).

    Each completed X-axis point is one ``{"x": ..., "row": {...}}``
    record.  ``load()`` is a single forward scan; resident state is one
    small dict of completed rows — nothing is ever rewritten, so
    recording point ``N`` costs the same as recording point one.
    """

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._log = JsonlLog(
            path,
            expected_format=CHECKPOINT_FORMAT,
            header={"fingerprint": fingerprint},
        )
        self._rows: Dict[str, dict] = {}

    def load(self) -> int:
        """Read the checkpoint; returns the number of resumable points.

        A missing file, a legacy/unknown format, or a fingerprint
        mismatch all yield an empty (fresh) checkpoint; a torn final
        line loses only that line.
        """
        self._rows = {}
        for record in self._log.load():
            row = record.get("row")
            if "x" in record and isinstance(row, dict):
                self._rows[str(record["x"])] = row
        return len(self._rows)

    def completed(self, x: int) -> Optional[dict]:
        """The saved row dict of point ``x``, or ``None`` if not done."""
        return self._rows.get(str(x))

    def record(self, x: int, row: dict) -> None:
        """Persist point ``x`` as completed (atomic O(1) append)."""
        key = str(x)
        self._rows[key] = row
        self._log.append({"x": x, "row": row})

    def close(self) -> None:
        self._log.close()

    def clear(self) -> None:
        """Delete the checkpoint file (after a campaign completes)."""
        self._rows = {}
        self._log.clear()


__all__ = [
    "CHECKPOINT_FORMAT",
    "CampaignCheckpoint",
    "JsonlLog",
    "JsonlTail",
    "config_fingerprint",
]

"""Per-point checkpointing of Fig. 6 campaigns.

A campaign writes one JSON file, updated after every completed X-axis
point, so an interrupted sweep resumes from the last completed point
instead of restarting.  The file is keyed by a fingerprint of
``(part, config)``: resuming against a different configuration discards
the stale checkpoint rather than silently mixing incompatible rows.

The JSON is written atomically (temp file + rename) — a kill mid-write
leaves the previous consistent checkpoint in place.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional


def config_fingerprint(part: str, config) -> str:
    """Stable digest of one campaign's identity.

    Frozen-dataclass ``repr`` covers every field deterministically, so
    any change to the preset (X grid, seeds, durations, scenario knobs)
    changes the fingerprint.
    """
    return hashlib.sha256(f"{part}:{config!r}".encode()).hexdigest()


class CampaignCheckpoint:
    """Load/save the per-point progress of one campaign run."""

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._rows: Dict[str, dict] = {}
        self._order: List[str] = []

    def load(self) -> int:
        """Read the checkpoint; returns the number of resumable points.

        A missing file, unreadable JSON, or a fingerprint mismatch all
        yield an empty (fresh) checkpoint.
        """
        self._rows = {}
        self._order = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return 0
        if data.get("fingerprint") != self.fingerprint:
            return 0
        rows = data.get("rows")
        order = data.get("order")
        if not isinstance(rows, dict) or not isinstance(order, list):
            return 0
        self._rows = rows
        self._order = [str(x) for x in order]
        return len(self._order)

    def completed(self, x: int) -> Optional[dict]:
        """The saved row dict of point ``x``, or ``None`` if not done."""
        return self._rows.get(str(x))

    def record(self, x: int, row: dict) -> None:
        """Persist point ``x`` as completed (atomic rewrite)."""
        key = str(x)
        self._rows[key] = row
        if key not in self._order:
            self._order.append(key)
        payload = {
            "fingerprint": self.fingerprint,
            "order": self._order,
            "rows": self._rows,
        }
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Delete the checkpoint file (after a campaign completes)."""
        try:
            os.remove(self.path)
        except OSError:
            pass


__all__ = ["CampaignCheckpoint", "config_fingerprint"]

"""Parallel experiment engine for the Fig. 6 harness and sweeps.

Fans per-graph experiment work across a process pool with
deterministic per-task seeding: ``jobs=1`` and ``jobs=N`` produce
byte-identical CSVs (see :mod:`repro.parallel.engine` for the ordering
guarantee and :func:`repro.experiments.fig6.graph_tasks` for the seed
derivation).  :mod:`repro.parallel.campaign` adds per-point
checkpoint/resume and a timing report (stage breakdown + worker
utilization); :mod:`repro.parallel.checkpoint` holds the on-disk
format.
"""

from repro.parallel.campaign import CampaignTiming, PointTiming, run_campaign
from repro.parallel.checkpoint import CampaignCheckpoint, config_fingerprint
from repro.parallel.engine import (
    MapStats,
    PoolRunner,
    default_chunk_size,
    resolve_jobs,
)

__all__ = [
    "CampaignCheckpoint",
    "CampaignTiming",
    "MapStats",
    "PointTiming",
    "PoolRunner",
    "config_fingerprint",
    "default_chunk_size",
    "resolve_jobs",
    "run_campaign",
]

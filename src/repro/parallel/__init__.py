"""Sharded, streaming parallel experiment engine.

Fans per-graph experiment work across a process pool with
deterministic per-task seeding: ``jobs=1`` and ``jobs=N`` produce
byte-identical CSVs (see :mod:`repro.parallel.engine` for adaptive
chunked dispatch and the ordering guarantee, and
:func:`repro.experiments.fig6.graph_tasks` for the seed derivation).

:mod:`repro.parallel.campaign` streams completed graphs into bounded
accumulators (:mod:`repro.parallel.aggregate`) with per-point
checkpoint/resume over an append-only JSONL log
(:mod:`repro.parallel.checkpoint`); :mod:`repro.parallel.shard`
partitions a campaign's scenario space across machines and merges
shard outputs back to bytes identical to a serial run.

:mod:`repro.parallel.cluster` closes the loop with a fault-tolerant
coordinator: it launches shard workers (:mod:`repro.parallel.worker`
subprocesses), watches each shard file for liveness, re-issues dead
shards with backoff, and folds records incrementally so the final CSV
stays byte-identical to ``--jobs 1`` across worker deaths.
"""

from repro.parallel.aggregate import (
    CampaignAccumulator,
    CompletedPoint,
    P2Quantile,
    StreamingStats,
)
from repro.parallel.campaign import (
    CampaignPart,
    CampaignTiming,
    PointTiming,
    get_part,
    register_part,
    run_campaign,
)
from repro.parallel.checkpoint import (
    CampaignCheckpoint,
    JsonlLog,
    JsonlTail,
    config_fingerprint,
)
from repro.parallel.cluster import (
    ClusterError,
    ClusterFault,
    ClusterReport,
    ClusterShardReport,
    ClusterStatus,
    IncrementalMerger,
    run_cluster,
    write_worker_spec,
)
from repro.parallel.engine import (
    MapStats,
    PoolRunner,
    default_chunk_size,
    resolve_jobs,
)
from repro.parallel.shard import (
    ShardRunReport,
    ShardSpec,
    merge_shards,
    run_shard,
)

__all__ = [
    "CampaignAccumulator",
    "CampaignCheckpoint",
    "CampaignPart",
    "CampaignTiming",
    "ClusterError",
    "ClusterFault",
    "ClusterReport",
    "ClusterShardReport",
    "ClusterStatus",
    "CompletedPoint",
    "IncrementalMerger",
    "JsonlLog",
    "JsonlTail",
    "MapStats",
    "P2Quantile",
    "PointTiming",
    "PoolRunner",
    "ShardRunReport",
    "ShardSpec",
    "StreamingStats",
    "config_fingerprint",
    "default_chunk_size",
    "get_part",
    "merge_shards",
    "register_part",
    "resolve_jobs",
    "run_campaign",
    "run_cluster",
    "run_shard",
    "write_worker_spec",
]

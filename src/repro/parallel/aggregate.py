"""Bounded-memory streaming aggregation for campaign runs.

The campaign engine no longer materializes one result list per X-axis
point.  Instead every per-graph result is handed — in completion order,
from any worker — to a :class:`CampaignAccumulator`, which

* parks it in the slot of its point (results stay resident **only**
  while their point is incomplete — resident memory is O(points in
  flight × graphs per point), not O(campaign)),
* folds the point into its CSV row with the **exact same aggregation
  call** a serial run uses the moment its last graph lands (results are
  sorted by replica index inside the fold, so the row is bit-identical
  to ``--jobs 1`` no matter the completion order), and
* releases completed points to the caller in X-axis order, so progress
  lines and checkpoint appends read exactly like a serial sweep.

Alongside the exact per-point fold the accumulator maintains *campaign-
wide* sketches over a scalar metric of every result (count / mean /
std via Welford's update, min / max, and P² quantile estimates).  These
are observability only — they never feed the CSV — but they are what a
million-scenario campaign can afford: O(1) state per sketch.

Peak residency is instrumented (:attr:`CampaignAccumulator.peak_in_flight`,
:attr:`~CampaignAccumulator.peak_points_open`) so the bounded-memory
claim is measured, not asserted; the campaign benchmark records it in
``BENCH_kernel.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class StreamingStats:
    """Count / mean / std / min / max in O(1) state (Welford update)."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "std": round(self.std, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
        }


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac 1985), O(1) state.

    Exact until five observations arrive, then maintained by parabolic
    marker adjustment.  Good to a few percent on unimodal data — plenty
    for a progress line; anything feeding the CSV uses the exact fold.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rate", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        self.count += 1
        if self.count <= 5:
            self._heights.append(value)
            self._heights.sort()
            return
        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rate[i]
        for i in (1, 2, 3):
            drift = self._desired[i] - pos[i]
            if (drift >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                drift <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] += step * (h[i + int(step)] - h[i]) / (
                        pos[i + int(step)] - pos[i]
                    )
                pos[i] += step
        return

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    @property
    def value(self) -> float:
        """Current estimate (exact below six observations; nan if empty)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Nearest-rank on the exact sorted sample.
            rank = max(0, min(len(self._heights) - 1,
                              round(self.q * (len(self._heights) - 1))))
            return self._heights[rank]
        return self._heights[2]


@dataclass
class CompletedPoint:
    """One X-axis point released by the accumulator, in X order."""

    x: int
    row: object
    results: Sequence[object]
    resumed: bool = False
    busy_s: float = 0.0
    wall_s: float = 0.0
    #: ``True`` when the row was force-folded over an incomplete result
    #: set (degraded-mode completion; see ``flush_incomplete``).
    partial: bool = False


@dataclass
class _PointSlot:
    expected: int
    results: List[object] = field(default_factory=list)
    busy_s: float = 0.0
    first_start: Optional[float] = None
    last_end: float = 0.0


class CampaignAccumulator:
    """Fold completion-order results into X-ordered campaign rows.

    Args:
        points: ``(x, expected_result_count)`` pairs **in output
            order** (the campaign's X grid).
        fold: The exact aggregation, ``fold(x, results) -> row`` —
            the same callable a serial run applies, so emitted rows
            carry bit-identical floats.
        metric: Optional scalar extractor feeding the campaign-wide
            sketches (ignored for resumed points, which carry no
            per-graph results).
        quantiles: P² sketch targets over ``metric``.
    """

    def __init__(
        self,
        points: Sequence[Tuple[int, int]],
        fold: Callable[[int, Sequence[object]], object],
        *,
        metric: Optional[Callable[[object], float]] = None,
        quantiles: Sequence[float] = (0.5, 0.9, 0.99),
    ) -> None:
        self._order = [x for x, _ in points]
        self._fold = fold
        self._metric = metric
        self._slots: Dict[int, _PointSlot] = {
            x: _PointSlot(expected=expected) for x, expected in points
        }
        self._ready: Dict[int, CompletedPoint] = {}
        self._cursor = 0
        self.stats = StreamingStats()
        self.sketches: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in quantiles
        }
        #: Results resident right now / the high-water mark.
        self.in_flight = 0
        self.peak_in_flight = 0
        self.peak_points_open = 0
        self.rows_emitted = 0

    # ------------------------------------------------------------------

    def resume(self, x: int, row: object) -> List[CompletedPoint]:
        """Mark point ``x`` as already checkpointed; row passes through."""
        self._slots.pop(x)
        self._ready[x] = CompletedPoint(x=x, row=row, results=(), resumed=True)
        return self._release()

    def add(
        self,
        x: int,
        result: object,
        *,
        elapsed_s: float = 0.0,
        now: float = 0.0,
    ) -> List[CompletedPoint]:
        """Park one result; returns the points this completes, X-ordered.

        ``now`` is the caller's wall clock at delivery; per-point wall
        time spans from the inferred start of the point's first result
        (``now - elapsed_s``) to the delivery of its last.
        """
        slot = self._slots[x]
        slot.results.append(result)
        slot.busy_s += elapsed_s
        if slot.first_start is None:
            slot.first_start = now - elapsed_s
        slot.last_end = now
        self.in_flight += 1
        if self.in_flight > self.peak_in_flight:
            self.peak_in_flight = self.in_flight
        open_points = sum(1 for s in self._slots.values() if s.results)
        if open_points > self.peak_points_open:
            self.peak_points_open = open_points
        if self._metric is not None:
            value = self._metric(result)
            self.stats.add(value)
            for sketch in self.sketches.values():
                sketch.add(value)
        if len(slot.results) < slot.expected:
            return []
        # Point complete: fold exactly as a serial run would and free.
        row = self._fold(x, slot.results)
        self._ready[x] = CompletedPoint(
            x=x,
            row=row,
            results=tuple(slot.results),
            busy_s=slot.busy_s,
            wall_s=max(0.0, slot.last_end - (slot.first_start or slot.last_end)),
        )
        self.in_flight -= len(slot.results)
        del self._slots[x]
        return self._release()

    def flush_incomplete(self) -> List[CompletedPoint]:
        """Force-fold every unreleased point over the results that arrived.

        Degraded-mode completion for the cluster coordinator: when a
        shard's retry budget is exhausted and the caller opted into
        partial output, the remaining points are folded over whatever
        subset of their results exists — with the same aggregation
        callable, sorted by replica inside the fold as always — and
        released in X order, flagged ``partial=True``.  Points that
        received **no** results at all yield no row (there is nothing
        to fold) and are simply skipped; callers report them through
        their coverage accounting.

        Complete points still held back by X-ordering are released
        unflagged on the way.
        """
        out: List[CompletedPoint] = []
        while self._cursor < len(self._order):
            x = self._order[self._cursor]
            done = self._ready.pop(x, None)
            if done is None:
                slot = self._slots.pop(x, None)
                if slot is None or not slot.results:
                    self._cursor += 1
                    continue
                row = self._fold(x, slot.results)
                done = CompletedPoint(
                    x=x,
                    row=row,
                    results=tuple(slot.results),
                    busy_s=slot.busy_s,
                    wall_s=max(
                        0.0,
                        slot.last_end - (slot.first_start or slot.last_end),
                    ),
                    partial=True,
                )
                self.in_flight -= len(slot.results)
            out.append(done)
            self._cursor += 1
            self.rows_emitted += 1
        return out

    def _release(self) -> List[CompletedPoint]:
        out: List[CompletedPoint] = []
        while self._cursor < len(self._order):
            x = self._order[self._cursor]
            done = self._ready.pop(x, None)
            if done is None:
                break
            out.append(done)
            self._cursor += 1
            self.rows_emitted += 1
        return out

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Points not yet released (incomplete or held for X order)."""
        return len(self._order) - self.rows_emitted

    def memory_report(self) -> dict:
        """The measured bounded-memory evidence, for benches and logs."""
        return {
            "peak_in_flight_results": self.peak_in_flight,
            "peak_points_open": self.peak_points_open,
            "resident_results": self.in_flight,
        }

    def summary(self) -> dict:
        """Campaign-wide sketch summary (observability, not CSV data)."""
        data = {"metric": self.stats.to_dict()}
        if self.stats.count:
            data["quantiles"] = {
                f"p{int(q * 100)}": round(sketch.value, 6)
                for q, sketch in self.sketches.items()
            }
        data.update(self.memory_report())
        return data


__all__ = [
    "CampaignAccumulator",
    "CompletedPoint",
    "P2Quantile",
    "StreamingStats",
]

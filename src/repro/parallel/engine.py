"""Deterministic process-pool map with chunking and utilization stats.

The primitive under the parallel experiment engine: apply a picklable
function to a list of items across worker processes and return the
results **in input order**, no matter which worker finished first.
Because every Fig. 6 graph task carries its own pre-derived seed (see
:func:`repro.experiments.fig6.graph_tasks`), order-preserving collection
is all it takes for ``jobs=1`` and ``jobs=N`` to produce bit-identical
output.

Items are dispatched in chunks (several items per pickle round-trip) to
amortize IPC overhead on short tasks, and every item's wall time is
measured inside the worker so the caller can report worker utilization
(busy time / (wall time × workers)) — the honest number for judging
whether a sweep is IPC-bound or compute-bound.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: ``None``/``0`` means every CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def default_chunk_size(n_items: int, jobs: int) -> int:
    """A chunk size keeping roughly four chunks in flight per worker.

    Small enough for load balancing (a slow graph does not strand a
    whole chunk's worth of siblings behind it), large enough that the
    per-chunk pickle round-trip stays amortized.
    """
    if jobs <= 1:
        return max(1, n_items)
    return max(1, n_items // (jobs * 4))


def _run_chunk(
    fn: Callable[[Item], Result], chunk: Sequence[Tuple[int, Item]]
) -> List[Tuple[int, Result, float]]:
    """Worker-side loop: run every item of a chunk, timing each."""
    out: List[Tuple[int, Result, float]] = []
    for index, item in chunk:
        started = time.perf_counter()
        result = fn(item)
        out.append((index, result, time.perf_counter() - started))
    return out


@dataclass
class MapStats:
    """Observability record of one :meth:`PoolRunner.map_ordered` call."""

    jobs: int
    n_items: int = 0
    n_chunks: int = 0
    wall_s: float = 0.0
    #: Summed in-worker wall time of every item (CPU-side busy time).
    busy_s: float = 0.0
    #: Per-item in-worker seconds, in input order.
    item_s: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Worker busy fraction: ``busy / (wall * jobs)``, in [0, 1]."""
        if self.wall_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "n_items": self.n_items,
            "n_chunks": self.n_chunks,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "utilization": round(self.utilization, 4),
        }


class PoolRunner:
    """A reusable worker pool with an order-preserving chunked map.

    With ``jobs=1`` no processes are spawned and the map runs inline —
    the degenerate case shares every code path except the executor, so
    serial/parallel parity is structural, not coincidental.  Use as a
    context manager; one runner can serve many ``map_ordered`` calls
    (the Fig. 6 campaign reuses it across X-axis points so workers are
    forked once per sweep, not once per point).
    """

    def __init__(self, jobs: int = 1, *, chunk_size: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._chunk_size = chunk_size
        self._executor: Optional[ProcessPoolExecutor] = None

    def __enter__(self) -> "PoolRunner":
        if self.jobs > 1:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def map_ordered(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        *,
        on_item: Optional[Callable[[int, Result], None]] = None,
    ) -> Tuple[List[Result], MapStats]:
        """Apply ``fn`` to every item; results come back in input order.

        Args:
            fn: Picklable callable (top-level function or a
                ``functools.partial`` of one) applied to each item.
            items: The inputs; each must be picklable under ``jobs>1``.
            on_item: Optional progress hook called as ``(index, result)``
                in **completion** order (use only for reporting — the
                returned list is always in input order).
        """
        stats = MapStats(jobs=self.jobs, n_items=len(items))
        started = time.perf_counter()
        indexed = list(enumerate(items))
        chunk_size = self._chunk_size or default_chunk_size(
            len(items), self.jobs
        )
        chunks = [
            indexed[i : i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        stats.n_chunks = len(chunks)
        results: List[Optional[Result]] = [None] * len(items)
        timings: List[float] = [0.0] * len(items)

        if self._executor is None:
            for chunk in chunks:
                for index, result, elapsed in _run_chunk(fn, chunk):
                    results[index] = result
                    timings[index] = elapsed
                    stats.busy_s += elapsed
                    if on_item is not None:
                        on_item(index, result)
        else:
            pending = {
                self._executor.submit(_run_chunk, fn, chunk)
                for chunk in chunks
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, result, elapsed in future.result():
                        results[index] = result
                        timings[index] = elapsed
                        stats.busy_s += elapsed
                        if on_item is not None:
                            on_item(index, result)

        stats.wall_s = time.perf_counter() - started
        stats.item_s = timings
        return results, stats  # type: ignore[return-value]


__all__ = [
    "MapStats",
    "PoolRunner",
    "default_chunk_size",
    "resolve_jobs",
]

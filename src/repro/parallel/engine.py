"""Deterministic process-pool map with adaptive chunking and stats.

The primitive under the parallel experiment engine: apply a picklable
function to a sequence of items across worker processes and deliver the
results keyed by **input index**, no matter which worker finished
first.  Because every Fig. 6 graph task carries its own pre-derived
seed (see :func:`repro.experiments.fig6.graph_tasks`), index-keyed
collection is all it takes for ``jobs=1`` and ``jobs=N`` to produce
bit-identical output.

Two consumption modes share one dispatch core:

* :meth:`PoolRunner.map_ordered` returns the full result list in input
  order — the right shape for small fan-outs (restart searches, sweep
  candidates).
* :meth:`PoolRunner.map_consume` delivers each result to a callback as
  it completes and retains **nothing** — the campaign engine folds
  results into bounded accumulators this way, so resident memory stays
  O(items in flight) even on million-scenario campaigns.

Items are dispatched in chunks (several items per pickle round-trip)
to amortize IPC overhead on short tasks.  Unless a fixed
``chunk_size`` is requested, chunk sizes *adapt*: the runner starts
small, measures per-item wall time inside the workers, and resizes
subsequent chunks toward ``chunk_target_s`` seconds of work each —
long items get chunk size 1 (maximum stealing), sub-millisecond items
get batched hundreds at a time.  At most two chunks per worker are in
flight, so a cost cliff mid-campaign never strands a stale chunk size.

Every item's wall time is measured inside the worker so the caller can
report worker utilization (busy time / (wall time × workers)) — the
honest number for judging whether a sweep is IPC-bound or
compute-bound.  A ``heartbeat`` hook observes the running
:class:`MapStats` after every chunk, which is what feeds the live
``--progress`` line of campaign runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Seconds of work the adaptive dispatcher aims to pack per chunk.
DEFAULT_CHUNK_TARGET_S = 0.2

#: Upper bound on an adaptive chunk (keeps pickles and latency sane).
MAX_ADAPTIVE_CHUNK = 256


def resolve_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: ``None``/``0`` means every CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def default_chunk_size(n_items: int, jobs: int) -> int:
    """A fixed chunk size keeping roughly four chunks per worker.

    This is the non-adaptive fallback (and the documented meaning of an
    explicit ``chunk_size=None`` before adaptive dispatch existed):
    small enough for load balancing, large enough that the per-chunk
    pickle round-trip stays amortized.
    """
    if jobs <= 1:
        return max(1, n_items)
    return max(1, n_items // (jobs * 4))


def _run_chunk(
    fn: Callable[[Item], Result], chunk: Sequence[Tuple[int, Item]]
) -> List[Tuple[int, Result, float]]:
    """Worker-side loop: run every item of a chunk, timing each."""
    out: List[Tuple[int, Result, float]] = []
    for index, item in chunk:
        started = time.perf_counter()
        result = fn(item)
        out.append((index, result, time.perf_counter() - started))
    return out


@dataclass
class MapStats:
    """Observability record of one :class:`PoolRunner` map call."""

    jobs: int
    n_items: int = 0
    n_chunks: int = 0
    #: Items delivered so far (== ``n_items`` once the map returns).
    completed: int = 0
    wall_s: float = 0.0
    #: Summed in-worker wall time of every item (CPU-side busy time).
    busy_s: float = 0.0
    #: Per-item in-worker seconds, in input order (``map_ordered``
    #: only; ``map_consume`` leaves it empty and hands the per-item
    #: time to the callback instead).
    item_s: List[float] = field(default_factory=list)
    #: Smallest / largest chunk the adaptive dispatcher actually sent.
    chunk_min: int = 0
    chunk_max: int = 0

    @property
    def utilization(self) -> float:
        """Worker busy fraction: ``busy / (wall * jobs)``, in [0, 1]."""
        if self.wall_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * self.jobs))

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "n_items": self.n_items,
            "n_chunks": self.n_chunks,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "utilization": round(self.utilization, 4),
            "chunk_min": self.chunk_min,
            "chunk_max": self.chunk_max,
        }


class PoolRunner:
    """A reusable worker pool with deterministic chunked maps.

    With ``jobs=1`` no processes are spawned and the map runs inline —
    the degenerate case shares every code path except the executor, so
    serial/parallel parity is structural, not coincidental.  Use as a
    context manager; one runner can serve many map calls (the Fig. 6
    campaign reuses it across the whole sweep so workers are forked
    once, not once per point).

    Args:
        jobs: Worker processes (``0``/negative resolve to every CPU).
        chunk_size: Pin a fixed chunk size (disables adaptation).
        chunk_target_s: Seconds of work the adaptive dispatcher packs
            per chunk; chunk sizes are re-derived from observed
            per-item wall times as the map runs.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunk_size: Optional[int] = None,
        chunk_target_s: float = DEFAULT_CHUNK_TARGET_S,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self._chunk_size = chunk_size
        self._chunk_target_s = chunk_target_s
        self._executor: Optional[ProcessPoolExecutor] = None

    def __enter__(self) -> "PoolRunner":
        if self.jobs > 1:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # public maps
    # ------------------------------------------------------------------

    def map_ordered(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        *,
        on_item: Optional[Callable[[int, Result], None]] = None,
        heartbeat: Optional[Callable[[MapStats], None]] = None,
    ) -> Tuple[List[Result], MapStats]:
        """Apply ``fn`` to every item; results come back in input order.

        Args:
            fn: Picklable callable (top-level function or a
                ``functools.partial`` of one) applied to each item.
            items: The inputs; each must be picklable under ``jobs>1``.
            on_item: Optional progress hook called as ``(index, result)``
                in **completion** order (use only for reporting — the
                returned list is always in input order).
            heartbeat: Optional hook observing the running
                :class:`MapStats` after every completed chunk.
        """
        results: List[Optional[Result]] = [None] * len(items)
        timings: List[float] = [0.0] * len(items)

        def deliver(index: int, result: Result, elapsed: float) -> None:
            results[index] = result
            timings[index] = elapsed
            if on_item is not None:
                on_item(index, result)

        stats = self._dispatch(fn, items, deliver, heartbeat)
        stats.item_s = timings
        return results, stats  # type: ignore[return-value]

    def map_consume(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        *,
        on_item: Callable[[int, Result, float], None],
        heartbeat: Optional[Callable[[MapStats], None]] = None,
    ) -> MapStats:
        """Apply ``fn`` to every item, retaining **no** results.

        Each completion is handed to ``on_item(index, result,
        elapsed_s)`` — in completion order — and then dropped, so the
        runner's resident memory is bounded by the chunks in flight
        regardless of how many items the map covers.  The campaign
        engine folds results into per-point accumulators this way.
        """
        return self._dispatch(fn, items, on_item, heartbeat)

    # ------------------------------------------------------------------
    # dispatch core
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        deliver: Callable[[int, Result, float], None],
        heartbeat: Optional[Callable[[MapStats], None]],
    ) -> MapStats:
        stats = MapStats(jobs=self.jobs, n_items=len(items))
        started = time.perf_counter()

        def account_chunk(
            chunk_results: List[Tuple[int, Result, float]]
        ) -> None:
            stats.n_chunks += 1
            for index, result, elapsed in chunk_results:
                stats.busy_s += elapsed
                stats.completed += 1
                deliver(index, result, elapsed)
            stats.wall_s = time.perf_counter() - started
            if heartbeat is not None:
                heartbeat(stats)

        if self._executor is None:
            # Inline: one item at a time is both the simplest and the
            # most responsive chunking (no IPC to amortize).
            size = self._chunk_size or 1
            stats.chunk_min = stats.chunk_max = min(size, len(items)) or 0
            indexed = list(enumerate(items))
            for start in range(0, len(indexed), size):
                account_chunk(_run_chunk(fn, indexed[start : start + size]))
        else:
            self._dispatch_pool(fn, items, stats, account_chunk)

        stats.wall_s = time.perf_counter() - started
        return stats

    def _dispatch_pool(
        self,
        fn: Callable[[Item], Result],
        items: Sequence[Item],
        stats: MapStats,
        account_chunk: Callable[[List[Tuple[int, Result, float]]], None],
    ) -> None:
        """Chunked pool dispatch with observed-timing chunk resizing."""
        assert self._executor is not None
        indexed = list(enumerate(items))
        n = len(indexed)
        cursor = 0
        ewma_item_s: Optional[float] = None

        def next_size(remaining: int) -> int:
            if self._chunk_size is not None:
                return self._chunk_size
            if ewma_item_s is None:
                # Cold start: small chunks so timings arrive quickly.
                return max(1, min(4, remaining // (self.jobs * 4) or 1))
            size = int(self._chunk_target_s / max(ewma_item_s, 1e-9))
            # Never let the tail collapse onto too few workers.
            fair = max(1, remaining // (self.jobs * 2))
            return max(1, min(size or 1, fair, MAX_ADAPTIVE_CHUNK))

        def submit_one():
            nonlocal cursor
            size = next_size(n - cursor)
            chunk = indexed[cursor : cursor + size]
            cursor += len(chunk)
            stats.chunk_min = (
                len(chunk)
                if stats.chunk_min == 0
                else min(stats.chunk_min, len(chunk))
            )
            stats.chunk_max = max(stats.chunk_max, len(chunk))
            return self._executor.submit(_run_chunk, fn, chunk)

        pending = set()
        while cursor < n and len(pending) < self.jobs * 2:
            pending.add(submit_one())
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk_results = future.result()
                if chunk_results and self._chunk_size is None:
                    mean = sum(r[2] for r in chunk_results) / len(
                        chunk_results
                    )
                    ewma_item_s = (
                        mean
                        if ewma_item_s is None
                        else 0.7 * ewma_item_s + 0.3 * mean
                    )
                account_chunk(chunk_results)
            while cursor < n and len(pending) < self.jobs * 2:
                pending.add(submit_one())


__all__ = [
    "DEFAULT_CHUNK_TARGET_S",
    "MAX_ADAPTIVE_CHUNK",
    "MapStats",
    "PoolRunner",
    "default_chunk_size",
    "resolve_jobs",
]

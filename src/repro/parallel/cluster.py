"""Cluster coordinator over campaign shards: liveness, re-issue, merge.

PR 8's sharding made a campaign's scenario space a pure function of
``(config, ShardSpec)`` — shards can run on any machine at any time and
:func:`~repro.parallel.shard.merge_shards` folds the files back to
bytes identical to a serial run.  What it left manual was the
orchestration: *somebody* had to notice a dead worker, re-run its
shard, and re-merge.  :func:`run_cluster` is that somebody.

The coordinator owns the full shard partition of one campaign.  It
launches local worker subprocesses (``python -m repro.parallel.worker``
running :func:`~repro.parallel.shard.run_shard`; remote machines get
the equivalent ready-to-run ``repro campaign run`` commands) and
watches each shard's append-only JSONL file for **liveness**: progress
is new complete records, observed through a torn-tail-tolerant
:class:`~repro.parallel.checkpoint.JsonlTail`.  A shard whose file
stops growing past ``heartbeat_timeout`` seconds — or whose worker
exits without having covered its ordinals — is declared dead, its
processes are killed, and it is **re-issued** with exponential backoff
under a bounded retry budget.  Because the shard file doubles as the
shard's resume log, a re-issued worker skips every recorded graph:
completed work is never recomputed, no matter how many times a worker
dies.

Merging is **incremental**: every record is folded into the same
bounded-memory :class:`~repro.parallel.aggregate.CampaignAccumulator`
discipline a single-machine campaign uses (park per point, fold with
the exact serial aggregation the moment the point completes, release
rows in X order), deduplicated by global ordinal so double-issued
shards and re-delivered records are harmless.  The final rows — and
the CSV rendered from them — are therefore **byte-identical to
``--jobs 1``** regardless of worker deaths, re-issues, or completion
order.  When a shard exhausts its retry budget, ``allow_missing=True``
degrades gracefully instead of failing: the remaining points are
force-folded over the results that did arrive (flagged partial) and
the :class:`ClusterReport` carries an explicit coverage account of
every missing ordinal.

:class:`ClusterFault` is the fault-injection layer the test suite and
the CI smoke leg drive: a worker can be told to SIGKILL itself after N
records (optionally leaving a torn half-record), to stall without
exiting, or a shard can be double-issued on purpose.  Faults apply to
the *first* issue only unless ``every_attempt`` is set, so re-issues
demonstrate recovery rather than re-injection.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.parallel.aggregate import CampaignAccumulator, CompletedPoint
from repro.parallel.campaign import CampaignPart, get_part
from repro.parallel.checkpoint import JsonlTail, config_fingerprint
from repro.parallel.engine import resolve_jobs
from repro.parallel.shard import SHARD_FORMAT, ShardSpec


class ClusterError(RuntimeError):
    """A shard exhausted its retry budget (and partial output was not
    requested), or shard files turned out not to belong to the campaign."""


@dataclass(frozen=True)
class ClusterFault:
    """Worker-side fault plan for one shard (the test layer).

    Attributes:
        die_after_records: SIGKILL the worker right after it appended
            this many records (per attempt).
        tear: With ``die_after_records``, first write half a record
            with no newline — the torn tail a mid-``write`` kill leaves.
        stall_after_records: Stop appending after this many records but
            keep the process alive — what a wedged worker looks like.
        double_issue: Coordinator-side: launch two workers for this
            shard's first issue, both appending to the same file.
        every_attempt: Re-apply the fault on every re-issue (default:
            first issue only, so recovery is observable).
    """

    die_after_records: Optional[int] = None
    tear: bool = False
    stall_after_records: Optional[int] = None
    double_issue: bool = False
    every_attempt: bool = False

    @property
    def worker_side(self) -> bool:
        return (
            self.die_after_records is not None
            or self.stall_after_records is not None
        )


def write_worker_spec(
    path: str,
    *,
    part: Union[str, CampaignPart],
    config,
    shard: ShardSpec,
    out: str,
    jobs: int = 1,
    sys_path: Sequence[str] = (),
    fault: Optional[ClusterFault] = None,
) -> str:
    """Write the two-pickle spec file a worker subprocess consumes.

    ``sys_path`` entries are pickled separately ahead of the payload so
    the worker can extend its import path before the part/config
    classes (possibly defined in test or benchmark modules) unpickle.
    The source tree of this very ``repro`` package is always included,
    so workers resolve the same code the coordinator runs.
    """
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    entries = [src_dir] + [os.path.abspath(p) for p in sys_path]
    payload = {
        "part": part if isinstance(part, str) else part,
        "config": config,
        "shard": str(shard),
        "out": out,
        "jobs": jobs,
        "fault": fault if fault is not None and fault.worker_side else None,
    }
    with open(path, "wb") as handle:
        pickle.dump(entries, handle)
        pickle.dump(payload, handle)
    return path


class IncrementalMerger:
    """Fold shard-file records into campaign rows as they appear.

    One :class:`~repro.parallel.checkpoint.JsonlTail` per shard file,
    one ordinal-deduplicated stream into a
    :class:`~repro.parallel.aggregate.CampaignAccumulator` whose fold
    is the part's exact serial aggregation — so the rows this merger
    releases (in X order) are the rows ``--jobs 1`` produces, no matter
    the arrival order, duplicates from double-issued shards, torn
    tails, or how records are spread across re-issued attempts.

    The merger is deliberately independent of process management: the
    hypothesis suite drives it directly against synthesized write
    interleavings, and the coordinator reuses the per-shard record
    stream as its liveness signal.
    """

    def __init__(
        self,
        part: Union[str, CampaignPart],
        config,
        *,
        shard_count: int,
        paths: Dict[int, str],
    ) -> None:
        resolved = get_part(part)
        self.part = resolved
        self.config = config
        self.shard_count = shard_count
        self._tasks = resolved.tasks(config)
        self._decode = resolved.decode_result
        expected: Dict[int, int] = {x: 0 for x in config.x_values}
        for task in self._tasks:
            expected[task.x] += 1
        self.expected_by_x = expected
        self._acc = CampaignAccumulator(
            [(x, expected[x]) for x in config.x_values],
            resolved.aggregate,
            metric=resolved.metric,
        )
        fingerprint = config_fingerprint(resolved.name, config)
        self._owned: Dict[int, Set[int]] = {index: set() for index in paths}
        for ordinal in range(len(self._tasks)):
            index = ordinal % shard_count
            if index in self._owned:
                self._owned[index].add(ordinal)
        self._tails: Dict[int, JsonlTail] = {
            index: JsonlTail(
                path,
                expected_header={
                    "format": SHARD_FORMAT,
                    "part": resolved.name,
                    "fingerprint": fingerprint,
                    "shard_index": index,
                    "shard_count": shard_count,
                },
            )
            for index, path in paths.items()
        }
        #: Ordinals merged so far (across all shards).
        self.seen: Set[int] = set()
        #: Re-delivered or double-issued records ignored.
        self.duplicates = 0
        #: Records whose ordinal the polled shard does not own.
        self.foreign_records = 0
        #: Every released point, in X order (partial ones flagged).
        self.rows: List[CompletedPoint] = []

    @property
    def expected_records(self) -> int:
        return len(self._tasks)

    def owned(self, index: int) -> Set[int]:
        return self._owned[index]

    def shard_done(self, index: int) -> bool:
        """Whether every ordinal this shard owns has been merged."""
        return self._owned[index] <= self.seen

    @property
    def done(self) -> bool:
        return len(self.seen) == len(self._tasks)

    def poll_shard(self, index: int) -> tuple:
        """Drain one shard file; returns ``(new_records, released)``.

        ``new_records`` counts every fresh complete record line — the
        liveness signal — including duplicates (a double-issued worker
        re-covering old ground is alive, just redundant).
        """
        released: List[CompletedPoint] = []
        new = 0
        for record in self._tails[index].poll():
            ordinal = record.get("ordinal")
            if (
                not isinstance(ordinal, int)
                or ordinal not in self._owned[index]
                or "result" not in record
            ):
                self.foreign_records += 1
                continue
            new += 1
            if ordinal in self.seen:
                self.duplicates += 1
                continue
            self.seen.add(ordinal)
            task = self._tasks[ordinal]
            released.extend(
                self._acc.add(task.x, self._decode(record["result"]))
            )
        self.rows.extend(released)
        return new, released

    def poll_all(self) -> List[CompletedPoint]:
        released: List[CompletedPoint] = []
        for index in self._tails:
            released.extend(self.poll_shard(index)[1])
        return released

    def flush_incomplete(self) -> List[CompletedPoint]:
        """Degraded mode: force-fold what arrived (see the accumulator)."""
        released = self._acc.flush_incomplete()
        self.rows.extend(released)
        return released

    def coverage(self) -> dict:
        """The explicit account degraded-mode completion ships with."""
        missing = [
            ordinal
            for ordinal in range(len(self._tasks))
            if ordinal not in self.seen
        ]
        per_x: Dict[int, int] = {x: 0 for x in self.expected_by_x}
        for ordinal in self.seen:
            per_x[self._tasks[ordinal].x] += 1
        return {
            "expected_records": len(self._tasks),
            "merged_records": len(self.seen),
            "duplicates": self.duplicates,
            "foreign_records": self.foreign_records,
            "missing_ordinals": missing,
            "points": {
                str(x): {"merged": per_x[x], "expected": self.expected_by_x[x]}
                for x in self.expected_by_x
            },
        }


@dataclass
class ClusterShardReport:
    """What happened to one shard across all its issues."""

    index: int
    path: str
    status: str
    attempts: int
    deaths: int
    records: int
    owned: int
    wall_s: float

    @property
    def re_issues(self) -> int:
        return max(0, self.attempts - 1)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["re_issues"] = self.re_issues
        data["wall_s"] = round(self.wall_s, 6)
        return data


@dataclass
class ClusterReport:
    """Observability record of one :func:`run_cluster` call."""

    part: str
    shard_count: int
    workers: int
    wall_s: float = 0.0
    shards: List[ClusterShardReport] = field(default_factory=list)
    coverage: dict = field(default_factory=dict)
    rows: int = 0
    partial_rows: int = 0
    complete: bool = False

    @property
    def deaths(self) -> int:
        return sum(shard.deaths for shard in self.shards)

    @property
    def re_issues(self) -> int:
        return sum(shard.re_issues for shard in self.shards)

    def to_dict(self) -> dict:
        return {
            "part": self.part,
            "shard_count": self.shard_count,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "complete": self.complete,
            "rows": self.rows,
            "partial_rows": self.partial_rows,
            "deaths": self.deaths,
            "re_issues": self.re_issues,
            "shards": [shard.to_dict() for shard in self.shards],
            "coverage": self.coverage,
        }

    def summary(self) -> str:
        note = ""
        if self.deaths:
            note = f", {self.deaths} death(s), {self.re_issues} re-issue(s)"
        if not self.complete:
            missing = len(self.coverage.get("missing_ordinals", ()))
            note += f", DEGRADED: {missing} graph(s) missing"
        return (
            f"cluster {self.part}: {self.rows} row(s) from "
            f"{self.shard_count} shard(s) on {self.workers} worker(s) "
            f"in {self.wall_s:.2f}s{note}"
        )


@dataclass
class ClusterStatus:
    """Live snapshot handed to the ``heartbeat`` hook every poll."""

    shard_count: int
    done: int
    running: int
    pending: int
    failed: int
    deaths: int
    merged_records: int
    expected_records: int
    rows_released: int
    wall_s: float


@dataclass
class _ShardState:
    spec: ShardSpec
    path: str
    status: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    deaths: int = 0
    procs: List[subprocess.Popen] = field(default_factory=list)
    last_progress: float = 0.0
    next_eligible: float = 0.0
    issued_at: float = 0.0
    wall_s: float = 0.0
    records: int = 0

    @property
    def index(self) -> int:
        return self.spec.shard_index


def run_cluster(
    part: Union[str, CampaignPart],
    config,
    *,
    shards: int,
    out_dir: str,
    workers: int = 0,
    jobs: int = 1,
    heartbeat_timeout: float = 300.0,
    max_retries: int = 2,
    backoff_s: float = 1.0,
    poll_s: float = 0.1,
    allow_missing: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    heartbeat: Optional[Callable[[ClusterStatus], None]] = None,
    faults: Optional[Dict[int, ClusterFault]] = None,
    sys_path: Sequence[str] = (),
    python: Optional[str] = None,
) -> tuple:
    """Run a whole campaign through fault-tolerant local workers.

    Returns ``(rows, report)``.  ``rows`` renders through
    ``part.to_csv`` to bytes identical to ``run_campaign(..., jobs=1)``
    whenever the run completes — enforced by the fault-injection suite
    and the CI smoke leg even across SIGKILLed workers, torn shard
    files, and double-issued shards.

    Args:
        part: Registered part name or a :class:`CampaignPart` whose
            callables are module-level (workers unpickle them).
        config: The campaign preset (must be picklable).
        shards: Number of :class:`ShardSpec` slices to partition into.
        out_dir: Directory for shard JSONL files, worker specs/logs.
        workers: Concurrent local worker processes (``0`` = all CPUs).
        jobs: ``--jobs`` inside each worker (its own process pool).
        heartbeat_timeout: Seconds without a new complete record before
            a running shard is declared dead and its workers killed.
        max_retries: Re-issues allowed per shard after its first issue.
        backoff_s: Base of the exponential re-issue backoff
            (``backoff_s * 2**(deaths-1)`` seconds).
        poll_s: Coordinator poll interval.
        allow_missing: On retry exhaustion, degrade to partial rows
            plus a coverage report instead of raising
            :class:`ClusterError`.
        progress: Optional line sink (row lines exactly like a serial
            campaign, plus lifecycle lines).
        heartbeat: Optional hook observing a :class:`ClusterStatus`
            snapshot after every poll (feeds the CLI status line).
        faults: Optional fault plan per shard index (the test layer).
        sys_path: Extra import-path entries for workers (test modules).
        python: Interpreter for workers (default: ``sys.executable``).
    """
    resolved = get_part(part)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    workers_n = resolve_jobs(workers)
    faults = dict(faults or {})
    os.makedirs(out_dir, exist_ok=True)
    width = len(str(shards - 1))
    states = [
        _ShardState(
            spec=ShardSpec(index, shards),
            path=os.path.join(out_dir, f"shard{index:0{width}d}.jsonl"),
        )
        for index in range(shards)
    ]
    merger = IncrementalMerger(
        resolved,
        config,
        shard_count=shards,
        paths={state.index: state.path for state in states},
    )
    interpreter = python or sys.executable

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    def emit_rows(released: List[CompletedPoint]) -> None:
        for point in released:
            line = resolved.format_progress(point.row)
            say(line + (" [partial]" if point.partial else ""))

    def launch(state: _ShardState, now: float) -> None:
        state.attempts += 1
        fault = faults.get(state.index)
        if fault is not None and state.attempts > 1 and not fault.every_attempt:
            fault = None
        spec_path = os.path.join(
            out_dir, f"shard{state.index:0{width}d}.spec.pkl"
        )
        write_worker_spec(
            spec_path,
            part=part if isinstance(part, str) else resolved,
            config=config,
            shard=state.spec,
            out=state.path,
            jobs=jobs,
            sys_path=sys_path,
            fault=fault,
        )
        n_procs = 2 if fault is not None and fault.double_issue else 1
        log_path = f"{state.path}.log"
        with open(log_path, "ab") as log:
            for _ in range(n_procs):
                state.procs.append(
                    subprocess.Popen(
                        [interpreter, "-m", "repro.parallel.worker", spec_path],
                        stdout=log,
                        stderr=subprocess.STDOUT,
                    )
                )
        state.status = "running"
        state.issued_at = now
        state.last_progress = now
        say(
            f"shard {state.spec}: issued (attempt {state.attempts}"
            + (f", {n_procs} workers" if n_procs > 1 else "")
            + ")"
        )

    def kill_workers(state: _ShardState) -> None:
        for proc in state.procs:
            if proc.poll() is None:
                proc.kill()
        for proc in state.procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                pass
        state.procs = []

    def settle(state: _ShardState, status: str, now: float) -> None:
        state.wall_s += now - state.issued_at
        state.status = status
        kill_workers(state)

    def on_death(state: _ShardState, reason: str, now: float) -> None:
        state.deaths += 1
        settle(state, "pending", now)
        if state.attempts > max_retries:
            state.status = "failed"
            say(
                f"shard {state.spec}: dead ({reason}); retry budget of "
                f"{max_retries} exhausted"
            )
            if not allow_missing:
                for other in states:
                    kill_workers(other)
                raise ClusterError(
                    f"shard {state.spec} failed after {state.attempts} "
                    f"attempt(s): {reason} (re-run with allow_missing / "
                    f"--allow-missing for partial rows, or raise "
                    f"max_retries)"
                )
            return
        delay = backoff_s * (2 ** (state.deaths - 1))
        state.next_eligible = now + delay
        say(
            f"shard {state.spec}: dead ({reason}); re-issue "
            f"{state.deaths} in {delay:.1f}s"
        )

    started = time.perf_counter()
    try:
        while True:
            now = time.perf_counter()
            running = sum(1 for s in states if s.status == "running")
            for state in states:
                if (
                    state.status == "pending"
                    and running < workers_n
                    and now >= state.next_eligible
                ):
                    launch(state, now)
                    running += 1
            for state in states:
                if state.status != "running":
                    continue
                new, released = merger.poll_shard(state.index)
                if new:
                    state.last_progress = now
                    state.records = len(
                        merger.owned(state.index) & merger.seen
                    )
                emit_rows(released)
                if merger.shard_done(state.index):
                    settle(state, "done", now)
                    say(
                        f"shard {state.spec}: complete "
                        f"({state.records} graph(s), "
                        f"attempt {state.attempts})"
                    )
                elif all(proc.poll() is not None for proc in state.procs):
                    codes = sorted(
                        {proc.returncode for proc in state.procs}
                    )
                    on_death(
                        state,
                        f"worker exit {codes} with shard incomplete",
                        now,
                    )
                elif now - state.last_progress > heartbeat_timeout:
                    on_death(
                        state,
                        f"no new records for {heartbeat_timeout:.1f}s",
                        now,
                    )
            if heartbeat is not None:
                heartbeat(
                    ClusterStatus(
                        shard_count=shards,
                        done=sum(1 for s in states if s.status == "done"),
                        running=sum(
                            1 for s in states if s.status == "running"
                        ),
                        pending=sum(
                            1 for s in states if s.status == "pending"
                        ),
                        failed=sum(1 for s in states if s.status == "failed"),
                        deaths=sum(s.deaths for s in states),
                        merged_records=len(merger.seen),
                        expected_records=merger.expected_records,
                        rows_released=len(merger.rows),
                        wall_s=now - started,
                    )
                )
            if all(state.status == "done" for state in states):
                break
            if not any(
                state.status in ("pending", "running") for state in states
            ):
                break  # only failed shards left (allow_missing path)
            time.sleep(poll_s)
    finally:
        for state in states:
            kill_workers(state)

    partial_rows = 0
    if not merger.done:
        # Retry budgets exhausted under allow_missing: degraded-mode
        # completion — fold what arrived, report what did not.
        flushed = merger.flush_incomplete()
        partial_rows = sum(1 for point in flushed if point.partial)
        emit_rows(flushed)

    report = ClusterReport(
        part=resolved.name,
        shard_count=shards,
        workers=workers_n,
        wall_s=time.perf_counter() - started,
        shards=[
            ClusterShardReport(
                index=state.index,
                path=state.path,
                status=state.status,
                attempts=state.attempts,
                deaths=state.deaths,
                records=len(merger.owned(state.index) & merger.seen),
                owned=len(merger.owned(state.index)),
                wall_s=state.wall_s,
            )
            for state in states
        ],
        coverage=merger.coverage(),
        rows=len(merger.rows),
        partial_rows=partial_rows,
        complete=merger.done,
    )
    say(report.summary())
    return [point.row for point in merger.rows], report


__all__ = [
    "ClusterError",
    "ClusterFault",
    "ClusterReport",
    "ClusterShardReport",
    "ClusterStatus",
    "IncrementalMerger",
    "run_cluster",
    "write_worker_spec",
]

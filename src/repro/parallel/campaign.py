"""Fig. 6 campaign orchestration: fan out, aggregate, checkpoint, time.

A *campaign* is one full Fig. 6 sweep — part ``"ab"`` or ``"cd"`` —
executed point-by-point along the X axis.  Within a point, the
per-graph tasks (already carrying their pre-derived seeds) run through
a :class:`~repro.parallel.engine.PoolRunner`; one pool serves the whole
campaign.  Because graphs are pure functions of ``(config, seed)`` and
results are collected in input order, the produced rows — and hence the
CSV — are identical for any ``jobs`` value.

After each point the row is appended to an optional
:class:`~repro.parallel.checkpoint.CampaignCheckpoint`, so a killed
sweep resumes from the last completed X value.  The returned
:class:`CampaignTiming` carries the wall time, the
generate/analyze/simulate stage split, and the worker utilization of
every point — the numbers the CLI prints under ``--progress`` and the
runner stores next to the CSV.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from functools import partial
from typing import Callable, List, Optional, Tuple

from repro.parallel.checkpoint import CampaignCheckpoint, config_fingerprint
from repro.parallel.engine import MapStats, PoolRunner, resolve_jobs

_PARTS = ("ab", "cd")


@dataclass
class PointTiming:
    """Timing record of one X-axis point of a campaign."""

    x: int
    graphs: int
    wall_s: float
    busy_s: float
    utilization: float
    generate_s: float
    analyze_s: float
    simulate_s: float
    resumed: bool = False

    def to_dict(self) -> dict:
        data = asdict(self)
        for key in (
            "wall_s",
            "busy_s",
            "utilization",
            "generate_s",
            "analyze_s",
            "simulate_s",
        ):
            data[key] = round(data[key], 6)
        return data


@dataclass
class CampaignTiming:
    """Aggregated observability of one campaign run."""

    part: str
    jobs: int
    wall_s: float = 0.0
    points: List[PointTiming] = field(default_factory=list)

    @property
    def resumed_points(self) -> int:
        return sum(1 for point in self.points if point.resumed)

    @property
    def busy_s(self) -> float:
        return sum(point.busy_s for point in self.points)

    @property
    def utilization(self) -> float:
        """Whole-campaign worker busy fraction (resumed points excluded)."""
        measured = sum(p.wall_s for p in self.points if not p.resumed)
        if measured <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (measured * self.jobs))

    def stage_totals(self) -> dict:
        return {
            "generate_s": round(sum(p.generate_s for p in self.points), 6),
            "analyze_s": round(sum(p.analyze_s for p in self.points), 6),
            "simulate_s": round(sum(p.simulate_s for p in self.points), 6),
        }

    def to_dict(self) -> dict:
        return {
            "part": self.part,
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "utilization": round(self.utilization, 4),
            "resumed_points": self.resumed_points,
            "stage_totals": self.stage_totals(),
            "points": [point.to_dict() for point in self.points],
        }

    def summary(self) -> str:
        """One human line for ``--progress`` output."""
        stages = self.stage_totals()
        return (
            f"{self.part}: {self.wall_s:.2f}s wall with {self.jobs} "
            f"worker(s), {self.utilization:.0%} busy "
            f"(generate {stages['generate_s']:.2f}s, "
            f"analyze {stages['analyze_s']:.2f}s, "
            f"simulate {stages['simulate_s']:.2f}s"
            + (
                f"; {self.resumed_points} point(s) resumed)"
                if self.resumed_points
                else ")"
            )
        )


def _bindings(part: str):
    from repro.experiments import fig6

    if part == "ab":
        return (
            fig6.run_graph_ab,
            fig6.aggregate_ab,
            fig6.PointAB,
            fig6._format_progress_ab,
        )
    if part == "cd":
        return (
            fig6.run_graph_cd,
            fig6.aggregate_cd,
            fig6.PointCD,
            fig6._format_progress_cd,
        )
    raise ValueError(f"unknown Fig. 6 part {part!r}; use one of {_PARTS}")


def run_campaign(
    part: str,
    config,
    *,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint: Optional[str] = None,
) -> Tuple[list, CampaignTiming]:
    """Run one Fig. 6 sweep; returns ``(rows, timing)``.

    Args:
        part: ``"ab"`` or ``"cd"``.
        config: The sweep preset (:class:`Fig6ABConfig` /
            :class:`Fig6CDConfig`).
        jobs: Worker processes (``0``/negative means every CPU; ``1``
            runs inline with no pool).
        progress: Optional line sink (one line per completed point,
            plus a final timing summary).
        checkpoint: Optional JSON path; completed points are persisted
            there and skipped on the next run with the same ``(part,
            config)``.  The file is kept after completion — delete it
            to force a fresh sweep.
    """
    import time

    from repro.experiments import fig6

    run_graph, aggregate, row_type, fmt = _bindings(part)
    timing = CampaignTiming(part=part, jobs=resolve_jobs(jobs))
    store: Optional[CampaignCheckpoint] = None
    if checkpoint is not None:
        store = CampaignCheckpoint(checkpoint, config_fingerprint(part, config))
        resumable = store.load()
        if resumable and progress is not None:
            progress(f"checkpoint: {resumable} completed point(s) found")

    tasks = fig6.graph_tasks(config)
    rows: list = []
    started = time.perf_counter()
    with PoolRunner(jobs) as pool:
        for x in config.x_values:
            saved = store.completed(x) if store is not None else None
            if saved is not None:
                row = row_type(**saved)
                rows.append(row)
                timing.points.append(
                    PointTiming(
                        x=x,
                        graphs=config.graphs_per_point,
                        wall_s=0.0,
                        busy_s=0.0,
                        utilization=0.0,
                        generate_s=0.0,
                        analyze_s=0.0,
                        simulate_s=0.0,
                        resumed=True,
                    )
                )
                if progress is not None:
                    progress(f"{fmt(row)} [resumed]")
                continue
            point_tasks = [task for task in tasks if task.x == x]
            results, stats = pool.map_ordered(
                partial(run_graph, config), point_tasks
            )
            row = aggregate(x, results)
            rows.append(row)
            timing.points.append(_point_timing(x, results, stats))
            if store is not None:
                store.record(x, asdict(row))
            if progress is not None:
                progress(fmt(row))
    timing.wall_s = time.perf_counter() - started
    if progress is not None:
        progress(timing.summary())
    return rows, timing


def _point_timing(x: int, results, stats: MapStats) -> PointTiming:
    return PointTiming(
        x=x,
        graphs=len(results),
        wall_s=stats.wall_s,
        busy_s=stats.busy_s,
        utilization=stats.utilization,
        generate_s=sum(r.timing.generate_s for r in results),
        analyze_s=sum(r.timing.analyze_s for r in results),
        simulate_s=sum(r.timing.simulate_s for r in results),
    )


__all__ = ["CampaignTiming", "PointTiming", "run_campaign"]

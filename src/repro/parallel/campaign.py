"""Campaign orchestration: stream, aggregate, checkpoint, time.

A *campaign* is one sweep along an X axis — classically the Fig. 6
parts ``"ab"`` / ``"cd"``, but any workload can register a
:class:`CampaignPart` (the benchmark suite registers a synthetic one).
The part bundles everything the engine needs to stay generic: how to
derive the task list, run one graph, fold a point's results into a row,
encode/decode per-graph results for shard files, and render rows as
progress lines and CSV.

Execution is **streaming**: every per-graph task of every pending point
goes into one :meth:`~repro.parallel.engine.PoolRunner.map_consume`
call, results are folded into a
:class:`~repro.parallel.aggregate.CampaignAccumulator` the moment they
arrive, and completed rows are released in X order — appended to the
JSONL checkpoint and printed — while later points are still computing.
No per-point barrier, no per-point result lists: resident memory is
O(points in flight), and a single adaptive chunk stream keeps workers
saturated across heterogeneous point costs.

Because graphs are pure functions of ``(config, seed)`` with seeds
derived upfront, and the per-point fold sorts by replica index, the
produced rows — and hence the CSV — are identical for any ``jobs``
value and identical to the sharded run + merge of
:mod:`repro.parallel.shard`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.parallel.aggregate import CampaignAccumulator, CompletedPoint
from repro.parallel.checkpoint import CampaignCheckpoint, config_fingerprint
from repro.parallel.engine import MapStats, PoolRunner, resolve_jobs


@dataclass(frozen=True)
class CampaignPart:
    """Everything the campaign engine needs to run one kind of sweep.

    Attributes:
        name: Registry key (``"ab"``, ``"cd"``, ...); also the
            checkpoint/shard fingerprint component.
        tasks: ``tasks(config) -> list`` of schedulable units, each
            with ``.x``, ``.graph_index`` and ``.seed`` attributes, in
            the canonical (X-major) order — list position is the global
            ordinal the shard partition is defined over.
        run_graph: Pure worker function ``(config, task) -> result``.
        aggregate: Exact fold ``(x, results) -> row`` (must sort by
            replica index internally so completion order never leaks).
        row_type: Row dataclass (checkpoint rows round-trip through it).
        result_type: Per-graph result dataclass.
        decode_result: Inverse of ``dataclasses.asdict`` for
            ``result_type`` (shard files round-trip results as JSON).
        format_progress: One human line per completed row.
        to_csv: Render rows to the part's CSV text.
        metric: Scalar per-result observable feeding the campaign-wide
            streaming sketches (mean/min/max/percentiles).
        metric_name: Label of that observable in reports.
    """

    name: str
    tasks: Callable[[object], Sequence[object]]
    run_graph: Callable[[object, object], object]
    aggregate: Callable[[int, Sequence[object]], object]
    row_type: type
    result_type: type
    decode_result: Callable[[dict], object]
    format_progress: Callable[[object], str]
    to_csv: Callable[[Sequence[object]], str]
    metric: Callable[[object], float]
    metric_name: str = "sim_ms"


_REGISTRY: Dict[str, CampaignPart] = {}


def register_part(part: CampaignPart) -> CampaignPart:
    """Register ``part`` under its name (idempotent; returns it)."""
    _REGISTRY[part.name] = part
    return part


def get_part(part: Union[str, CampaignPart]) -> CampaignPart:
    """Resolve a part name (or pass a part through).

    The Fig. 6 parts register themselves when
    :mod:`repro.experiments.fig6` is imported; unknown names list the
    registered choices.
    """
    if isinstance(part, CampaignPart):
        return part
    if part not in _REGISTRY:
        from repro.experiments import fig6  # noqa: F401  (registers ab/cd)
    found = _REGISTRY.get(part)
    if found is None:
        raise ValueError(
            f"unknown campaign part {part!r}; "
            f"registered: {tuple(sorted(_REGISTRY))}"
        )
    return found


@dataclass
class PointTiming:
    """Timing record of one X-axis point of a campaign."""

    x: int
    graphs: int
    wall_s: float
    busy_s: float
    utilization: float
    generate_s: float
    analyze_s: float
    simulate_s: float
    resumed: bool = False

    def to_dict(self) -> dict:
        data = asdict(self)
        for key in (
            "wall_s",
            "busy_s",
            "utilization",
            "generate_s",
            "analyze_s",
            "simulate_s",
        ):
            data[key] = round(data[key], 6)
        return data


@dataclass
class CampaignTiming:
    """Aggregated observability of one campaign run."""

    part: str
    jobs: int
    wall_s: float = 0.0
    points: List[PointTiming] = field(default_factory=list)
    #: Final :class:`~repro.parallel.engine.MapStats` of the streaming
    #: map (``None`` when every point was resumed from checkpoint).
    map_stats: Optional[dict] = None
    #: Campaign-wide sketch summary + peak-residency counters from the
    #: streaming accumulator (observability only, never CSV data).
    stream: Optional[dict] = None

    @property
    def resumed_points(self) -> int:
        return sum(1 for point in self.points if point.resumed)

    @property
    def busy_s(self) -> float:
        return sum(point.busy_s for point in self.points)

    @property
    def utilization(self) -> float:
        """Whole-campaign worker busy fraction (resumed points excluded).

        Prefers the streaming map's own wall/busy accounting (point
        walls overlap under cross-point streaming, so summing them
        would overstate the denominator); a fully resumed campaign —
        zero busy seconds, no map — reports 0.0 rather than dividing
        by zero.
        """
        if self.jobs <= 0:
            return 0.0
        if self.map_stats is not None:
            wall = float(self.map_stats.get("wall_s", 0.0))
            busy = float(self.map_stats.get("busy_s", 0.0))
            if wall <= 0.0:
                return 0.0
            return min(1.0, busy / (wall * self.jobs))
        measured = sum(p.wall_s for p in self.points if not p.resumed)
        if measured <= 0.0:
            return 0.0
        return min(1.0, self.busy_s / (measured * self.jobs))

    def stage_totals(self) -> dict:
        return {
            "generate_s": round(sum(p.generate_s for p in self.points), 6),
            "analyze_s": round(sum(p.analyze_s for p in self.points), 6),
            "simulate_s": round(sum(p.simulate_s for p in self.points), 6),
        }

    def to_dict(self) -> dict:
        data = {
            "part": self.part,
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "utilization": round(self.utilization, 4),
            "resumed_points": self.resumed_points,
            "stage_totals": self.stage_totals(),
            "points": [point.to_dict() for point in self.points],
        }
        if self.map_stats is not None:
            data["map"] = self.map_stats
        if self.stream is not None:
            data["stream"] = self.stream
        return data

    def summary(self) -> str:
        """One human line for ``--progress`` output."""
        stages = self.stage_totals()
        return (
            f"{self.part}: {self.wall_s:.2f}s wall with {self.jobs} "
            f"worker(s), {self.utilization:.0%} busy "
            f"(generate {stages['generate_s']:.2f}s, "
            f"analyze {stages['analyze_s']:.2f}s, "
            f"simulate {stages['simulate_s']:.2f}s"
            + (
                f"; {self.resumed_points} point(s) resumed)"
                if self.resumed_points
                else ")"
            )
        )


def run_campaign(
    part: Union[str, CampaignPart],
    config,
    *,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    checkpoint: Optional[str] = None,
    heartbeat: Optional[Callable[[MapStats], None]] = None,
) -> Tuple[list, CampaignTiming]:
    """Run one campaign sweep; returns ``(rows, timing)``.

    Args:
        part: A registered part name (``"ab"`` / ``"cd"``) or a
            :class:`CampaignPart`.
        config: The sweep preset (:class:`Fig6ABConfig` /
            :class:`Fig6CDConfig` / a part-specific config).
        jobs: Worker processes (``0``/negative means every CPU; ``1``
            runs inline with no pool).
        progress: Optional line sink (one line per completed point, in
            X order, plus a final timing summary).
        checkpoint: Optional JSONL path; completed points are appended
            there and skipped on the next run with the same ``(part,
            config)``.  The file is kept after completion — delete it
            to force a fresh sweep.
        heartbeat: Optional hook observing the live
            :class:`~repro.parallel.engine.MapStats` after every
            completed chunk — what feeds the CLI's ``--progress``
            utilization line.
    """
    resolved = get_part(part)
    jobs_n = resolve_jobs(jobs)
    timing = CampaignTiming(part=resolved.name, jobs=jobs_n)

    store: Optional[CampaignCheckpoint] = None
    if checkpoint is not None:
        store = CampaignCheckpoint(
            checkpoint, config_fingerprint(resolved.name, config)
        )
        resumable = store.load()
        if resumable and progress is not None:
            progress(f"checkpoint: {resumable} completed point(s) found")

    x_values = list(config.x_values)
    tasks = resolved.tasks(config)
    expected: Dict[int, int] = {x: 0 for x in x_values}
    for task in tasks:
        expected[task.x] += 1

    acc = CampaignAccumulator(
        [(x, expected[x]) for x in x_values],
        resolved.aggregate,
        metric=resolved.metric,
    )
    rows_by_x: Dict[int, object] = {}
    records: Dict[int, PointTiming] = {}

    def handle(done_points: List[CompletedPoint]) -> None:
        for done in done_points:
            rows_by_x[done.x] = done.row
            records[done.x] = _point_timing(done, expected[done.x], jobs_n)
            if store is not None and not done.resumed:
                store.record(done.x, asdict(done.row))
            if progress is not None:
                line = resolved.format_progress(done.row)
                progress(line + (" [resumed]" if done.resumed else ""))

    resumed_x = set()
    if store is not None:
        for x in x_values:
            saved = store.completed(x)
            if saved is not None:
                resumed_x.add(x)
                handle(acc.resume(x, resolved.row_type(**saved)))

    work = [task for task in tasks if task.x not in resumed_x]
    started = time.perf_counter()
    map_stats: Optional[MapStats] = None
    if work:
        with PoolRunner(jobs) as pool:

            def on_item(index: int, result: object, elapsed: float) -> None:
                handle(
                    acc.add(
                        work[index].x,
                        result,
                        elapsed_s=elapsed,
                        now=time.perf_counter(),
                    )
                )

            map_stats = pool.map_consume(
                partial(resolved.run_graph, config),
                work,
                on_item=on_item,
                heartbeat=heartbeat,
            )
    timing.wall_s = time.perf_counter() - started
    timing.points = [records[x] for x in x_values]
    timing.map_stats = map_stats.to_dict() if map_stats is not None else None
    timing.stream = acc.summary()
    if store is not None:
        store.close()
    if progress is not None:
        progress(timing.summary())
    return [rows_by_x[x] for x in x_values], timing


def _point_timing(
    done: CompletedPoint, expected: int, jobs: int
) -> PointTiming:
    if done.resumed:
        return PointTiming(
            x=done.x,
            graphs=expected,
            wall_s=0.0,
            busy_s=0.0,
            utilization=0.0,
            generate_s=0.0,
            analyze_s=0.0,
            simulate_s=0.0,
            resumed=True,
        )
    utilization = 0.0
    if done.wall_s > 0.0 and jobs > 0:
        utilization = min(1.0, done.busy_s / (done.wall_s * jobs))
    return PointTiming(
        x=done.x,
        graphs=len(done.results),
        wall_s=done.wall_s,
        busy_s=done.busy_s,
        utilization=utilization,
        generate_s=sum(r.timing.generate_s for r in done.results),
        analyze_s=sum(r.timing.analyze_s for r in done.results),
        simulate_s=sum(r.timing.simulate_s for r in done.results),
    )


__all__ = [
    "CampaignPart",
    "CampaignTiming",
    "PointTiming",
    "get_part",
    "register_part",
    "run_campaign",
]

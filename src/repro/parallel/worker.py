"""Subprocess entry point of cluster workers.

The coordinator (:mod:`repro.parallel.cluster`) launches each shard as
``python -m repro.parallel.worker SPECFILE``.  The spec file holds two
consecutive pickles: first a plain list of ``sys.path`` entries to
prepend (so the campaign part's defining modules resolve before the
second pickle is loaded), then the payload dict — the part (a name to
resolve through the registry, or a pickled :class:`CampaignPart`
whose callables are module-level functions), the config, the shard
spec, the output path, the per-worker ``jobs`` count, and an optional
:class:`~repro.parallel.cluster.ClusterFault`.

A worker is deliberately nothing more than :func:`run_shard` plus the
fault-injection layer: all coordination (liveness, retry, merge) lives
on the coordinator side, reading the shard's append-only JSONL file.
The fault layer wraps ``JsonlLog.append`` *in this process only* so a
test or CI leg can make a worker SIGKILL itself mid-shard, leave a torn
half-record behind, or stall without exiting — the failure modes the
coordinator's watchdog must survive.
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import time


def _install_fault(fault) -> None:
    """Wrap ``JsonlLog.append`` in this process with the fault plan."""
    from repro.parallel.checkpoint import JsonlLog

    original = JsonlLog.append
    state = {"count": 0}

    def faulted_append(self, record) -> None:
        original(self, record)
        state["count"] += 1
        n = state["count"]
        if (
            fault.stall_after_records is not None
            and n >= fault.stall_after_records
        ):  # pragma: no cover - subprocess only
            while True:
                time.sleep(3600)
        if (
            fault.die_after_records is not None
            and n >= fault.die_after_records
        ):  # pragma: no cover - subprocess only
            if fault.tear:
                # A kill mid-write: half a record, no newline.  The
                # coordinator's tail must never consume it and the
                # re-issued worker must truncate it away.
                os.write(self._fd, b'{"ordinal": 0, "x": 0, "resu')
            os.kill(os.getpid(), signal.SIGKILL)

    JsonlLog.append = faulted_append


def load_spec(path: str) -> dict:
    """Read a worker spec file, extending ``sys.path`` first.

    The path entries are pickled separately *before* the payload so the
    part/config classes (which may live in a test or benchmark module)
    are importable by the time the payload unpickles.
    """
    with open(path, "rb") as handle:
        for entry in pickle.load(handle):
            if entry not in sys.path:
                sys.path.insert(0, entry)
        return pickle.load(handle)


def run_spec(path: str) -> int:
    """Execute one worker spec: ``run_shard`` under the fault plan."""
    payload = load_spec(path)
    fault = payload.get("fault")
    if fault is not None:
        _install_fault(fault)
    from repro.parallel.shard import ShardSpec, run_shard

    run_shard(
        payload["part"],
        payload["config"],
        ShardSpec.parse(payload["shard"]),
        payload["out"],
        jobs=payload.get("jobs", 1),
    )
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.parallel.worker SPECFILE", file=sys.stderr)
        return 2
    return run_spec(argv[0])


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())

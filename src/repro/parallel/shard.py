"""Scenario-space sharding: split a campaign, merge to identical bytes.

A campaign's scenario space is its task list — every ``(x, replica,
seed)`` triple, seeds pre-derived from the config in a fixed order (see
:func:`repro.experiments.fig6.graph_tasks`).  A :class:`ShardSpec`
partitions that list by **global ordinal**: shard ``i`` of ``n`` owns
every task whose list position satisfies ``ordinal % n == i``.  The
partition is a pure function of ``(config, shard spec)`` — no
coordination, no shared state — so shards can run on separate machines
and at different times.

:func:`run_shard` executes one shard and writes its per-graph results
to a JSONL file (header + one record per graph).  The file doubles as
the shard's own resume log: re-running against a partial file skips the
graphs already recorded, tolerating a torn final line exactly like the
campaign checkpoint.

:func:`merge_shards` reads any permutation of the shard files,
verifies they cover the whole task list, regroups results per X value
and applies the part's **exact** aggregation fold — the same callable,
over the same floats (JSON round-trips Python floats losslessly), in
the same replica order a serial run uses.  The merged rows, and the CSV
rendered from them, are therefore byte-identical to ``--jobs 1``; the
golden and hypothesis suites enforce this for arbitrary shard counts
and orders.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.parallel.campaign import CampaignPart, get_part
from repro.parallel.checkpoint import JsonlLog, config_fingerprint
from repro.parallel.engine import MapStats, PoolRunner

#: Format tag of shard result file headers.
SHARD_FORMAT = "repro-shard-jsonl/1"

_SPEC_RE = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a campaign's scenario space: ``shard_index/shard_count``.

    Ownership is round-robin over global task ordinals, so every shard
    receives a near-equal share of *every* X-axis point — the work of a
    shard is balanced even when per-point costs vary wildly along the
    sweep.
    """

    shard_index: int
    shard_count: int

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ValueError(
                f"shard_index must be in [0, {self.shard_count}), "
                f"got {self.shard_index}"
            )

    def owns(self, ordinal: int) -> bool:
        """Whether this shard runs the task at global position ``ordinal``."""
        return ordinal % self.shard_count == self.shard_index

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI spelling ``"INDEX/COUNT"`` (e.g. ``"0/4"``)."""
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ValueError(
                f"invalid shard spec {text!r}; expected INDEX/COUNT, e.g. 0/4"
            )
        return cls(shard_index=int(match.group(1)), shard_count=int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.shard_index}/{self.shard_count}"


@dataclass
class ShardRunReport:
    """What one :func:`run_shard` call did."""

    shard: ShardSpec
    path: str
    n_owned: int
    n_resumed: int
    n_run: int
    map_stats: Optional[dict] = None

    def summary(self) -> str:
        wall = (self.map_stats or {}).get("wall_s", 0.0)
        note = f", {self.n_resumed} resumed" if self.n_resumed else ""
        return (
            f"shard {self.shard}: {self.n_run}/{self.n_owned} graph(s) "
            f"run in {wall:.2f}s{note} -> {self.path}"
        )


def _shard_log(
    path: str, part: CampaignPart, config, shard: Optional[ShardSpec]
) -> JsonlLog:
    header: Dict[str, object] = {
        "part": part.name,
        "fingerprint": config_fingerprint(part.name, config),
    }
    if shard is not None:
        header["shard_index"] = shard.shard_index
        header["shard_count"] = shard.shard_count
    return JsonlLog(path, expected_format=SHARD_FORMAT, header=header)


def run_shard(
    part: Union[str, CampaignPart],
    config,
    shard: ShardSpec,
    out_path: str,
    *,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    heartbeat: Optional[Callable[[MapStats], None]] = None,
) -> ShardRunReport:
    """Run one shard of a campaign, appending per-graph results to JSONL.

    The output file is also the resume log: when it already holds a
    compatible header (same part, config fingerprint and shard spec),
    recorded graphs are skipped and fresh results are appended — so a
    killed shard run continues where it stopped.  Results are appended
    in completion order; order never matters downstream because
    :func:`merge_shards` regroups by ordinal.
    """
    resolved = get_part(part)
    tasks = resolved.tasks(config)
    owned: List[Tuple[int, object]] = [
        (ordinal, task)
        for ordinal, task in enumerate(tasks)
        if shard.owns(ordinal)
    ]
    log = _shard_log(out_path, resolved, config, shard)
    done = {record["ordinal"] for record in log.load() if "ordinal" in record}
    work = [(ordinal, task) for ordinal, task in owned if ordinal not in done]
    if progress is not None and done:
        progress(f"shard {shard}: {len(done)} recorded graph(s) found")

    map_stats: Optional[MapStats] = None
    if work:
        with PoolRunner(jobs) as pool:

            def on_item(index: int, result: object, elapsed: float) -> None:
                ordinal, task = work[index]
                log.append(
                    {
                        "ordinal": ordinal,
                        "x": task.x,
                        "graph_index": task.graph_index,
                        "result": asdict(result),
                    }
                )

            map_stats = pool.map_consume(
                partial(resolved.run_graph, config),
                [task for _, task in work],
                on_item=on_item,
                heartbeat=heartbeat,
            )
    log.close()
    report = ShardRunReport(
        shard=shard,
        path=out_path,
        n_owned=len(owned),
        n_resumed=len(done),
        n_run=len(work),
        map_stats=map_stats.to_dict() if map_stats is not None else None,
    )
    if progress is not None:
        progress(report.summary())
    return report


def _merge_gap_message(
    missing: Sequence[int],
    total: int,
    shard_count: Optional[int],
    owners: Dict[int, List[str]],
) -> str:
    """Spell out a coverage gap: which ordinals, owed by which files.

    Every missing ordinal is attributed to the shard index that owns it
    under the round-robin partition, and each such index to the file(s)
    that declared it — or to the absence of any file for it — so the
    operator knows exactly which shard to (re-)run or fetch.
    """
    preview = ", ".join(str(o) for o in missing[:20])
    if len(missing) > 20:
        preview += f", ... ({len(missing) - 20} more)"
    lines = [
        f"merge incomplete: {len(missing)} of {total} graph(s) missing "
        f"(ordinals {preview})"
    ]
    if shard_count:
        by_owner: Dict[int, List[int]] = {}
        for ordinal in missing:
            by_owner.setdefault(ordinal % shard_count, []).append(ordinal)
        for index in sorted(by_owner):
            gap = by_owner[index]
            head = ", ".join(str(o) for o in gap[:10])
            if len(gap) > 10:
                head += f", ... ({len(gap) - 10} more)"
            paths = owners.get(index)
            if paths:
                source = (
                    f"expected in {paths[0]} (file present but partial)"
                    if len(paths) == 1
                    else "expected in " + " or ".join(paths) + " (partial)"
                )
            else:
                source = (
                    f"no file supplied for shard {index}/{shard_count}"
                )
            lines.append(
                f"  shard {index}/{shard_count} owes ordinal(s) {head}: "
                f"{source}"
            )
    return "\n".join(lines)


def merge_shards(
    part: Union[str, CampaignPart],
    config,
    shard_paths: Sequence[str],
) -> list:
    """Merge shard result files into the campaign's rows — exact bytes.

    Accepts the shard files in **any order** and from **any shard
    count** (all files must agree on it); validates that together they
    cover every task of the campaign, then applies the part's
    aggregation fold per X value over replica-ordered results — the
    identical float operations a serial run performs, so
    ``part.to_csv(rows)`` is byte-identical to a ``--jobs 1`` run.

    Raises:
        ValueError: A file is not a shard file of this ``(part,
            config)``, shard counts disagree, or tasks are missing
            (the message names the missing ordinals and the shard
            file expected to own each of them).
    """
    resolved = get_part(part)
    tasks = resolved.tasks(config)
    records: Dict[int, dict] = {}
    shard_count: Optional[int] = None
    owners: Dict[int, List[str]] = {}
    for path in shard_paths:
        log = _shard_log(path, resolved, config, shard=None)
        rows = log.load()
        header = log.loaded_header
        if header is None:
            raise ValueError(
                f"{path}: not a shard result file of part "
                f"{resolved.name!r} with this config (wrong or torn header)"
            )
        count = header.get("shard_count")
        if shard_count is None:
            shard_count = count if isinstance(count, int) else None
        elif count != shard_count:
            raise ValueError(
                f"{path}: shard_count {count} disagrees with {shard_count} "
                f"from earlier files"
            )
        index = header.get("shard_index")
        if isinstance(index, int):
            owners.setdefault(index, []).append(path)
        for record in rows:
            ordinal = record.get("ordinal")
            if isinstance(ordinal, int) and 0 <= ordinal < len(tasks):
                records[ordinal] = record
    missing = [o for o in range(len(tasks)) if o not in records]
    if missing:
        raise ValueError(_merge_gap_message(missing, len(tasks), shard_count, owners))
    by_x: Dict[int, List[object]] = {x: [] for x in config.x_values}
    for ordinal, task in enumerate(tasks):
        by_x[task.x].append(resolved.decode_result(records[ordinal]["result"]))
    return [resolved.aggregate(x, by_x[x]) for x in config.x_values]


__all__ = [
    "SHARD_FORMAT",
    "ShardRunReport",
    "ShardSpec",
    "merge_shards",
    "run_shard",
]

"""Disparity diagnosis: explain *why* a bound is what it is.

A bound that merely says "431 ms" doesn't tell a designer what to fix.
:func:`explain_disparity` decomposes the task-level worst case into its
mechanics:

* the binding pair of chains and their sampling windows;
* the per-hop Lemma 4 budgets of both chains, largest first — the hops
  worth re-mapping, re-prioritizing, or speeding up;
* the effect each available lever would have: the Theorem 1 vs
  Theorem 2 gap (structure), the Algorithm 1 shift (buffering), and
  the window *widths* (the irreducible part — no buffer can shrink a
  window, only move it).

The report renders as plain text (:func:`render_explanation`) for CLI
and notebook use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.buffers.sizing import BufferDesign, design_buffer_pair
from repro.chains.backward import BackwardBoundsCache, hop_budget
from repro.core.disparity import worst_case_disparity
from repro.core.pairwise import PairwiseResult, disparity_bound_independent
from repro.model.chain import Chain
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time, format_time


@dataclass(frozen=True)
class HopContribution:
    """One hop's Lemma 4 budget within a chain."""

    producer: str
    consumer: str
    budget: Time
    same_unit: bool
    producer_is_hp: bool


@dataclass(frozen=True)
class DisparityExplanation:
    """Structured account of a task's worst-case disparity bound."""

    task: str
    bound: Time
    p_diff_bound: Time
    binding_pair: Optional[PairwiseResult]
    hops_lam: Tuple[HopContribution, ...]
    hops_nu: Tuple[HopContribution, ...]
    buffer_design: Optional[BufferDesign]
    window_width_lam: Optional[Time]
    window_width_nu: Optional[Time]

    @property
    def structural_gain(self) -> Time:
        """How much Theorem 2 saved over Theorem 1 on the binding pair."""
        return self.p_diff_bound - self.bound

    @property
    def buffering_gain(self) -> Time:
        """How much Algorithm 1 would further save (its shift ``L``)."""
        if self.buffer_design is None:
            return 0
        return self.buffer_design.shift


def _hop_contributions(chain: Chain, system: System) -> Tuple[HopContribution, ...]:
    hops = []
    for producer, consumer in chain.edges():
        hops.append(
            HopContribution(
                producer=producer,
                consumer=consumer,
                budget=hop_budget(system, producer, consumer),
                same_unit=system.same_unit(producer, consumer),
                producer_is_hp=system.same_unit(producer, consumer)
                and system.in_hp(producer, consumer),
            )
        )
    return tuple(sorted(hops, key=lambda h: -h.budget))


def explain_disparity(
    system: System,
    task: str,
    *,
    truncate_suffix: bool = True,
) -> DisparityExplanation:
    """Build the full diagnosis for ``task``'s S-diff bound."""
    cache = BackwardBoundsCache(system)
    result = worst_case_disparity(
        system, task, method="forkjoin", truncate_suffix=truncate_suffix,
        cache=cache,
    )
    binding = result.worst_pair
    if binding is None:
        return DisparityExplanation(
            task=task,
            bound=0,
            p_diff_bound=0,
            binding_pair=None,
            hops_lam=(),
            hops_nu=(),
            buffer_design=None,
            window_width_lam=None,
            window_width_nu=None,
        )
    p_result = disparity_bound_independent(binding.lam, binding.nu, cache)
    design = design_buffer_pair(
        binding.lam, binding.nu, cache, truncate_suffix=truncate_suffix
    )
    return DisparityExplanation(
        task=task,
        bound=result.bound,
        p_diff_bound=p_result.bound,
        binding_pair=binding,
        hops_lam=_hop_contributions(binding.lam, system),
        hops_nu=_hop_contributions(binding.nu, system),
        buffer_design=design,
        window_width_lam=(
            binding.window_lam.width if binding.window_lam is not None else None
        ),
        window_width_nu=(
            binding.window_nu.width if binding.window_nu is not None else None
        ),
    )


def render_explanation(explanation: DisparityExplanation, *, top_hops: int = 4) -> str:
    """Plain-text rendering of a diagnosis."""
    lines: List[str] = []
    lines.append(
        f"worst-case time disparity of {explanation.task!r}: "
        f"{format_time(explanation.bound)} (S-diff)"
    )
    if explanation.binding_pair is None:
        lines.append("  single-chain task: no disparity to explain")
        return "\n".join(lines)
    binding = explanation.binding_pair
    lines.append(f"  binding pair (analyzed at {binding.analyzed_task!r}):")
    lines.append(f"    lam: {' -> '.join(binding.lam.tasks)}")
    lines.append(f"    nu:  {' -> '.join(binding.nu.tasks)}")
    lines.append(
        f"  Theorem 1 would give {format_time(explanation.p_diff_bound)} "
        f"(structure saves {format_time(explanation.structural_gain)})"
    )
    if explanation.window_width_lam is not None:
        lines.append(
            f"  sampling window widths: lam "
            f"{format_time(explanation.window_width_lam)}, nu "
            f"{format_time(explanation.window_width_nu)} "
            f"(irreducible by buffering)"
        )
    for label, hops in (("lam", explanation.hops_lam), ("nu", explanation.hops_nu)):
        lines.append(f"  largest hop budgets on {label}:")
        for hop in hops[:top_hops]:
            kind = (
                "same unit, hp"
                if hop.producer_is_hp
                else ("same unit, lp" if hop.same_unit else "cross unit")
            )
            lines.append(
                f"    {hop.producer} -> {hop.consumer}: "
                f"{format_time(hop.budget)} ({kind})"
            )
    design = explanation.buffer_design
    if design is not None and design.channel is not None:
        lines.append(
            f"  Algorithm 1: buffer {design.channel[0]} -> {design.channel[1]} "
            f"at capacity {design.capacity} to save {format_time(design.shift)}"
        )
    else:
        lines.append("  Algorithm 1: windows already aligned; no buffer gain")
    return "\n".join(lines)

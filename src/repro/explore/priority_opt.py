"""Priority assignment optimization for disparity (extension).

The paper optimizes buffers; priorities are another lever.  Lemma 4's
same-unit hop budget drops from ``T + R − (W + B)`` to ``T`` when the
producer has *higher* priority than its consumer, so priority orders
that respect the data flow shrink the backward-time windows — and the
disparity bound with them.  But priorities also set response times
(the ``R`` terms everywhere), so the effect is global and non-convex;
this module provides a deterministic local search:

* start from the current assignment (typically rate-monotonic);
* repeatedly try swapping priority levels of task pairs sharing a
  unit, keeping a swap when the target task's S-diff bound improves
  and the system stays schedulable;
* stop at a local optimum or after ``max_rounds``.

This never degrades the bound (the search is monotone) and keeps every
intermediate assignment schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.core.disparity import disparity_bound
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time


@dataclass(frozen=True)
class PriorityOptResult:
    """Outcome of the priority search."""

    system: System
    bound_before: Time
    bound_after: Time
    swaps_applied: Tuple[Tuple[str, str], ...]
    evaluations: int

    @property
    def improved(self) -> bool:
        """True when the search strictly reduced the bound."""
        return self.bound_after < self.bound_before


def _swap_priorities(system: System, a: str, b: str) -> Optional[System]:
    """A new system with the priorities of ``a`` and ``b`` exchanged.

    Returns ``None`` when the swapped system is unschedulable.
    """
    graph = system.graph.copy()
    task_a = graph.task(a)
    task_b = graph.task(b)
    graph.replace_task(task_a.with_priority(task_b.priority))
    graph.replace_task(task_b.with_priority(task_a.priority))
    try:
        return System.build(graph)
    except ModelError:
        return None


def optimize_priorities(
    system: System,
    task: str,
    *,
    max_rounds: int = 4,
    method: str = "forkjoin",
) -> PriorityOptResult:
    """Local search over same-unit priority swaps minimizing S-diff.

    Only tasks that actually execute (non-instantaneous) are swapped;
    message tasks participate (reordering CAN identifiers is a real
    design lever).
    """
    if max_rounds < 1:
        raise ModelError(f"max_rounds must be >= 1, got {max_rounds}")
    current = system
    bound_before = disparity_bound(system, task, method=method)
    best = bound_before
    applied: List[Tuple[str, str]] = []
    evaluations = 1

    by_unit: Dict[str, List[str]] = {}
    for t in system.graph.tasks:
        if t.is_instantaneous or t.ecu is None:
            continue
        by_unit.setdefault(t.ecu, []).append(t.name)

    for _round in range(max_rounds):
        improved = False
        for unit_tasks in by_unit.values():
            for a, b in combinations(sorted(unit_tasks), 2):
                candidate = _swap_priorities(current, a, b)
                if candidate is None:
                    continue
                evaluations += 1
                value = disparity_bound(candidate, task, method=method)
                if value < best:
                    current, best = candidate, value
                    applied.append((a, b))
                    improved = True
        if not improved:
            break
    return PriorityOptResult(
        system=current,
        bound_before=bound_before,
        bound_after=best,
        swaps_applied=tuple(applied),
        evaluations=evaluations,
    )

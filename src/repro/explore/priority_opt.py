"""Priority assignment optimization for disparity (extension).

The paper optimizes buffers; priorities are another lever.  Lemma 4's
same-unit hop budget drops from ``T + R − (W + B)`` to ``T`` when the
producer has *higher* priority than its consumer, so priority orders
that respect the data flow shrink the backward-time windows — and the
disparity bound with them.  But priorities also set response times
(the ``R`` terms everywhere), so the effect is global and non-convex;
this module provides a deterministic local search:

* start from the current assignment (typically rate-monotonic);
* repeatedly try swapping priority levels of task pairs sharing a
  unit, keeping a swap when the target task's S-diff bound improves
  and the system stays schedulable;
* stop at a local optimum or after ``max_rounds``.

This never degrades the bound (the search is monotone) and keeps every
intermediate assignment schedulable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.core.disparity import disparity_bound
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time


@dataclass(frozen=True)
class PriorityOptResult:
    """Outcome of the priority search.

    ``observed_before`` / ``observed_after`` are the max observed
    disparities of the start and final assignments over paired batched
    replications (same seeds and offset draws on both sides, so the
    pair is directly comparable); ``None`` unless the search requested
    them via ``observed_sims``.
    """

    system: System
    bound_before: Time
    bound_after: Time
    swaps_applied: Tuple[Tuple[str, str], ...]
    evaluations: int
    observed_before: Optional[Time] = None
    observed_after: Optional[Time] = None

    @property
    def improved(self) -> bool:
        """True when the search strictly reduced the bound."""
        return self.bound_after < self.bound_before


def _swap_priorities(system: System, a: str, b: str) -> Optional[System]:
    """A new system with the priorities of ``a`` and ``b`` exchanged.

    Returns ``None`` when the swapped system is unschedulable.
    """
    graph = system.graph.copy()
    task_a = graph.task(a)
    task_b = graph.task(b)
    graph.replace_task(task_a.with_priority(task_b.priority))
    graph.replace_task(task_b.with_priority(task_a.priority))
    try:
        return System.build(graph)
    except ModelError:
        return None


def _observed_pair(
    system: System,
    final: System,
    task: str,
    sims: int,
    duration: Optional[Time],
    warmup: Time,
    seed: int,
) -> Tuple[Time, Time]:
    """Paired observed disparities of the start and final assignments.

    The base scenario is compiled once; the final assignment is a
    ``priorities`` delta view of it (only the per-unit rank tables are
    rebuilt — release grids, stream tables, the provenance domain and
    the monitored closure stay shared).  Both sides replay the same
    ``(seed, offsets)`` draws, so the pair isolates the effect of the
    reassignment.
    """
    if duration is None or duration <= 0:
        raise ModelError(
            "observed_sims > 0 requires a positive observed_duration"
        )
    from repro.sim.batch import compile_scenario, run_batch

    base = compile_scenario(system, task)
    before = run_batch(
        system,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        compiled=base,
    ).max_disparity
    changed = {
        t.name: t.priority
        for t in final.graph.tasks
        if t.priority != system.graph.task(t.name).priority
    }
    after_compiled = (
        base.edit(priorities=changed).compiled if changed else base
    )
    after = run_batch(
        final,
        task,
        sims=sims,
        duration=duration,
        warmup=warmup,
        rng=random.Random(seed),
        compiled=after_compiled,
    ).max_disparity
    return before, after


def optimize_priorities(
    system: System,
    task: str,
    *,
    max_rounds: int = 4,
    method: str = "forkjoin",
    observed_sims: int = 0,
    observed_duration: Optional[Time] = None,
    observed_warmup: Time = 0,
    observed_seed: int = 0,
) -> PriorityOptResult:
    """Local search over same-unit priority swaps minimizing S-diff.

    Only tasks that actually execute (non-instantaneous) are swapped;
    message tasks participate (reordering CAN identifiers is a real
    design lever).  With ``observed_sims > 0`` the start and final
    assignments are additionally measured by paired batched
    replications (``observed_duration`` horizon, shared draws), the
    final one evaluated through a priority delta view of the start's
    compiled scenario — see :class:`PriorityOptResult`.
    """
    if max_rounds < 1:
        raise ModelError(f"max_rounds must be >= 1, got {max_rounds}")
    current = system
    bound_before = disparity_bound(system, task, method=method)
    best = bound_before
    applied: List[Tuple[str, str]] = []
    evaluations = 1

    by_unit: Dict[str, List[str]] = {}
    for t in system.graph.tasks:
        if t.is_instantaneous or t.ecu is None:
            continue
        by_unit.setdefault(t.ecu, []).append(t.name)

    for _round in range(max_rounds):
        improved = False
        for unit_tasks in by_unit.values():
            for a, b in combinations(sorted(unit_tasks), 2):
                candidate = _swap_priorities(current, a, b)
                if candidate is None:
                    continue
                evaluations += 1
                value = disparity_bound(candidate, task, method=method)
                if value < best:
                    current, best = candidate, value
                    applied.append((a, b))
                    improved = True
        if not improved:
            break
    observed_before = observed_after = None
    if observed_sims > 0:
        observed_before, observed_after = _observed_pair(
            system,
            current,
            task,
            observed_sims,
            observed_duration,
            observed_warmup,
            observed_seed,
        )
    return PriorityOptResult(
        system=current,
        bound_before=bound_before,
        bound_after=best,
        swaps_applied=tuple(applied),
        evaluations=evaluations,
        observed_before=observed_before,
        observed_after=observed_after,
    )

"""Design-space exploration around the disparity bounds (extension).

Section IV's message is that some intuitive design levers (raising a
task's sampling frequency) do not move the worst-case time disparity,
while others (buffer sizing) do.  These helpers turn that observation
into tooling a system designer can sweep:

* :func:`period_sensitivity` — re-analyze a task's disparity bound for
  several candidate periods of one task (the Fig. 4 experiment as a
  reusable function);
* :func:`buffer_capacity_sweep` — disparity bound as a function of one
  channel's FIFO capacity, exposing the sawtooth the window alignment
  produces (optimal at Algorithm 1's choice, worse beyond it);
* :func:`disparity_margins` — per-task slack against a requirement,
  for requirement budgeting across an application.

All sweeps re-run the full analysis per candidate (response times
included, since periods change them), so results are exact rather than
incremental approximations.  Each sweep can additionally measure an
*observed* disparity per candidate (``observed_sims`` batched
replications through :func:`repro.sim.batch.run_batch` — within a
candidate every replication is an offset-delta replay of shared
compiled tables).  With ``jobs=1`` the base scenario is compiled
**once** and every candidate becomes a structural delta view of it
(:meth:`repro.sim.batch.CompiledScenario.edit`): a period candidate
invalidates only the edited task's release grids, a capacity candidate
only the channel tables, everything else stays shared.  Worker
processes (``jobs > 1``) compile per candidate instead (compiled
scenarios do not cross process boundaries); per-candidate seeds are
derived up front from ``seed`` in input order, so the observed column
is identical for any ``jobs`` and for views on vs. off.

Both sweeps accept ``semantics="let"`` to retarget the candidate
analysis to the LET backward bounds (:mod:`repro.let`) *and* replay
the observed replications under LET data flow — the pair stays
consistent, exactly like an ``AnalysisSession`` constructed with
``bounds_strategy=backward_bounds_let, semantics="let"``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.disparity import disparity_bound
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time


@dataclass(frozen=True)
class SweepPoint:
    """One candidate design and its resulting disparity bound.

    ``observed`` is the max disparity over the candidate's batched
    replications (``None`` unless the sweep requested them and the
    candidate is schedulable) — the empirical lower bound next to the
    analytic upper bound.
    """

    value: int
    bound: Optional[Time]
    schedulable: bool
    observed: Optional[Time] = None


@dataclass(frozen=True)
class _ObservedSpec:
    """Per-sweep replication request plus one candidate's seed."""

    sims: int
    duration: Time
    warmup: Time
    point_seed: int
    semantics: str = "implicit"


def _observe(
    system: System,
    analyzed_task: str,
    spec: Optional[_ObservedSpec],
    compiled=None,
) -> Optional[Time]:
    """Max observed disparity of one candidate (batched replications).

    ``compiled`` is the candidate's derived
    :class:`~repro.sim.batch.CompiledScenario` when the sweep runs
    inline (``jobs=1``) and could thread one through — the replications
    then replay the structurally shared tables instead of compiling the
    candidate from scratch, with identical results either way.
    """
    if spec is None or spec.sims <= 0:
        return None
    from repro.sim.batch import run_batch

    return run_batch(
        system,
        analyzed_task,
        sims=spec.sims,
        duration=spec.duration,
        warmup=spec.warmup,
        rng=random.Random(spec.point_seed),
        compiled=compiled,
        semantics=spec.semantics,
    ).max_disparity


def _base_scenario(
    system: System, analyzed_task: str, semantics: str, sims: int, jobs: int
):
    """The sweep's shared base scenario, when views can be threaded.

    Compiled scenarios stay within one process, so candidates can only
    share the base when the sweep runs inline (``jobs=1``, the
    :class:`~repro.parallel.engine.PoolRunner` fast path); with worker
    processes each candidate compiles fresh — identical results, no
    sharing.
    """
    if jobs != 1 or sims <= 0:
        return None
    from repro.sim.batch import compile_scenario

    return compile_scenario(system, analyzed_task, semantics=semantics)


def _check_semantics(semantics: str) -> None:
    if semantics not in ("implicit", "let"):
        raise ModelError(
            f"unknown semantics {semantics!r}; "
            f"choose from ('implicit', 'let')"
        )


def _candidate_bound(
    system: System, analyzed_task: str, method: str, semantics: str
) -> Time:
    """One candidate's analytical bound under the sweep's semantics."""
    if semantics == "let":
        from repro.let.analysis import let_bounds_cache

        return disparity_bound(
            system, analyzed_task, method=method, cache=let_bounds_cache(system)
        )
    return disparity_bound(system, analyzed_task, method=method)


def _observed_specs(
    n_points: int,
    sims: int,
    duration: Optional[Time],
    warmup: Time,
    seed: int,
    semantics: str,
) -> List[Optional[_ObservedSpec]]:
    """One spec per candidate, seeds derived up front in input order."""
    if sims <= 0:
        return [None] * n_points
    if duration is None or duration <= 0:
        raise ModelError(
            "observed_sims > 0 requires a positive observed_duration"
        )
    rng = random.Random(seed)
    return [
        _ObservedSpec(
            sims=sims,
            duration=duration,
            warmup=warmup,
            point_seed=rng.randrange(2**31),
            semantics=semantics,
        )
        for _ in range(n_points)
    ]


def _period_point(
    params: Tuple[System, str, str, Time, str, str, Optional[_ObservedSpec]],
    base=None,
) -> SweepPoint:
    """One candidate of :func:`period_sensitivity` (pool-safe).

    ``base`` is the sweep's shared compiled scenario when running
    inline: the candidate's replications then go through a
    ``base.edit(periods={task: period})`` view instead of a fresh
    compile (never sent to pool workers, hence a bound argument rather
    than part of the picklable ``params``).
    """
    system, task, analyzed_task, period, method, semantics, spec = params
    graph = system.graph.copy()
    original = graph.task(task)
    try:
        graph.replace_task(replace(original, period=period))
        candidate = System.build(graph)
        bound = _candidate_bound(candidate, analyzed_task, method, semantics)
        compiled = None
        if base is not None and spec is not None:
            compiled = base.edit(periods={task: period}).compiled
        observed = _observe(candidate, analyzed_task, spec, compiled)
        return SweepPoint(
            value=period, bound=bound, schedulable=True, observed=observed
        )
    except ModelError:
        return SweepPoint(value=period, bound=None, schedulable=False)


def period_sensitivity(
    system: System,
    task: str,
    analyzed_task: str,
    candidate_periods: Sequence[Time],
    *,
    method: str = "forkjoin",
    semantics: str = "implicit",
    jobs: int = 1,
    observed_sims: int = 0,
    observed_duration: Optional[Time] = None,
    observed_warmup: Time = 0,
    seed: int = 0,
) -> List[SweepPoint]:
    """Disparity bound of ``analyzed_task`` per candidate ``T(task)``.

    Candidates that make the system unschedulable are reported with
    ``schedulable=False`` and no bound instead of raising, so a sweep
    over an aggressive range still yields a complete picture.
    Candidates are independent full re-analyses, so ``jobs > 1`` fans
    them across worker processes with identical results.  With
    ``observed_sims > 0`` each schedulable candidate also runs that
    many batched replications of ``observed_duration`` (warmup
    ``observed_warmup``) and reports the max observed disparity; at
    ``jobs=1`` those replications share one base compiled scenario,
    each candidate a ``periods`` delta view of it.
    ``semantics="let"`` evaluates both the bound (LET backward bounds)
    and the observed replications under LET data flow.
    """
    from functools import partial

    from repro.parallel.engine import PoolRunner

    _check_semantics(semantics)
    specs = _observed_specs(
        len(candidate_periods),
        observed_sims,
        observed_duration,
        observed_warmup,
        seed,
        semantics,
    )
    base = _base_scenario(system, analyzed_task, semantics, observed_sims, jobs)
    params = [
        (system, task, analyzed_task, period, method, semantics, spec)
        for period, spec in zip(candidate_periods, specs)
    ]
    with PoolRunner(jobs) as pool:
        results, _ = pool.map_ordered(partial(_period_point, base=base), params)
    return results


def _capacity_point(
    params: Tuple[System, str, str, str, int, str, str, Optional[_ObservedSpec]],
    base=None,
) -> SweepPoint:
    """One candidate of :func:`buffer_capacity_sweep` (pool-safe).

    Inline sweeps thread the shared ``base`` scenario through a
    ``capacities`` delta view — the cheapest structural edit (buffer
    sizes never affect scheduling, so even the schedule memo stays
    shared across every capacity candidate).
    """
    system, src, dst, analyzed_task, capacity, method, semantics, spec = params
    candidate = system.with_channel_capacity(src, dst, capacity)
    bound = _candidate_bound(candidate, analyzed_task, method, semantics)
    compiled = None
    if base is not None and spec is not None:
        compiled = base.edit(capacities={(src, dst): capacity}).compiled
    observed = _observe(candidate, analyzed_task, spec, compiled)
    return SweepPoint(
        value=capacity, bound=bound, schedulable=True, observed=observed
    )


def buffer_capacity_sweep(
    system: System,
    channel: Tuple[str, str],
    analyzed_task: str,
    *,
    max_capacity: int = 12,
    method: str = "forkjoin",
    semantics: str = "implicit",
    jobs: int = 1,
    observed_sims: int = 0,
    observed_duration: Optional[Time] = None,
    observed_warmup: Time = 0,
    seed: int = 0,
) -> List[SweepPoint]:
    """Disparity bound of ``analyzed_task`` per capacity of ``channel``.

    Buffers do not affect scheduling, so response times are reused.
    The resulting curve is typically V-shaped: the bound falls while
    the buffered chain's sampling window approaches the other chains'
    windows and rises again once it overshoots — with the minimum at
    the capacity Algorithm 1 computes for the binding pair.
    ``jobs > 1`` evaluates the capacities across worker processes.
    With ``observed_sims > 0`` every capacity additionally reports the
    max observed disparity over that many batched replications; at
    ``jobs=1`` the candidates are ``capacities`` delta views of one
    shared compiled scenario.
    ``semantics="let"`` evaluates both the bound (LET backward bounds)
    and the observed replications under LET data flow.
    """
    if max_capacity < 1:
        raise ModelError(f"max_capacity must be >= 1, got {max_capacity}")
    src, dst = channel
    system.graph.channel(src, dst)  # existence check
    from functools import partial

    from repro.parallel.engine import PoolRunner

    _check_semantics(semantics)
    capacities = list(range(1, max_capacity + 1))
    specs = _observed_specs(
        len(capacities),
        observed_sims,
        observed_duration,
        observed_warmup,
        seed,
        semantics,
    )
    base = _base_scenario(system, analyzed_task, semantics, observed_sims, jobs)
    params = [
        (system, src, dst, analyzed_task, capacity, method, semantics, spec)
        for capacity, spec in zip(capacities, specs)
    ]
    with PoolRunner(jobs) as pool:
        results, _ = pool.map_ordered(
            partial(_capacity_point, base=base), params
        )
    return results


def best_capacity(points: Sequence[SweepPoint]) -> SweepPoint:
    """The sweep point with the smallest bound (ties: smallest value)."""
    feasible = [p for p in points if p.bound is not None]
    if not feasible:
        raise ModelError("no feasible sweep point")
    return min(feasible, key=lambda p: (p.bound, p.value))


@dataclass(frozen=True)
class Margin:
    """Requirement slack of one task: ``threshold - bound``."""

    task: str
    bound: Time
    threshold: Time

    @property
    def slack(self) -> Time:
        """Remaining budget: ``threshold - bound``."""
        return self.threshold - self.bound

    @property
    def satisfied(self) -> bool:
        """True when the bound meets the threshold."""
        return self.bound <= self.threshold


def disparity_margins(
    system: System,
    requirements: Dict[str, Time],
    *,
    method: str = "forkjoin",
) -> List[Margin]:
    """Check several per-task disparity requirements at once."""
    from repro.chains.backward import BackwardBoundsCache

    cache = BackwardBoundsCache(system)
    margins = []
    for task, threshold in sorted(requirements.items()):
        bound = disparity_bound(system, task, method=method, cache=cache)
        margins.append(Margin(task=task, bound=bound, threshold=threshold))
    return margins

"""Design-space exploration utilities (extension beyond the paper)."""

from repro.explore.diagnosis import (
    DisparityExplanation,
    HopContribution,
    explain_disparity,
    render_explanation,
)
from repro.explore.priority_opt import PriorityOptResult, optimize_priorities
from repro.explore.sensitivity import (
    Margin,
    SweepPoint,
    best_capacity,
    buffer_capacity_sweep,
    disparity_margins,
    period_sensitivity,
)

__all__ = [
    "DisparityExplanation",
    "HopContribution",
    "explain_disparity",
    "render_explanation",
    "PriorityOptResult",
    "optimize_priorities",
    "Margin",
    "SweepPoint",
    "best_capacity",
    "buffer_capacity_sweep",
    "disparity_margins",
    "period_sensitivity",
]

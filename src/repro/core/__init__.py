"""Core contribution: worst-case time-disparity analysis."""

from repro.core.disparity import (
    METHOD_ALIASES,
    TaskDisparityResult,
    all_sink_disparities,
    check_disparity_requirement,
    disparity_bound,
    normalize_method,
    worst_case_disparity,
)
from repro.core.pairwise import (
    OffsetInterval,
    PairwiseResult,
    SamplingWindow,
    disparity_bound_forkjoin,
    disparity_bound_independent,
    independent_operator,
    offset_intervals,
    sampling_windows,
    shifted_operator,
)

__all__ = [
    "METHOD_ALIASES",
    "normalize_method",
    "TaskDisparityResult",
    "all_sink_disparities",
    "check_disparity_requirement",
    "disparity_bound",
    "worst_case_disparity",
    "OffsetInterval",
    "PairwiseResult",
    "SamplingWindow",
    "disparity_bound_forkjoin",
    "disparity_bound_independent",
    "independent_operator",
    "offset_intervals",
    "sampling_windows",
    "shifted_operator",
]

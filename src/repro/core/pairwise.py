"""Pairwise worst-case time-disparity bounds (Theorems 1 and 2).

Given two chains ``lam`` and ``nu`` from source tasks to the same
analyzed task, bound the maximum difference between the timestamps of
the two sources an output of the analyzed task originates from:

* **Theorem 1 (P-diff)** treats the chains as independent.  With
  ``O_{lam,nu} = max(|W(lam) - B(nu)|, |W(nu) - B(lam)|)`` the
  difference is at most ``O_{lam,nu}``; when both chains start at the
  *same* source task the timestamps differ by a multiple of its period,
  so the bound floors to ``floor(O / T(lam^1)) * T(lam^1)``.

* **Theorem 2 (S-diff)** exploits the fork-join structure.  The chains
  are decomposed at their common non-source tasks ``o_1 .. o_c``
  (``o_c`` = analyzed task) into sub-chain pairs ``(alpha_j, beta_j)``.
  Because the jobs of each ``o_j`` appearing in the two immediate
  backward job chains are jobs of the *same task*, their release times
  differ by an integer multiple of ``T(o_j)``; propagating this
  constraint backwards yields, per joint, an integer interval
  ``[x_j, y_j]`` such that (nu-job release) - (lam-job release) is in
  ``[x_j T(o_j), y_j T(o_j)]``:

      x_c = y_c = 0
      x_j = ceil ((B(alpha_{j+1}) - W(beta_{j+1}) + x_{j+1} T(o_{j+1})) / T(o_j))
      y_j = floor((W(alpha_{j+1}) - B(beta_{j+1}) + y_{j+1} T(o_{j+1})) / T(o_j))

  The final bound is the shifted operator of Lemma 3 applied to
  ``(alpha_1, beta_1)``:

      O^{x,y} = max(|W(beta_1) - B(alpha_1) - x T(o_1)|,
                    |B(beta_1) - W(alpha_1) - y T(o_1)|)

  again floored to a multiple of the shared source's period when
  ``lam^1 = nu^1``.

Both theorems are *symmetric* in their inputs; the implementation keeps
the paper's asymmetric-looking formulas and verifies symmetry in tests.

A shared suffix of the two chains is truncated before decomposition by
default (the immediate backward job chain along a shared suffix is
unique, so the disparity at the original tail equals the disparity at
the last divergence point — the paper's "consider the last joint task
of them as the analyzed task").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.chains.backward import BackwardBoundsCache
from repro.model.chain import (
    Chain,
    PairDecomposition,
    decompose_pair,
    truncate_common_suffix,
)
from repro.model.task import ModelError
from repro.units import Time, ceil_div, floor_div


@dataclass(frozen=True)
class SamplingWindow:
    """Interval ``[lo, hi]`` known to contain a source timestamp.

    Times are relative to the release of the analyzed job (or of the
    relevant joint job), as in Lemma 1: ``t in [-W(pi), -B(pi)]``.
    """

    lo: Time
    hi: Time

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ModelError(f"empty sampling window [{self.lo}, {self.hi}]")

    @property
    def midpoint_x2(self) -> Time:
        """Twice the midpoint (kept integral; callers compare midpoints)."""
        return self.lo + self.hi

    @property
    def width(self) -> Time:
        """Window width ``hi - lo``."""
        return self.hi - self.lo

    def shifted(self, delta: Time) -> "SamplingWindow":
        """The window translated by ``delta``."""
        return SamplingWindow(self.lo + delta, self.hi + delta)


@dataclass(frozen=True)
class OffsetInterval:
    """Per-joint integer interval ``[x_j, y_j]`` of Theorem 2."""

    joint: str
    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x > self.y:
            raise ModelError(
                f"empty offset interval at joint {self.joint!r}: "
                f"[{self.x}, {self.y}]"
            )


@dataclass(frozen=True)
class PairwiseResult:
    """A pairwise disparity bound plus the evidence that produced it."""

    lam: Chain
    nu: Chain
    bound: Time
    method: str
    analyzed_task: str
    shared_source: bool
    decomposition: Optional[PairDecomposition] = None
    offsets: Tuple[OffsetInterval, ...] = ()
    window_lam: Optional[SamplingWindow] = None
    window_nu: Optional[SamplingWindow] = None


def independent_operator(
    w_lam: Time, b_lam: Time, w_nu: Time, b_nu: Time
) -> Time:
    """``O_{lam,nu}`` of Theorem 1."""
    return max(abs(w_lam - b_nu), abs(w_nu - b_lam))


def shifted_operator(
    w_lam: Time,
    b_lam: Time,
    w_nu: Time,
    b_nu: Time,
    x: int,
    y: int,
    period_nu_tail: Time,
) -> Time:
    """``O^{x,y}_{lam,nu}`` of Lemma 3.

    Bounds ``|t(lam-source) - t(nu'-source)|`` where ``nu'`` is the
    immediate backward job chain of the job released ``k`` periods of
    the nu-tail after the analyzed job, ``x <= k <= y``.  With
    ``x = y = 0`` it reduces to :func:`independent_operator`.
    """
    return max(
        abs(w_nu - b_lam - x * period_nu_tail),
        abs(b_nu - w_lam - y * period_nu_tail),
    )


def floor_to_period(value: Time, period: Time) -> Time:
    """Round a bound down to a multiple of ``period`` (shared source)."""
    if value < 0:
        raise ModelError(f"disparity bound cannot be negative: {value}")
    return floor_div(value, period) * period


def disparity_bound_independent(
    lam: Chain,
    nu: Chain,
    cache: BackwardBoundsCache,
) -> PairwiseResult:
    """Theorem 1 (P-diff) for one pair of chains ending at one task."""
    if lam.tail != nu.tail:
        raise ModelError(
            f"chains must end at the same task: {lam.tail!r} vs {nu.tail!r}"
        )
    system = cache.system
    bl = cache.bounds(lam)
    bn = cache.bounds(nu)
    operator = independent_operator(bl.wcbt, bl.bcbt, bn.wcbt, bn.bcbt)
    shared = lam.head == nu.head
    bound = (
        floor_to_period(operator, system.T(lam.head)) if shared else operator
    )
    return PairwiseResult(
        lam=lam,
        nu=nu,
        bound=bound,
        method="P-diff",
        analyzed_task=lam.tail,
        shared_source=shared,
        window_lam=SamplingWindow(-bl.wcbt, -bl.bcbt),
        window_nu=SamplingWindow(-bn.wcbt, -bn.bcbt),
    )


def offset_intervals(
    decomposition: PairDecomposition,
    cache: BackwardBoundsCache,
) -> Tuple[OffsetInterval, ...]:
    """The ``[x_j, y_j]`` recursion of Theorem 2, joint by joint.

    Returned in chain order (``o_1`` first).  The interval at ``o_c``
    (the analyzed task) is always ``[0, 0]``.  Every interval is
    non-empty because the actual release-time difference is both a
    multiple of ``T(o_j)`` and inside the real-valued window the
    recursion rounds; an empty interval therefore signals a bug and
    raises.
    """
    system = cache.system
    joints = decomposition.joints
    c = len(joints)
    xs = [0] * c
    ys = [0] * c
    for j in range(c - 2, -1, -1):
        alpha_next = decomposition.alphas[j + 1]
        beta_next = decomposition.betas[j + 1]
        t_next = system.T(joints[j + 1])
        t_here = system.T(joints[j])
        ba = cache.bounds(alpha_next)
        bb = cache.bounds(beta_next)
        xs[j] = ceil_div(ba.bcbt - bb.wcbt + xs[j + 1] * t_next, t_here)
        ys[j] = floor_div(ba.wcbt - bb.bcbt + ys[j + 1] * t_next, t_here)
    return tuple(
        OffsetInterval(joint=joints[j], x=xs[j], y=ys[j]) for j in range(c)
    )


def sampling_windows(
    decomposition: PairDecomposition,
    offsets: Tuple[OffsetInterval, ...],
    cache: BackwardBoundsCache,
) -> Tuple[SamplingWindow, SamplingWindow]:
    """Source sampling windows relative to the ``o_1`` job of ``lam``.

    Lines 4–5 of Algorithm 1:
    ``[A_lam, B_lam] = [-W(alpha_1), -B(alpha_1)]`` and
    ``[A_nu, B_nu]  = [x_1 T(o_1) - W(beta_1), y_1 T(o_1) - B(beta_1)]``.
    """
    system = cache.system
    first = offsets[0]
    t_o1 = system.T(decomposition.joints[0])
    ba = cache.bounds(decomposition.alphas[0])
    bb = cache.bounds(decomposition.betas[0])
    window_lam = SamplingWindow(-ba.wcbt, -ba.bcbt)
    window_nu = SamplingWindow(
        first.x * t_o1 - bb.wcbt, first.y * t_o1 - bb.bcbt
    )
    return window_lam, window_nu


def disparity_bound_forkjoin(
    lam: Chain,
    nu: Chain,
    cache: BackwardBoundsCache,
    *,
    truncate_suffix: bool = True,
) -> PairwiseResult:
    """Theorem 2 (S-diff) for one pair of chains ending at one task."""
    if lam.tail != nu.tail:
        raise ModelError(
            f"chains must end at the same task: {lam.tail!r} vs {nu.tail!r}"
        )
    system = cache.system
    work_lam, work_nu = lam, nu
    if truncate_suffix:
        work_lam, work_nu, _tail = truncate_common_suffix(lam, nu)
        if len(work_lam) == 1 and len(work_nu) == 1:
            # Identical chains: a single source job, zero disparity.
            return PairwiseResult(
                lam=lam,
                nu=nu,
                bound=0,
                method="S-diff",
                analyzed_task=_tail,
                shared_source=True,
            )

    decomposition = decompose_pair(work_lam, work_nu, system.graph)
    offsets = offset_intervals(decomposition, cache)
    first = offsets[0]
    t_o1 = system.T(decomposition.joints[0])
    ba = cache.bounds(decomposition.alphas[0])
    bb = cache.bounds(decomposition.betas[0])
    operator = shifted_operator(
        ba.wcbt, ba.bcbt, bb.wcbt, bb.bcbt, first.x, first.y, t_o1
    )
    shared = work_lam.head == work_nu.head
    bound = (
        floor_to_period(operator, system.T(work_lam.head)) if shared else operator
    )
    window_lam, window_nu = sampling_windows(decomposition, offsets, cache)
    return PairwiseResult(
        lam=lam,
        nu=nu,
        bound=bound,
        method="S-diff",
        analyzed_task=decomposition.joints[-1],
        shared_source=shared,
        decomposition=decomposition,
        offsets=offsets,
        window_lam=window_lam,
        window_nu=window_nu,
    )

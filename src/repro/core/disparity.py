"""Task-level worst-case time disparity (Definition 2).

The worst-case time disparity of a task ``tau`` is the maximum, over
all jobs ``J`` of ``tau``, of the maximum difference among the
timestamps of all of ``J``'s sources.  Each source is traced through an
immediate backward job chain along one chain of

    P = { every chain from a source task to tau },

so the task-level bound is the maximum over all unordered pairs of
distinct chains in ``P`` of the pairwise bound (Theorem 1 or 2).

``method`` selects the estimator:

* ``"independent"`` — Theorem 1 on every pair (paper's *P-diff*);
* ``"forkjoin"``    — Theorem 2 on every pair (paper's *S-diff*);
* ``"best"``        — the per-pair minimum of the two (both are safe
  upper bounds, so their minimum is safe; an extension beyond the
  paper's reported series).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.chains.backward import BackwardBoundsCache, BackwardBoundsTable
from repro.core.pairwise import (
    PairwiseResult,
    disparity_bound_forkjoin,
    disparity_bound_independent,
)
from repro.model.chain import Chain, enumerate_source_chains
from repro.model.system import System
from repro.model.task import ModelError
from repro.units import Time

Method = str

_VALID_METHODS = ("independent", "forkjoin", "best")

#: Accepted method spellings.  Canonical names are the estimator
#: identifiers; the aliases mirror the series labels the CLI and the
#: paper print (``P-diff`` = Theorem 1, ``S-diff`` = Theorem 2), so the
#: name read off a figure or a CLI table works verbatim in the API.
METHOD_ALIASES: Dict[str, str] = {
    "independent": "independent",
    "p-diff": "independent",
    "pdiff": "independent",
    "theorem1": "independent",
    "forkjoin": "forkjoin",
    "s-diff": "forkjoin",
    "sdiff": "forkjoin",
    "theorem2": "forkjoin",
    "best": "best",
}


def normalize_method(method: Method) -> Method:
    """Map any accepted method spelling to its canonical name.

    Raises:
        ValueError: For an unknown name, listing every accepted choice
            (:class:`ModelError`, a ``ValueError`` subclass).
    """
    canonical = METHOD_ALIASES.get(str(method).strip().lower())
    if canonical is None:
        raise ModelError(
            f"unknown disparity method {method!r}; canonical choices are "
            f"{list(_VALID_METHODS)}, also accepted: "
            f"{sorted(alias for alias in METHOD_ALIASES if alias not in _VALID_METHODS)}"
        )
    return canonical


@dataclass(frozen=True)
class TaskDisparityResult:
    """Worst-case disparity bound of one task, with per-pair evidence."""

    task: str
    method: Method
    bound: Time
    chains: Tuple[Chain, ...]
    pair_results: Tuple[PairwiseResult, ...]
    worst_pair: Optional[PairwiseResult]

    @property
    def n_pairs(self) -> int:
        """Number of chain pairs the maximum ranged over."""
        return len(self.pair_results)


def _pair_bound(
    lam: Chain,
    nu: Chain,
    cache: BackwardBoundsCache,
    method: Method,
    truncate_suffix: bool,
) -> PairwiseResult:
    if method == "independent":
        return disparity_bound_independent(lam, nu, cache)
    if method == "forkjoin":
        return disparity_bound_forkjoin(lam, nu, cache, truncate_suffix=truncate_suffix)
    if method == "best":
        independent = disparity_bound_independent(lam, nu, cache)
        forkjoin = disparity_bound_forkjoin(
            lam, nu, cache, truncate_suffix=truncate_suffix
        )
        return forkjoin if forkjoin.bound <= independent.bound else independent
    raise ModelError(f"unknown disparity method {method!r}; use one of {_VALID_METHODS}")


def worst_case_disparity(
    system: System,
    task: str,
    *,
    method: Method = "forkjoin",
    truncate_suffix: bool = True,
    cache: Optional[BackwardBoundsCache] = None,
    chains: Optional[Tuple[Chain, ...]] = None,
) -> TaskDisparityResult:
    """Bound the worst-case time disparity of ``task``.

    Enumerates ``P`` and maximizes the selected pairwise bound over all
    unordered pairs of distinct chains.  A task reachable from at most
    one source chain has zero disparity by definition.

    Args:
        system: The analyzed system.
        task: Name of the analyzed task.
        method: ``"independent"`` (P-diff), ``"forkjoin"`` (S-diff) or
            ``"best"`` — aliases like ``"p-diff"``/``"s-diff"`` are
            accepted too (see :data:`METHOD_ALIASES`).
        truncate_suffix: Truncate shared chain suffixes before the
            fork-join decomposition (no effect on Theorem 1).
        cache: Optional shared backward-bounds cache (reuse across
            tasks of the same system).
        chains: Pre-enumerated source chains of ``task`` (an
            :class:`repro.api.AnalysisSession` passes its memoized
            enumeration; when ``None`` they are enumerated here).

    Periodic releases only: Theorems 1-3 use the fact that release
    differences are exact multiples of the task periods (the
    ``floor_to_period`` rounding and the Theorem 2 offset recursion).
    Jittered or sporadic workloads raise a structured
    :class:`~repro.analysis_regime.RegimeError` — measure them with the
    simulation tiers instead.
    """
    from repro.analysis_regime import regime_of

    regime_of(system).require_analytical(
        "worst-case time disparity bound (Theorems 1-3)"
    )
    method = normalize_method(method)
    if cache is None:
        # Standalone call: hoist everything shareable out of the
        # all-pairs loop — one DAG-shared bounds table instead of a
        # per-chain cache, warmed for every enumerated chain up front
        # so the pair loop below performs dictionary hits only.
        cache = BackwardBoundsTable(system)
    if chains is None:
        chains = enumerate_source_chains(system.graph, task)
    cache.register(chains)
    pair_results: List[PairwiseResult] = []
    worst: Optional[PairwiseResult] = None
    for lam, nu in combinations(chains, 2):
        result = _pair_bound(lam, nu, cache, method, truncate_suffix)
        pair_results.append(result)
        if worst is None or result.bound > worst.bound:
            worst = result
    return TaskDisparityResult(
        task=task,
        method=method,
        bound=worst.bound if worst is not None else 0,
        chains=chains,
        pair_results=tuple(pair_results),
        worst_pair=worst,
    )


def disparity_bound(
    system: System,
    task: str,
    *,
    method: Method = "forkjoin",
    truncate_suffix: bool = True,
    cache: Optional[BackwardBoundsCache] = None,
    chains: Optional[Tuple[Chain, ...]] = None,
) -> Time:
    """Just the numeric bound of :func:`worst_case_disparity`."""
    return worst_case_disparity(
        system,
        task,
        method=method,
        truncate_suffix=truncate_suffix,
        cache=cache,
        chains=chains,
    ).bound


def all_sink_disparities(
    system: System,
    *,
    method: Method = "forkjoin",
    truncate_suffix: bool = True,
) -> Dict[str, TaskDisparityResult]:
    """Disparity bounds of every sink task, sharing one bounds table."""
    cache = BackwardBoundsTable(system)
    return {
        sink: worst_case_disparity(
            system, sink, method=method, truncate_suffix=truncate_suffix, cache=cache
        )
        for sink in system.graph.sinks()
    }


def check_disparity_requirement(
    system: System,
    task: str,
    threshold: Time,
    *,
    method: Method = "forkjoin",
) -> bool:
    """Verify the paper's design requirement: disparity within a range.

    Returns True when the worst-case time disparity bound of ``task``
    is at most ``threshold`` — the verification question posed at the
    start of Section III ("whether the time disparity of a task is
    bounded by a pre-defined value").
    """
    return disparity_bound(system, task, method=method) <= threshold

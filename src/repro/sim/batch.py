"""Batched replications: compile a scenario once, simulate it many times.

Every replication of one scenario re-derives the same static facts
before its event loop even starts — task/unit tables, the priority
order on every compute unit, release grids over the horizon, interned
source bitmasks for packed provenance, and the backward closure of the
monitored task.  For an N-replication estimate (the ``Sim`` series of
Fig. 6 draws fresh offsets and execution times per run but never
changes the scenario), all of that is loop-invariant.

:class:`CompiledScenario` hoists it: the scenario is compiled once
into immutable tables, and each replication varies only the RNG-drawn
inputs.  The per-replication schedule is then produced by a loop that
is strictly cheaper than the engine's fast path:

* the whole release stream is *precomputed*.  Within one instant the
  fast path pops releases from its heap in the order of the static key
  ``(time, k > 0, -period, -offset, tid)`` (initial releases carry the
  heapify order, i.e. plain ``tid``), which holds whenever offsets lie
  in ``[0, T]`` — so one vectorized sort per replication replaces every
  release-heap operation;
* the release grids themselves are **delta-compiled**: per horizon the
  zero-offset grids of every task are concatenated once into flat
  offset-independent tables, and each candidate offset vector is
  applied as a vectorized shift of those tables (one ``take`` + one
  ``argsort``) instead of regenerating, slicing and re-concatenating
  per-task grids — the per-candidate cost of an offset-only sweep
  (``exact.search``, the Fig. 6 replications, the buffer/period
  sweeps' observed columns) is the shift and the replay, nothing else.
  :meth:`CompiledScenario.with_offsets` exposes one candidate as a
  cheap bound view;
* per-unit ready queues become priority-rank bitmasks (eligibility
  requires unique priorities per unit), with per-task pending counters
  carrying FIFO multiplicity;
* only the backward closure of the monitored task records start and
  finish times, and provenance is resolved by a specialized memoized
  DP equal to the engine's ``_FastFlow`` resolver.

Both communication semantics compile: under ``semantics="implicit"``
data flow is resolved from recorded finish times (with the same
cascade-depth side table the engine's fast path uses for zero-BCET
compute tasks), under ``semantics="let"`` from the time-deterministic
LET publication/read instants, with an inline deadline check per
finish.  The result is **byte-identical** to N independent
:func:`simulate` calls under the same derived seeds (pinned by
``tests/test_sim_batch.py`` and ``tests/test_let_fastpath.py``);
scenarios the compiled loop cannot handle — duplicate priorities on
one unit, unmapped compute tasks, offsets outside ``[0, T]`` —
transparently fall back to the plain
:class:`~repro.sim.engine.Simulator` under the same semantics,
preserving identity at the cost of the speedup.

Delta compilation generalizes beyond offsets to **structural edits**:
:meth:`CompiledScenario.edit` (and the ``with_period`` /
``with_capacity`` / ``with_priority`` accessors) derive a sibling
compiled scenario that invalidates only the tables the edit actually
touches — release-stream tables on period edits, per-unit
priority-rank tables on priority edits, channel tables on capacity
edits — while everything else (zero-offset release grids keyed by
``(period, horizon)``, the provenance domain, the backward closure,
and for capacity-only edits even the memoized *schedules*) stays
shared with the parent.  Every view — offset-only or structural —
implements the :class:`ScenarioView` protocol (``in_domain`` /
``delta_replay`` / ``reason`` / ``disparity`` / ``windowed_maxima`` /
``edit``), and edits whose result the compiled loop cannot replay
(duplicate priorities, offsets pushed outside ``[0, T]`` by a period
change) fall back to the per-replication simulator with identical
results.

:func:`run_batch` packages the common case: draw ``(seed, offsets)``
pairs exactly like ``AnalysisSession.observed_disparity`` and return a
:class:`BatchResult` with per-replication disparities plus aggregates.
"""

from __future__ import annotations

import heapq
import os
import random
import time as _time
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass, replace as _replace
from fractions import Fraction
from math import ceil
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

if os.environ.get("REPRO_NO_NUMPY"):  # pragma: no cover - CI leg
    _np = None
else:
    try:  # pragma: no cover - exercised via both branches in CI images
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None

from repro.model.system import System
from repro.model.task import ModelError
from repro.sim.engine import simulate
from repro.sim.exec_time import (
    ExecTimePolicy,
    bcet_policy,
    named_policy,
    uniform_policy,
    wcet_policy,
)
from repro.sim.metrics import DisparityMonitor
from repro.sim.provenance import ProvenancePacker
from repro.sim.release import kept_mask, release_table
from repro.units import Time

#: A policy given either by CLI name or as a callable.
PolicyLike = Union[str, ExecTimePolicy]

#: Wall-clock accumulators for ``--profile`` reporting: scenario
#: compilation (batch phase), the per-replication loops, and the
#: columnar tier's draw / advance / derive phases.
PHASE_TIMES = {
    "compile_s": 0.0,
    "replicate_s": 0.0,
    "draw_s": 0.0,
    "advance_s": 0.0,
    "derive_s": 0.0,
}


def reset_phase_times() -> None:
    """Zero the module-level phase accumulators."""
    for key in PHASE_TIMES:
        PHASE_TIMES[key] = 0.0


def _resolve_policy(policy: PolicyLike) -> ExecTimePolicy:
    return named_policy(policy) if isinstance(policy, str) else policy


#: Default bound on the per-scenario schedule memo (see
#: :class:`_ScheduleCache`); small because one entry holds the full
#: recorded schedule of a replication.
SCHED_CACHE_SIZE = 32

#: Bound on the columnar advance memo: one entry holds the recorded
#: ``(sims, slots)`` columns of a whole batch, so two suffice for the
#: sweep patterns that alias it (before/after capacity edits, repeated
#: probes of one draw set).
ADV_CACHE_SIZE = 2

#: The edit kinds :meth:`CompiledScenario.edit` accepts, in the order
#: they are applied (period before priority, so a task named in both
#: keeps both; capacities touch channels, not tasks).
_EDIT_KEYS = ("offsets", "periods", "priorities", "capacities")


def _policy_token(policy: ExecTimePolicy) -> Optional[Tuple[str, bool]]:
    """``(name, consumes_rng)`` for schedule-memoizable policies.

    A schedule is a pure function of ``(offsets, seed, duration,
    policy)``, so replaying it from a memo is sound whenever the policy
    can be identified reliably — which is true for the named policy
    singletons and false for arbitrary callables (``None``: never
    cached).  ``consumes_rng=False`` marks the deterministic policies
    (WCET/BCET draw nothing from the generator), whose schedules are
    additionally *seed-independent*: the memo key normalizes their seed
    away, so candidates differing only in execution-time seeds share
    one computed schedule.
    """
    if policy is uniform_policy:
        return ("uniform", True)
    if policy is wcet_policy:
        return ("wcet", False)
    if policy is bcet_policy:
        return ("bcet", False)
    return None


class _ScheduleCache:
    """Bounded LRU over recorded schedules, shared across sibling views.

    Keys are ``(offsets, seed, duration, policy-name)`` (seed
    normalized to 0 for deterministic policies, unless release tables
    are seed-drawn); values are the ``(starts, fins, completed, casc,
    rels)`` tuples of :meth:`CompiledScenario._schedule`, which
    consumers only read.
    Capacity-derived scenarios alias their parent's instance — buffer
    sizes never change scheduling, so one schedule serves every
    capacity candidate evaluated at the same draws.
    """

    __slots__ = ("maxsize", "entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = SCHED_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self.entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[tuple]:
        found = self.entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return found

    def put(self, key: tuple, value: tuple) -> None:
        self.entries[key] = value
        if len(self.entries) > self.maxsize:
            self.entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counters for observability (tests, the future service layer)."""
        return {
            "size": len(self.entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a batched replication run.

    Attributes:
        task: The monitored task.
        disparities: Per-replication observed disparity, in replication
            order (replication ``i`` used the ``i``-th derived seed).
        engine: ``"columnar"`` when the batched columnar tier ran,
            ``"compiled"`` for the per-replication compiled loop,
            otherwise ``"simulator"`` (per-replication fallback).
        compile_s: Wall seconds spent compiling the scenario (0 when a
            pre-compiled scenario was reused).
        run_s: Wall seconds spent in the replication loop.
        semantics: The communication semantics the replications ran
            under (``"implicit"`` or ``"let"``).
        reason: Why the run fell back from the fastest tier (every
            failed eligibility rule, ``"; "``-joined, or the engine
            the caller forced), ``None`` when the columnar tier ran.
    """

    task: str
    disparities: Tuple[Time, ...]
    engine: str
    compile_s: float
    run_s: float
    semantics: str = "implicit"
    reason: Optional[str] = None

    @property
    def sims(self) -> int:
        """Number of replications."""
        return len(self.disparities)

    @property
    def max_disparity(self) -> Time:
        """Largest observed disparity (0 when no replication ran)."""
        return max(self.disparities, default=0)

    def percentile(self, q: float) -> Time:
        """Nearest-rank percentile of the per-replication disparities.

        Returns the element at rank ``max(1, ceil(q * n / 100))`` (1-based)
        of the sorted disparities, computed in exact arithmetic so float
        ``q`` values never round across a rank boundary.  ``q = 0``
        therefore yields the minimum, ``q = 100`` the maximum, and an
        empty result reads 0.  Ties are resolved by multiplicity:
        duplicated values occupy one rank each, so a value repeated
        ``k`` times covers ``k`` consecutive ranks (the nearest-rank
        method never interpolates between distinct values).
        """
        if not 0 <= q <= 100:
            raise ModelError(f"percentile must be in [0, 100], got {q}")
        if not self.disparities:
            return 0
        ordered = sorted(self.disparities)
        rank = max(1, ceil(Fraction(q) * len(ordered) / 100))
        return ordered[rank - 1]

    def percentiles(self) -> Dict[str, Time]:
        """The common summary: p50/p90/p99 and the maximum."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max_disparity,
        }


class CompiledScenario:
    """One scenario frozen into tables that N replications share.

    Compilation derives, once: the task and unit tables, per-unit
    priority ranks (as bitmask bit positions), concatenated
    offset-independent release-stream tables per cached horizon (the
    delta-compilation tables applied per candidate as a vector shift —
    see :meth:`with_offsets`), the interned source bitmasks of the
    packed provenance domain, and the backward closure of the
    monitored task (only those tasks are recorded during a
    replication).

    Eligibility for the compiled loop requires every compute task to
    be mapped to a unit and priorities to be unique per unit;
    ``ineligible_reasons`` lists *every* rule that failed (and
    ``ineligible_reason`` joins them), so one compile diagnoses every
    fallback cause at once.  Ineligible scenarios (and replications
    whose offsets leave ``[0, T]``) run through the plain simulator
    instead — same results, no speedup.  Zero-BCET compute tasks are
    eligible: the loop records the same cascade-depth side table the
    engine's fast path uses, so same-instant sub-batch visibility
    replays exactly.

    ``semantics`` selects the communication model the replications
    reproduce: ``"implicit"`` (read at start / write at finish) or
    ``"let"`` (read at release, publish at deadline, deadline checked
    per finish).  The schedule loop is shared; only the data-flow
    resolver differs.
    """

    def __init__(
        self,
        system: System,
        task: str,
        *,
        semantics: str = "implicit",
        faults=None,
    ) -> None:
        t0 = _time.perf_counter()
        if semantics not in ("implicit", "let"):
            raise ModelError(
                f"unknown semantics {semantics!r}; "
                f"choose from ('implicit', 'let')"
            )
        self.semantics = semantics
        self._let = semantics == "let"
        graph = system.graph
        self.system = system
        self.graph = graph
        self.task = task
        tasks = tuple(graph.tasks)
        self.tasks = tasks
        n = len(tasks)
        self.n = n
        self.names = [t.name for t in tasks]
        # Release tables (jitter/sporadic models, fault plans): a
        # non-empty fault plan or any non-periodic release model makes
        # the replication loop replay pre-drawn per-replication tables
        # instead of the arithmetic release stream; strictly periodic
        # fault-free scenarios keep the original paths untouched.
        if faults is not None:
            faults.validate(self.names)
        self.faults = faults if faults else None
        self._faults_sig = faults.signature() if self.faults else ()
        self.release_models = [t.release_model for t in tasks]
        self._nonperiodic = any(
            not m.is_periodic for m in self.release_models
        )
        self._needs_tables = self._nonperiodic or self.faults is not None
        gid = {t.name: i for i, t in enumerate(tasks)}
        if task not in gid:
            raise ModelError(f"unknown task {task!r}")
        self.inst = [t.is_instantaneous for t in tasks]
        self.periods = [t.period for t in tasks]
        self.bcets = [t.bcet for t in tasks]
        self.wcets = [t.wcet for t in tasks]
        self.spans = [t.wcet - t.bcet + 1 for t in tasks]

        unit_names = sorted({t.ecu for t in tasks if t.ecu is not None})
        unit_index = {name: i for i, name in enumerate(unit_names)}
        self.unit_names = unit_names
        self.unit_of = [
            unit_index[t.ecu] if t.ecu is not None else -1 for t in tasks
        ]
        self.n_units = len(unit_names)
        self._gid = gid

        # Zero-BCET compute tasks stay eligible: the schedule loop
        # records cascade depths (implicit) and LET visibility never
        # depends on same-instant finish ordering.
        self._track = not self._let and any(
            t.bcet == 0 for t in tasks if not t.is_instantaneous
        )

        self.rank_tid, self.bit_of, reasons = self._rank_tables(tasks)
        self.ineligible_reasons: Tuple[str, ...] = tuple(reasons)

        # Backward closure of the monitored task: the only tasks whose
        # schedule a replication must record.
        closure = set()
        stack = [task]
        while stack:
            name = stack.pop()
            if name in closure:
                continue
            closure.add(name)
            stack.extend(graph.predecessors(name))
        self.keep = [t.name in closure for t in tasks]
        self.m_gid = gid[task]

        sources = graph.sources()
        self.packer = ProvenancePacker(sources)
        src_set = set(sources)
        self.is_source = [t.name in src_set for t in tasks]
        self.in_edges = self._channel_tables(graph)
        self.per_rank, self._packable = self._period_ranks()
        # Offset-independent release-stream tables per horizon (the
        # delta-compilation core), built lazily by _stream_tables()
        # from zero-offset grids cached per (period, horizon) in
        # _grid_cache — the grid cache is shared (aliased) by every
        # structurally derived sibling, so a period edit regenerates
        # only the edited task's grid.
        self._stream_cache: Dict[Time, tuple] = {}
        self._grid_cache: Dict[Tuple[Time, Time], tuple] = {}
        # Memoized recorded schedules (shared by capacity-derived
        # siblings, where the schedule is edit-invariant).
        self._sched_cache = _ScheduleCache()
        # Columnar twin of the schedule memo: whole-batch advance
        # columns, aliased under exactly the same edit rules.
        self._adv_cache = _ScheduleCache(maxsize=ADV_CACHE_SIZE)
        elapsed = _time.perf_counter() - t0
        self.compile_s = elapsed
        PHASE_TIMES["compile_s"] += elapsed

    # ------------------------------------------------------------------
    # table builders (shared between compile and structural derivation)
    # ------------------------------------------------------------------

    def _rank_tables(
        self, tasks: Tuple
    ) -> Tuple[List[List[int]], List[int], List[str]]:
        """Per-unit priority-rank tables plus every eligibility reason.

        Per unit: member tasks by ascending priority value; bit i of
        the unit's ready mask stands for the rank-i member, so the
        lowest set bit is always the next task to dispatch.  Every
        failed eligibility rule is collected (not just the first), so
        one compile reports all fallback causes.
        """
        n = self.n
        unit_of = self.unit_of
        inst = self.inst
        reasons: List[str] = []
        for t in tasks:
            if t.is_instantaneous:
                continue
            if t.ecu is None:
                reasons.append(
                    f"compute task {t.name!r} has no unit assignment"
                )
        rank_tid: List[List[int]] = []
        bit_of = [0] * n
        for u in range(self.n_units):
            members = sorted(
                (
                    tid
                    for tid in range(n)
                    if unit_of[tid] == u and not inst[tid]
                ),
                key=lambda tid: (tasks[tid].priority or 0, tid),
            )
            rank_tid.append(members)
            prios = [tasks[tid].priority for tid in members]
            if len(set(prios)) != len(prios):
                reasons.append(
                    f"unit {self.unit_names[u]!r} has duplicate priorities "
                    f"(ready order would depend on arrival, not rank)"
                )
            for rank, tid in enumerate(members):
                bit_of[tid] = 1 << rank
        return rank_tid, bit_of, reasons

    def _channel_tables(self, graph) -> List[List[Tuple[int, int]]]:
        """Per-task input edges as ``(producer gid, capacity)`` pairs."""
        gid = self._gid
        return [
            [
                (gid[p], graph.channel(p, t.name).capacity)
                for p in graph.predecessors(t.name)
            ]
            for t in self.tasks
        ]

    def _period_ranks(self) -> Tuple[List[int], bool]:
        """Rank of each distinct period, descending, plus packability.

        The static-order key sorts rescheduled releases by ``-period``;
        the rank is used to pack the whole sort key of a release into
        one int64 when it fits.
        """
        n = self.n
        distinct = sorted(
            {self.periods[tid] for tid in range(n) if not self.inst[tid]},
            reverse=True,
        )
        rank_of = {per: r for r, per in enumerate(distinct)}
        per_rank = [
            rank_of[self.periods[tid]] if not self.inst[tid] else 0
            for tid in range(n)
        ]
        return per_rank, n <= 64 and len(distinct) <= 64

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------

    @property
    def eligible(self) -> bool:
        """True when the compiled loop can replicate this scenario."""
        return not self.ineligible_reasons

    @property
    def ineligible_reason(self) -> Optional[str]:
        """All failed eligibility rules joined, ``None`` when eligible."""
        if not self.ineligible_reasons:
            return None
        return "; ".join(self.ineligible_reasons)

    def _offsets_in_domain(self, offsets: Sequence[Time]) -> bool:
        periods = self.periods
        for tid, off in enumerate(offsets):
            if not 0 <= off <= periods[tid]:
                return False
        return True

    # ------------------------------------------------------------------
    # release stream
    # ------------------------------------------------------------------

    def _grid(self, period: Time, duration: Time) -> tuple:
        """Zero-offset release grid of one period over one horizon.

        Returns the immutable ``(t, flag, negper)`` int64 columns of a
        ``duration // period + 1``-entry grid: release instants at
        multiples of ``period``, the ``k > 0`` rescheduled flag, and
        the ``-period`` static-order key.  Cached per ``(period,
        horizon)`` — grids depend on nothing else, so the cache is
        aliased by every structurally derived sibling and a period
        edit regenerates only the edited task's grid.
        """
        key = (period, duration)
        found = self._grid_cache.get(key)
        if found is None:
            maxlen = duration // period + 1
            t = _np.arange(maxlen, dtype=_np.int64) * period
            flag = _np.ones(maxlen, dtype=_np.int64)
            flag[0] = 0
            negper = _np.full(maxlen, -period, dtype=_np.int64)
            found = (t, flag, negper)
            self._grid_cache[key] = found
        return found

    def _stream_tables(self, duration: Time) -> tuple:
        """Offset-independent release-stream tables for one horizon.

        The delta-compilation core: the zero-offset release grids of
        every compute task are concatenated **once** per horizon into
        flat arrays; a candidate offset vector is then applied as a
        vectorized shift of these tables (:meth:`_release_stream`), so
        replications and sweep candidates that differ only in offsets
        never regenerate, slice, or re-concatenate per-task grids.

        When the packed single-key encoding fits one int64 —
        ``t(rest) | k>0 (1 bit) | period rank (6) | low rank (6)``,
        where the low rank is ``tid`` for initial releases and the
        per-candidate (-offset, tid) rank for rescheduled ones — the
        cached tuple is ``("packed", base_key, tid_all, idx2)`` with
        ``idx2 = tid + n * (k > 0)`` indexing the per-candidate shift
        vector; otherwise it is the five-key lexsort material
        ``("lex", t_all, flag_all, negper_all, tid_all)``.  An empty
        stream (every task instantaneous) caches ``("empty",)``.

        Grids are sized for offset 0 (``duration // T + 1`` entries per
        task); a candidate offset in ``[0, T]`` shifts some tail
        entries past the horizon, which sort after every in-horizon
        release and are never consumed (the replication loop stops at
        the first instant beyond ``duration``), so no per-candidate
        re-slicing is needed either.
        """
        found = self._stream_cache.get(duration)
        if found is not None:
            return found
        packed = (
            self._packable
            and duration + max(self.periods, default=0) < 1 << 49
        )
        ts, flags, negpers, tids = [], [], [], []
        for tid in range(self.n):
            if self.inst[tid]:
                continue
            t, flag, negper = self._grid(self.periods[tid], duration)
            ts.append(t)
            flags.append(flag)
            negpers.append(negper)
            tids.append(_np.full(len(t), tid, dtype=_np.int64))
        if not ts:
            found = ("empty",)
        else:
            t_all = _np.concatenate(ts)
            flag_all = _np.concatenate(flags)
            tid_all = _np.concatenate(tids)
            if packed:
                per_rank = _np.asarray(self.per_rank, dtype=_np.int64)
                base_key = _np.where(
                    flag_all == 0,
                    tid_all,
                    (t_all << 13) | (1 << 12) | (per_rank[tid_all] << 6),
                )
                idx2 = tid_all + flag_all * self.n
                found = ("packed", base_key, tid_all, idx2)
            else:
                negper_all = _np.concatenate(negpers)
                found = ("lex", t_all, flag_all, negper_all, tid_all)
        self._stream_cache[duration] = found
        return found

    def _release_stream(
        self, offsets: Sequence[Time], duration: Time
    ) -> Tuple[List[Time], List[int]]:
        """All releases in exactly the fast path's pop order.

        Initial releases (``k = 0``) enter the release heap in task
        order at heapify time, so they tie-break by ``tid`` alone;
        rescheduled ones tie-break by ``(-period, -offset, tid)`` —
        valid for offsets in ``[0, T]`` (checked by the caller).  The
        offset vector is applied as a delta on the cached
        :meth:`_stream_tables`: one shift-vector ``take`` plus one
        sort, no per-task python loop.
        """
        if _np is None:
            entries = []
            for tid in range(self.n):
                if self.inst[tid]:
                    continue
                off = offsets[tid]
                if off > duration:
                    continue
                per = self.periods[tid]
                entries.append((off, 0, 0, 0, tid))
                entries.extend(
                    (t, 1, -per, -off, tid)
                    for t in range(off + per, duration + 1, per)
                )
            entries.sort()
            return [e[0] for e in entries], [e[4] for e in entries]
        tables = self._stream_tables(duration)
        if tables[0] == "empty":
            return [], []
        off = _np.fromiter(offsets, dtype=_np.int64, count=self.n)
        if tables[0] == "packed":
            # Packed single-key path: the (-offset, tid) tie-break of
            # rescheduled releases becomes a rank added into the low
            # bits (rank order restricted to any subset preserves it).
            _, base_key, tid_all, idx2 = tables
            by_off = sorted(
                (tid for tid in range(self.n) if not self.inst[tid]),
                key=lambda tid: (-offsets[tid], tid),
            )
            low = _np.zeros(self.n, dtype=_np.int64)
            for rank, tid in enumerate(by_off):
                low[tid] = rank
            shifted = off << 13
            vec2 = _np.concatenate((shifted, shifted + low))
            key_all = base_key + vec2[idx2]
            order = _np.argsort(key_all)
            return (
                (key_all[order] >> 13).tolist(),
                tid_all[order].tolist(),
            )
        _, t0_all, flag_all, negper_all, tid_all = tables
        t_all = t0_all + off[tid_all]
        order = _np.lexsort(
            (tid_all, (-off)[tid_all], negper_all, flag_all, t_all)
        )
        return t_all[order].tolist(), tid_all[order].tolist()

    def _release_tables(
        self, offsets: Sequence[Time], seed: int, duration: Time
    ) -> Tuple[List[Time], List[int], List[List[Time]]]:
        """Table-mode release stream plus per-task kept-release tables.

        Returns ``(rel_times, rel_tids, rels)``: the CPU release stream
        in exactly the fast path's heap pop order, restricted to
        releases the fault plan keeps, and per task (instantaneous ones
        included) the sorted kept-release instants — the job-``k`` ->
        release mapping the provenance resolver and LET deadlines read.

        The static ``(time, k > 0, -period, -offset, tid)`` sort key of
        :meth:`_release_stream` does not extend to drawn tables, so the
        pop order is reproduced directly: a k-way merge with the same
        seq discipline the fast path's release heap uses (initial
        entries in task order, a successor entered at its predecessor's
        pop).  Suppressed releases ride through the merge and are
        filtered at pop — the fast path advances its heap on them too,
        so the faulted pop order is the fault-free order filtered.
        """
        tables: List[List[Time]] = []
        masks: List[List[bool]] = []
        rels: List[List[Time]] = []
        plan = self.faults
        for tid, task in enumerate(self.tasks):
            table = release_table(task, seed, duration, offset=offsets[tid])
            mask = kept_mask(plan, task.name, table)
            tables.append(table)
            masks.append(mask)
            rels.append(
                table
                if all(mask)
                else [at for at, ok in zip(table, mask) if ok]
            )
        rel_times: List[Time] = []
        rel_tids: List[int] = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        heap: List[Tuple[Time, int, int]] = []
        seq = 0
        ptr = [1] * self.n
        inst = self.inst
        for tid in range(self.n):
            if not inst[tid] and tables[tid]:
                seq += 1
                heap.append((tables[tid][0], seq, tid))
        heapq.heapify(heap)
        while heap:
            at, _, tid = heappop(heap)
            nxt = ptr[tid]
            ptr[tid] = nxt + 1
            table = tables[tid]
            if nxt < len(table):
                seq += 1
                heappush(heap, (table[nxt], seq, tid))
            if masks[tid][nxt - 1]:
                rel_times.append(at)
                rel_tids.append(tid)
        return rel_times, rel_tids, rels

    # ------------------------------------------------------------------
    # the compiled replication loop
    # ------------------------------------------------------------------

    def _schedule(
        self,
        offsets: Sequence[Time],
        seed: int,
        duration: Time,
        policy: ExecTimePolicy,
    ) -> Tuple[
        List[List[Time]],
        List[List[Time]],
        List[int],
        Optional[Dict[Tuple[int, int], int]],
        Optional[List[List[Time]]],
    ]:
        """One replication's schedule of the monitored closure.

        Returns ``(starts, fins, completed, casc, rels)`` for the kept
        tasks; the RNG stream (and hence every execution-time draw) is
        identical to the engine loops under the same seed.  ``casc``
        is the cascade-depth side table for zero-BCET scenarios
        (implicit semantics only, ``None`` otherwise): per kept job
        dispatched by a zero-time finish at the same instant, the
        sub-batch depth the engine's fast path would record.  Under
        LET the loop instead checks each finish against its job's
        deadline, raising the engine's ``LET violation`` error.
        ``rels`` is ``None`` on the arithmetic (periodic fault-free)
        path; in table mode it holds each task's kept-release instants
        (the job ``k`` -> release mapping downstream resolvers need).
        """
        rng = random.Random(seed)
        rng_random = rng.random
        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace

        n = self.n
        periods = self.periods
        bcets = self.bcets
        wcets = self.wcets
        spans = self.spans
        tasks = self.tasks
        unit_of = self.unit_of
        bit_of = self.bit_of
        rank_tid = self.rank_tid
        keep = self.keep
        n_units = self.n_units
        fast_uniform = policy is uniform_policy
        fast_wcet = policy is wcet_policy

        if self._needs_tables:
            rel_times, rel_tids, rels = self._release_tables(
                offsets, seed, duration
            )
        else:
            rel_times, rel_tids = self._release_stream(offsets, duration)
            rels = None
        sentinel = duration + 1
        rel_times.append(sentinel)
        rel_tids.append(-1)

        # Zero-BCET cascade tracking (implicit semantics): ``zrun[u]``
        # flags whether unit ``u``'s running job executes in zero time,
        # ``cur_batch[u]`` its dispatch's sub-batch depth; ``casc``
        # collects depths for kept jobs exactly as the engine's fast
        # path does.  LET replications instead count dispatches per
        # task (``ndisp``) to check each finish against its deadline.
        track = self._track
        let_mode = self._let
        zrun = [False] * n_units
        cur_batch = [0] * n_units
        casc: Optional[Dict[Tuple[int, int], int]] = {} if track else None
        ndisp = [0] * n
        names = self.names

        def check_deadline(tid: int, at: Time) -> None:
            if rels is None:
                deadline = offsets[tid] + ndisp[tid] * periods[tid]
            else:
                deadline = rels[tid][ndisp[tid] - 1] + periods[tid]
            if at > deadline:
                raise ModelError(
                    f"LET violation: job {names[tid]}#{ndisp[tid] - 1} "
                    f"finished at {at} past its deadline {deadline}"
                )

        ready_mask = [0] * n_units
        pend = [0] * n
        running = [-1] * n_units
        counts = [0] * n
        starts: List[List[Time]] = [[] for _ in range(n)]
        fins: List[List[Time]] = [[] for _ in range(n)]
        sa = [s.append for s in starts]
        fa = [f.append for f in fins]
        fin_heap: List[Tuple[Time, int, int]] = [(sentinel, 0, -1)]
        fin_head = sentinel
        seq = 0
        ri = 0

        def draw(tid: int) -> Time:
            """Non-default policy draw, with the range re-check."""
            k = counts[tid]
            counts[tid] = k + 1
            exec_time = policy(tasks[tid], k, rng)
            if not bcets[tid] <= exec_time <= wcets[tid]:
                raise ModelError(
                    f"policy returned execution time {exec_time} outside "
                    f"[{bcets[tid]}, {wcets[tid]}] for {tasks[tid].name!r}"
                )
            return exec_time

        while True:
            now = rel_times[ri]
            if now <= fin_head:
                # Release event (at equal times releases go first).
                if now > duration:
                    break
                tid = rel_tids[ri]
                ri += 1
                u = unit_of[tid]
                if rel_times[ri] == now or fin_head == now:
                    # Multi-event instant: gather every same-instant
                    # release and finish, then dispatch idle units.
                    pend[tid] += 1
                    ready_mask[u] |= bit_of[tid]
                    touched = [u]
                    while rel_times[ri] == now:
                        tid2 = rel_tids[ri]
                        ri += 1
                        u2 = unit_of[tid2]
                        pend[tid2] += 1
                        ready_mask[u2] |= bit_of[tid2]
                        touched.append(u2)
                    while fin_head == now:
                        u2 = heappop(fin_heap)[2]
                        fin_head = fin_heap[0][0]
                        if let_mode:
                            check_deadline(running[u2], now)
                        running[u2] = -1
                        touched.append(u2)
                    for u2 in touched:
                        m = ready_mask[u2]
                        if running[u2] < 0 and m:
                            b = m & -m
                            tid2 = rank_tid[u2][b.bit_length() - 1]
                            c = pend[tid2] - 1
                            pend[tid2] = c
                            if not c:
                                ready_mask[u2] = m ^ b
                            if fast_uniform:
                                span = spans[tid2]
                                exec_time = (
                                    bcets[tid2] + int(rng_random() * span)
                                    if span > 1
                                    else bcets[tid2]
                                )
                            elif fast_wcet:
                                exec_time = wcets[tid2]
                            else:
                                exec_time = draw(tid2)
                            if keep[tid2]:
                                sa[tid2](now)
                                fa[tid2](now + exec_time)
                            if track:
                                # Finishes drained at a release instant
                                # belong to jobs dispatched earlier, so
                                # this dispatch starts a fresh batch.
                                cur_batch[u2] = 0
                                zrun[u2] = exec_time == 0
                            elif let_mode:
                                ndisp[tid2] += 1
                            running[u2] = tid2
                            seq += 1
                            heappush(fin_heap, (now + exec_time, seq, u2))
                            fin_head = fin_heap[0][0]
                elif running[u] < 0:
                    # Idle unit, single release: dispatch directly.
                    if fast_uniform:
                        span = spans[tid]
                        exec_time = (
                            bcets[tid] + int(rng_random() * span)
                            if span > 1
                            else bcets[tid]
                        )
                    elif fast_wcet:
                        exec_time = wcets[tid]
                    else:
                        exec_time = draw(tid)
                    if keep[tid]:
                        sa[tid](now)
                        fa[tid](now + exec_time)
                    if track:
                        cur_batch[u] = 0
                        zrun[u] = exec_time == 0
                    elif let_mode:
                        ndisp[tid] += 1
                    running[u] = tid
                    seq += 1
                    heappush(fin_heap, (now + exec_time, seq, u))
                    fin_head = fin_heap[0][0]
                else:
                    # Busy unit: queue and move on.
                    pend[tid] += 1
                    ready_mask[u] |= bit_of[tid]
            else:
                # Finish event.
                now = fin_head
                if now > duration:
                    break
                u = fin_heap[0][2]
                if let_mode:
                    check_deadline(running[u], now)
                if track:
                    nb = cur_batch[u] + 1 if zrun[u] else 0
                m = ready_mask[u]
                if m:
                    b = m & -m
                    tid = rank_tid[u][b.bit_length() - 1]
                    c = pend[tid] - 1
                    pend[tid] = c
                    if not c:
                        ready_mask[u] = m ^ b
                    if fast_uniform:
                        span = spans[tid]
                        exec_time = (
                            bcets[tid] + int(rng_random() * span)
                            if span > 1
                            else bcets[tid]
                        )
                    elif fast_wcet:
                        exec_time = wcets[tid]
                    else:
                        exec_time = draw(tid)
                    if keep[tid]:
                        sa[tid](now)
                        fa[tid](now + exec_time)
                        if track and nb:
                            casc[(tid, len(starts[tid]) - 1)] = nb
                    if track:
                        cur_batch[u] = nb
                        zrun[u] = exec_time == 0
                    elif let_mode:
                        ndisp[tid] += 1
                    running[u] = tid
                    seq += 1
                    heapreplace(fin_heap, (now + exec_time, seq, u))
                    fin_head = fin_heap[0][0]
                else:
                    running[u] = -1
                    heappop(fin_heap)
                    fin_head = fin_heap[0][0]
                if fin_head == now:
                    # Sibling finishes at the same instant: complete
                    # them all before dispatching any replacement.
                    fin2 = []
                    while fin_head == now:
                        u2 = heappop(fin_heap)[2]
                        fin_head = fin_heap[0][0]
                        if let_mode:
                            check_deadline(running[u2], now)
                        running[u2] = -1
                        fin2.append(u2)
                    for u2 in fin2:
                        m = ready_mask[u2]
                        if running[u2] < 0 and m:
                            b = m & -m
                            tid2 = rank_tid[u2][b.bit_length() - 1]
                            c = pend[tid2] - 1
                            pend[tid2] = c
                            if not c:
                                ready_mask[u2] = m ^ b
                            if track:
                                # The finished job's zero flag is still
                                # in ``zrun`` — no dispatch on this unit
                                # happened since the drain above.
                                nb2 = cur_batch[u2] + 1 if zrun[u2] else 0
                            if fast_uniform:
                                span = spans[tid2]
                                exec_time = (
                                    bcets[tid2] + int(rng_random() * span)
                                    if span > 1
                                    else bcets[tid2]
                                )
                            elif fast_wcet:
                                exec_time = wcets[tid2]
                            else:
                                exec_time = draw(tid2)
                            if keep[tid2]:
                                sa[tid2](now)
                                fa[tid2](now + exec_time)
                                if track and nb2:
                                    casc[(tid2, len(starts[tid2]) - 1)] = nb2
                            if track:
                                cur_batch[u2] = nb2
                                zrun[u2] = exec_time == 0
                            elif let_mode:
                                ndisp[tid2] += 1
                            running[u2] = tid2
                            seq += 1
                            heappush(fin_heap, (now + exec_time, seq, u2))
                            fin_head = fin_heap[0][0]

        completed = [0] * n
        inst = self.inst
        for tid in range(n):
            if not keep[tid] or inst[tid]:
                continue
            fs = fins[tid]
            done = len(fs)
            if done and fs[-1] > duration:
                done -= 1
            completed[tid] = done
        return starts, fins, completed, casc, rels

    def _schedule_cached(
        self,
        offsets: Sequence[Time],
        seed: int,
        duration: Time,
        policy: ExecTimePolicy,
    ) -> Tuple[
        List[List[Time]],
        List[List[Time]],
        List[int],
        Optional[Dict[Tuple[int, int], int]],
        Optional[List[List[Time]]],
    ]:
        """:meth:`_schedule` through the bounded schedule memo.

        The schedule is a pure function of ``(offsets, seed, duration,
        policy)``, so the recorded tables can be replayed for any
        candidate that repeats those inputs — capacity sweeps
        (capacity-derived siblings alias this memo: buffer sizes never
        affect scheduling) and repeated probes of one candidate hit it
        directly.  Deterministic policies (WCET/BCET) consume no RNG,
        so their key normalizes the seed away and candidates differing
        only in execution-time seeds share one computed schedule —
        *unless* a non-periodic release model is present: release
        tables are drawn from the seed, so the key keeps the real seed
        even for deterministic policies.  (A fault plan alone does not
        re-couple the seed: periodic tables are seed-independent and
        the plan is fixed per compiled scenario, so masked schedules
        still alias across execution-time seeds.)  Unrecognized policy
        callables bypass the memo.
        """
        token = _policy_token(policy)
        if token is None:
            return self._schedule(offsets, seed, duration, policy)
        name, consumes_rng = token
        consumes_seed = consumes_rng or self._nonperiodic
        key = (tuple(offsets), seed if consumes_seed else 0, duration, name)
        found = self._sched_cache.get(key)
        if found is None:
            found = self._schedule(offsets, seed, duration, policy)
            self._sched_cache.put(key, found)
        return found

    def _prov_resolver(
        self,
        offsets: Sequence[Time],
        starts: List[List[Time]],
        fins: List[List[Time]],
        completed: List[int],
        casc: Optional[Dict[Tuple[int, int], int]] = None,
        rels: Optional[List[List[Time]]] = None,
    ):
        """Memoized packed-provenance DP over one recorded schedule.

        Mirrors ``_FastFlow._prov_of``/``reads_of``/``_writes_upto``
        folded into one closure.  Under implicit semantics writes at
        ``t`` are visible to reads at ``t`` (``casc`` replays the
        sub-batch order of same-instant zero-time finishes, exactly as
        the engine's fast path does), the FIFO head among ``m``
        visible writes on a capacity-``c`` channel is write
        ``max(0, m - c)``, and provenance folds bottom-up as interned
        bitmask + stamp pairs.  Under LET both sides are
        time-deterministic: jobs read at their release, sources
        publish at release, every other producer at its deadline (one
        period after release), with CPU producers publishing only jobs
        they completed within the horizon.

        ``rels`` switches the release arithmetic: ``None`` keeps
        ``offset + k * period``; in table mode job ``k`` of task ``g``
        releases at ``rels[g][k]`` and counting a producer's releases
        or publications up to an instant becomes a bisect over its
        kept table (exactly ``_FastFlow._writes_upto``).
        """
        periods = self.periods
        inst = self.inst
        is_source = self.is_source
        in_edges = self.in_edges
        names = self.names
        let_mode = self._let
        pk = self.packer
        pk_source = pk.source
        pk_merge = pk.merge
        pk_empty = pk.empty
        memo: List[dict] = [{} for _ in range(self.n)]

        def prov(g: int, k: int) -> tuple:
            mg = memo[g]
            got = mg.get(k)
            if got is not None:
                return got
            if is_source[g]:
                release = (
                    rels[g][k] if rels is not None
                    else offsets[g] + k * periods[g]
                )
                p = pk_source(names[g], release)
            else:
                if let_mode or inst[g]:
                    at = (
                        rels[g][k] if rels is not None
                        else offsets[g] + k * periods[g]
                    )
                    rkey = 1
                else:
                    at = starts[g][k]
                    rkey = (
                        3 * casc.get((g, k), 0) + 2
                        if casc is not None
                        else 2
                    )
                reads = []
                for pg, cap in in_edges[g]:
                    po = offsets[pg]
                    if let_mode:
                        if rels is not None:
                            if is_source[pg]:
                                mm = bisect_right(rels[pg], at)
                            else:
                                mm = bisect_right(
                                    rels[pg], at - periods[pg]
                                )
                                if not inst[pg] and mm > completed[pg]:
                                    mm = completed[pg]
                        elif at < po:
                            mm = 0
                        elif is_source[pg]:
                            mm = (at - po) // periods[pg] + 1
                        else:
                            mm = (at - po) // periods[pg]
                            if not inst[pg] and mm > completed[pg]:
                                mm = completed[pg]
                    elif inst[pg]:
                        if rels is not None:
                            mm = bisect_right(rels[pg], at)
                        else:
                            mm = (
                                0 if at < po
                                else (at - po) // periods[pg] + 1
                            )
                    else:
                        fts = fins[pg]
                        mm = bisect_right(fts, at)
                        if casc is not None:
                            sts = starts[pg]
                            while (
                                mm
                                and fts[mm - 1] == at
                                and sts[mm - 1] == at
                                and 3 * (casc.get((pg, mm - 1), 0) + 1)
                                > rkey
                            ):
                                mm -= 1
                    if mm:
                        reads.append((pg, mm - cap if mm > cap else 0))
                if not reads:
                    p = pk_empty
                elif len(reads) == 1:
                    p = prov(*reads[0])
                else:
                    p = pk_merge(prov(pg, kk) for pg, kk in reads)
            mg[k] = p
            return p

        return prov

    def _monitored_count(
        self,
        offsets: Sequence[Time],
        duration: Time,
        completed: List[int],
        rels: Optional[List[List[Time]]] = None,
    ) -> int:
        gid = self.m_gid
        if not self.inst[gid]:
            return completed[gid]
        if rels is not None:
            return len(rels[gid])
        offset = offsets[gid]
        if offset > duration:
            return 0
        return (duration - offset) // self.periods[gid] + 1

    def disparity(
        self,
        offsets: Sequence[Time],
        seed: int,
        duration: Time,
        warmup: Time = 0,
        policy: PolicyLike = uniform_policy,
    ) -> Time:
        """Observed disparity of one replication.

        Equals ``simulate()`` + :class:`DisparityMonitor` on the system
        with these ``offsets`` (listed in graph-task order) under the
        same ``seed`` and ``policy``; replications the compiled loop
        cannot handle run exactly that fallback.
        """
        resolved = _resolve_policy(policy)
        t0 = _time.perf_counter()
        try:
            if self.ineligible_reason is not None or not self._offsets_in_domain(
                offsets
            ):
                return self._fallback_disparity(
                    offsets, seed, duration, warmup, resolved
                )
            starts, fins, completed, casc, rels = self._schedule_cached(
                offsets, seed, duration, resolved
            )
            prov = self._prov_resolver(
                offsets, starts, fins, completed, casc, rels
            )
            gid = self.m_gid
            count = self._monitored_count(offsets, duration, completed, rels)
            offset = offsets[gid]
            period = self.periods[gid]
            if rels is not None:
                k0 = bisect_left(rels[gid], warmup)
            else:
                k0 = 0
                if warmup > offset:
                    k0 = -(-(warmup - offset) // period)
            best = -1
            pd = self.packer.disparity
            for k in range(k0, count):
                d = pd(prov(gid, k))
                if d is not None and d > best:
                    best = d
            return best if best >= 0 else 0
        finally:
            PHASE_TIMES["replicate_s"] += _time.perf_counter() - t0

    def windowed_maxima(
        self,
        offsets: Sequence[Time],
        duration: Time,
        start: Time,
        window: Time,
        count: int,
        *,
        seed: int = 0,
        policy: PolicyLike = wcet_policy,
    ) -> List[Time]:
        """Per-window disparity maxima of the monitored task.

        The compiled equivalent of the steady-state probe's
        ``_WindowedDisparity`` observer: completed jobs released at or
        after ``start`` are bucketed into consecutive windows of length
        ``window``; windows without a sample read 0.  Requires an
        eligible scenario and in-domain offsets (callers check
        :attr:`eligible`; the offset search draws in ``[1, T]``).
        """
        if self.ineligible_reason is not None:
            raise ModelError(
                f"scenario not compiled-loop eligible: {self.ineligible_reason}"
            )
        if not self._offsets_in_domain(offsets):
            raise ModelError("offsets outside [0, T] for windowed probe")
        resolved = _resolve_policy(policy)
        t0 = _time.perf_counter()
        try:
            starts, fins, completed, casc, rels = self._schedule_cached(
                offsets, seed, duration, resolved
            )
            prov = self._prov_resolver(
                offsets, starts, fins, completed, casc, rels
            )
            gid = self.m_gid
            total = self._monitored_count(offsets, duration, completed, rels)
            offset = offsets[gid]
            period = self.periods[gid]
            if rels is not None:
                k0 = bisect_left(rels[gid], start)
            else:
                k0 = 0
                if start > offset:
                    k0 = -(-(start - offset) // period)
            per_window: Dict[int, Time] = {}
            pd = self.packer.disparity
            for k in range(k0, total):
                d = pd(prov(gid, k))
                if d is None:
                    continue
                release = (
                    rels[gid][k] if rels is not None
                    else offset + k * period
                )
                index = (release - start) // window
                if d > per_window.get(index, -1):
                    per_window[index] = d
            return [per_window.get(i, 0) for i in range(count)]
        finally:
            PHASE_TIMES["replicate_s"] += _time.perf_counter() - t0

    # ------------------------------------------------------------------
    # delta views
    # ------------------------------------------------------------------

    def with_offsets(
        self, offsets: Union[Sequence[Time], Mapping[str, Time]]
    ) -> "OffsetView":
        """A cheap per-candidate view of this scenario at ``offsets``.

        The delta-compilation entry point for offset-only sweeps: the
        offset-independent tables (task/unit tables, priority-rank
        bitmasks, the provenance domain, the backward closure, and the
        per-horizon release-stream tables) stay on this compiled
        scenario and are shared by every view; the view itself holds
        only the offset vector.  Replaying a candidate through
        ``view.disparity(...)`` / ``view.windowed_maxima(...)`` is
        byte-identical to a fresh :func:`compile_scenario` evaluated at
        the same offsets — including the per-replication simulator
        fallback when the offsets leave ``[0, T]`` (see
        :attr:`OffsetView.in_domain`).

        ``offsets`` is either a vector in graph-task order or a
        mapping from task name to offset covering exactly the graph's
        tasks (missing or unknown names raise).
        """
        return OffsetView(self, self._normalize_offsets(offsets))

    def _normalize_offsets(
        self, offsets: Union[Sequence[Time], Mapping[str, Time]]
    ) -> Tuple[Time, ...]:
        """An offset vector in graph-task order, from vector or mapping."""
        if isinstance(offsets, Mapping):
            if set(offsets) != set(self.names):
                missing = sorted(set(self.names) - set(offsets))
                unknown = sorted(set(offsets) - set(self.names))
                raise ModelError(
                    f"offset mapping must cover exactly the graph's tasks"
                    f" (missing {missing}, unknown {unknown})"
                )
            return tuple(offsets[name] for name in self.names)
        vector = tuple(offsets)
        if len(vector) != self.n:
            raise ModelError(
                f"expected {self.n} offsets, got {len(vector)}"
            )
        return vector

    def edit(self, **changes) -> "ScenarioView":
        """One view composing offset and structural edits of this scenario.

        The unified delta-compilation entry point.  Accepted keys:

        * ``offsets`` — a vector in graph-task order or a name mapping
          (exactly :meth:`with_offsets`),
        * ``periods`` — mapping ``task name -> new period``,
        * ``priorities`` — mapping ``task name -> new priority``,
        * ``capacities`` — mapping ``(src, dst) -> new capacity``.

        Unknown keys raise :class:`~repro.model.task.ModelError` (a
        ``ValueError``) listing the choices, as do unknown task names
        or edges and edits that violate task invariants (e.g. a period
        below the task's WCET).  An offsets-only edit returns the
        O(n) :class:`OffsetView`; any structural key derives a sibling
        :class:`CompiledScenario` that shares every table the edit
        does not touch (see :meth:`_derived`) and wraps it in a
        :class:`StructuralView`.  When ``offsets`` is not given the
        view evaluates at the edited graph's own task offsets.  Views
        whose result the compiled loop cannot replay — duplicate
        priorities after a priority edit, offsets left outside
        ``[0, T]`` by a period edit — fall back to the per-replication
        simulator on the edited system with identical results (see
        :attr:`OffsetView.reason`).
        """
        unknown = sorted(set(changes) - set(_EDIT_KEYS))
        if unknown:
            raise ModelError(
                f"unknown edit key(s) {unknown}; choose from {_EDIT_KEYS}"
            )
        periods = dict(changes.get("periods") or {})
        priorities = dict(changes.get("priorities") or {})
        capacities = dict(changes.get("capacities") or {})
        if not (periods or priorities or capacities):
            if "offsets" not in changes:
                raise ModelError(
                    f"edit() needs at least one of {_EDIT_KEYS}"
                )
            return self.with_offsets(changes["offsets"])
        graph = self.graph.copy()
        # Period before priority so a task edited in both keeps both;
        # Task invariants (wcet <= period, priority >= 0, ...) are
        # re-validated by the dataclass on every replacement.
        for name, period in periods.items():
            graph.replace_task(_replace(graph.task(name), period=period))
        for name, priority in priorities.items():
            graph.replace_task(graph.task(name).with_priority(priority))
        for (src, dst), capacity in capacities.items():
            graph.set_channel_capacity(src, dst, capacity)
        # The parent's response-time table rides along unchanged: the
        # simulation surface (compiled loop and fallback simulator
        # alike) never consults it, and recomputing bounds is the
        # analytical layer's job, not the sweep's.
        system = System(
            graph=graph, response_times=self.system.response_times
        )
        derived = self._derived(
            system,
            periods_changed=bool(periods),
            priorities_changed=bool(priorities),
            capacities_changed=bool(capacities),
        )
        if "offsets" in changes:
            offsets = derived._normalize_offsets(changes["offsets"])
        else:
            offsets = tuple(t.offset for t in graph.tasks)
        return StructuralView(derived, offsets, base=self)

    def with_period(self, task: str, period: Time) -> "StructuralView":
        """A view of this scenario with ``task``'s period set to ``period``."""
        return self.edit(periods={task: period})

    def with_priority(self, task: str, priority: int) -> "StructuralView":
        """A view of this scenario with ``task``'s priority set."""
        return self.edit(priorities={task: priority})

    def with_capacity(
        self, edge: Tuple[str, str], capacity: int
    ) -> "StructuralView":
        """A view of this scenario with channel ``edge`` resized."""
        return self.edit(capacities={edge: capacity})

    def _derived(
        self,
        system: System,
        *,
        periods_changed: bool,
        priorities_changed: bool,
        capacities_changed: bool,
    ) -> "CompiledScenario":
        """A sibling compiled scenario, recompiling only what the edit touched.

        The structural-delta core.  Per edit kind, the invalidation is:

        * **periods** — release-stream tables (``_stream_cache``) and
          the period-rank packing are rebuilt; the per-``(period,
          horizon)`` grid cache is aliased, so only grids of *new*
          periods are ever generated;
        * **priorities** — per-unit priority-rank tables (``rank_tid``
          / ``bit_of``) and the eligibility reasons are rebuilt;
          stream tables are period-only facts and stay shared;
        * **capacities** — only the per-edge channel tables
          (``in_edges``) are rebuilt; stream tables *and* the schedule
          memo stay shared, because buffer sizes never affect
          scheduling — a capacity sweep evaluated at fixed draws
          computes each schedule once across all candidates.

        Everything an edit cannot touch — task identity and order,
        unit mapping, execution-time tables, the monitored closure,
        the interned provenance domain (append-only, so sharing one
        packer across siblings is safe) — is aliased unconditionally.
        """
        t0 = _time.perf_counter()
        clone = CompiledScenario.__new__(CompiledScenario)
        clone.semantics = self.semantics
        clone._let = self._let
        graph = system.graph
        clone.system = system
        clone.graph = graph
        clone.task = self.task
        tasks = tuple(graph.tasks)
        clone.tasks = tasks
        clone.n = self.n
        clone.names = self.names
        clone._gid = self._gid
        clone.inst = self.inst
        # The fault plan and release models ride along unchanged:
        # edits replace periods/priorities/capacities only, and table
        # construction reads ``clone.tasks`` fresh per replication, so
        # a period edit of a jittered task re-draws its table from the
        # new grid automatically (nothing stale survives the edit).
        clone.faults = self.faults
        clone._faults_sig = self._faults_sig
        clone.release_models = [t.release_model for t in tasks]
        clone._nonperiodic = self._nonperiodic
        clone._needs_tables = self._needs_tables
        clone.periods = (
            [t.period for t in tasks] if periods_changed else self.periods
        )
        clone.bcets = self.bcets
        clone.wcets = self.wcets
        clone.spans = self.spans
        clone.unit_names = self.unit_names
        clone.unit_of = self.unit_of
        clone.n_units = self.n_units
        clone._track = self._track
        if priorities_changed:
            clone.rank_tid, clone.bit_of, reasons = clone._rank_tables(tasks)
            clone.ineligible_reasons = tuple(reasons)
        else:
            clone.rank_tid = self.rank_tid
            clone.bit_of = self.bit_of
            clone.ineligible_reasons = self.ineligible_reasons
        clone.keep = self.keep
        clone.m_gid = self.m_gid
        clone.packer = self.packer
        clone.is_source = self.is_source
        clone.in_edges = (
            clone._channel_tables(graph)
            if capacities_changed
            else self.in_edges
        )
        if periods_changed:
            clone.per_rank, clone._packable = clone._period_ranks()
            clone._stream_cache = {}
        else:
            clone.per_rank = self.per_rank
            clone._packable = self._packable
            clone._stream_cache = self._stream_cache
        clone._grid_cache = self._grid_cache
        # The schedule depends on periods, priorities, and offsets but
        # never on buffer capacities: capacity-only siblings alias the
        # parent's memo, any other edit starts a fresh one.
        if periods_changed or priorities_changed:
            clone._sched_cache = _ScheduleCache()
            clone._adv_cache = _ScheduleCache(maxsize=ADV_CACHE_SIZE)
        else:
            clone._sched_cache = self._sched_cache
            clone._adv_cache = self._adv_cache
        elapsed = _time.perf_counter() - t0
        clone.compile_s = elapsed
        PHASE_TIMES["compile_s"] += elapsed
        return clone

    # ------------------------------------------------------------------
    # fallback
    # ------------------------------------------------------------------

    def _with_offsets(self, offsets: Sequence[Time]) -> System:
        graph = self.graph.copy()
        for name, offset in zip(self.names, offsets):
            graph.replace_task(graph.task(name).with_offset(offset))
        return System(
            graph=graph, response_times=self.system.response_times
        )

    def _fallback_disparity(
        self,
        offsets: Sequence[Time],
        seed: int,
        duration: Time,
        warmup: Time,
        policy: ExecTimePolicy,
    ) -> Time:
        monitor = DisparityMonitor([self.task], warmup=warmup)
        simulate(
            self._with_offsets(offsets),
            duration,
            seed=seed,
            policy=policy,
            observers=[monitor],
            semantics=self.semantics,
            faults=self.faults,
        )
        return monitor.disparity(self.task)


@runtime_checkable
class ScenarioView(Protocol):
    """The shared surface of every delta-compilation view.

    :meth:`CompiledScenario.with_offsets` returns an
    :class:`OffsetView`, :meth:`CompiledScenario.edit` (and the
    ``with_period`` / ``with_priority`` / ``with_capacity``
    accessors) a :class:`StructuralView`; sweeps program against this
    protocol and never care which.  The contract every implementation
    honors: evaluating a view is byte-identical to a fresh
    :func:`compile_scenario` of the edited system — including the
    per-replication :class:`~repro.sim.engine.Simulator` fallback when
    ``delta_replay`` is ``False`` (``reason`` says why).
    """

    compiled: "CompiledScenario"
    offsets: Tuple[Time, ...]
    in_domain: bool

    @property
    def delta_replay(self) -> bool: ...

    @property
    def reason(self) -> Optional[str]: ...

    def disparity(
        self,
        seed: int,
        duration: Time,
        warmup: Time = 0,
        policy: PolicyLike = uniform_policy,
    ) -> Time: ...

    def windowed_maxima(
        self,
        duration: Time,
        start: Time,
        window: Time,
        count: int,
        *,
        seed: int = 0,
        policy: PolicyLike = wcet_policy,
    ) -> List[Time]: ...

    def edit(self, **changes) -> "ScenarioView": ...


class OffsetView:
    """One candidate offset vector bound to a :class:`CompiledScenario`.

    Produced by :meth:`CompiledScenario.with_offsets`; holds nothing
    but the offset vector, so constructing one per sweep candidate is
    O(n) while all heavy tables stay shared on the compiled scenario.
    ``in_domain`` reports whether every offset lies in ``[0, T]`` — the
    delta-replay eligibility rule; out-of-domain views still evaluate
    correctly through the per-replication simulator fallback.
    """

    __slots__ = ("compiled", "offsets", "in_domain")

    def __init__(
        self, compiled: CompiledScenario, offsets: Tuple[Time, ...]
    ) -> None:
        self.compiled = compiled
        self.offsets = offsets
        self.in_domain = compiled._offsets_in_domain(offsets)

    @property
    def delta_replay(self) -> bool:
        """True when this view replays through the compiled delta loop."""
        return self.compiled.eligible and self.in_domain

    @property
    def reason(self) -> Optional[str]:
        """Why this view falls back to the simulator, ``None`` on delta."""
        if self.delta_replay:
            return None
        parts = list(self.compiled.ineligible_reasons)
        if not self.in_domain:
            parts.append("offsets outside [0, T]")
        return "; ".join(parts)

    def edit(self, **changes) -> "ScenarioView":
        """A further-edited view, carrying this view's offsets.

        Composes: ``scenario.edit(offsets=v).edit(periods={...})``
        evaluates the structural edit at ``v`` (pass ``offsets=`` to
        override).  Structural chains derive from this view's compiled
        scenario, so each link shares every table its own edit does
        not touch.
        """
        changes.setdefault("offsets", self.offsets)
        return self.compiled.edit(**changes)

    def disparity(
        self,
        seed: int,
        duration: Time,
        warmup: Time = 0,
        policy: PolicyLike = uniform_policy,
    ) -> Time:
        """Observed disparity of one replication at this view's offsets."""
        return self.compiled.disparity(
            self.offsets, seed, duration, warmup, policy
        )

    def windowed_maxima(
        self,
        duration: Time,
        start: Time,
        window: Time,
        count: int,
        *,
        seed: int = 0,
        policy: PolicyLike = wcet_policy,
    ) -> List[Time]:
        """Per-window disparity maxima at this view's offsets."""
        return self.compiled.windowed_maxima(
            self.offsets,
            duration,
            start,
            window,
            count,
            seed=seed,
            policy=policy,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.compiled.task!r}, "
            f"{'delta' if self.delta_replay else 'fallback'})"
        )


class StructuralView(OffsetView):
    """A structurally edited scenario bound to its derived tables.

    Produced by :meth:`CompiledScenario.edit` when the edit touches
    periods, priorities, or capacities: ``compiled`` is the derived
    sibling scenario (sharing every table the edit did not invalidate
    — see :meth:`CompiledScenario._derived`), ``base`` the scenario
    the edit started from.  Evaluation, domain checking, fallback,
    and further :meth:`edit` chaining are inherited from
    :class:`OffsetView` — a structural view *is* an offset view over
    the derived tables, evaluated at the edited graph's offsets
    unless the edit supplied its own.
    """

    __slots__ = ("base",)

    def __init__(
        self,
        compiled: CompiledScenario,
        offsets: Tuple[Time, ...],
        *,
        base: CompiledScenario,
    ) -> None:
        super().__init__(compiled, offsets)
        self.base = base

    @property
    def scenario(self) -> CompiledScenario:
        """The derived compiled scenario (alias for ``compiled``)."""
        return self.compiled


def compile_scenario(
    system: System,
    task: str,
    *,
    semantics: str = "implicit",
    faults=None,
) -> CompiledScenario:
    """Compile ``system`` for batched replications monitoring ``task``.

    A non-empty ``faults`` plan (release dropouts) compiles into the
    scenario: every replication replays it, byte-identical to passing
    the same plan to :func:`~repro.sim.engine.simulate`.
    """
    return CompiledScenario(system, task, semantics=semantics, faults=faults)


def run_batch(
    system: System,
    task: str,
    *,
    sims: int,
    duration: Time,
    warmup: Time = 0,
    rng: Optional[random.Random] = None,
    seed: int = 0,
    policy: PolicyLike = uniform_policy,
    compiled: Optional[CompiledScenario] = None,
    semantics: str = "implicit",
    engine: str = "auto",
    faults=None,
) -> BatchResult:
    """Run ``sims`` randomized replications against one compiled scenario.

    Seeds and offsets are drawn exactly like
    ``AnalysisSession.observed_disparity``: per replication, first an
    execution-time seed from ``rng`` (or a local generator seeded with
    ``seed``), then one offset in ``[1, T]`` per task in graph order —
    so the per-replication disparities are byte-identical to the
    sequential ``simulate()`` loop under the same generator state and
    ``semantics`` (``"implicit"`` or ``"let"``).  A pre-``compiled``
    scenario must have been compiled under the same semantics.

    ``engine`` selects the replay tier.  ``"auto"`` (default) takes
    the fastest eligible one: the **columnar** batch engine (all
    replications advanced in one C-kernel call, provenance derived in
    bulk — requires numpy, a batchable named policy, and the runtime
    C kernel), else the **compiled** per-replication loop, else the
    per-replication **simulator**.  ``"columnar"`` forces the columnar
    tier and raises a :class:`~repro.model.task.ModelError` listing
    every unmet rule; ``"compiled"`` skips the columnar tier (the
    pre-columnar behavior: compiled loop when eligible, simulator
    fallback); ``"simulator"`` forces the plain simulator.  All tiers
    return identical disparities.  The batched tiers pre-draw every
    replication's seed/offsets, so after a mid-batch LET-violation
    error ``rng`` has advanced past all ``sims`` draws (the
    sequential loop stops at the violating replication).

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`) compiles into
    the scenario as per-replication release masks, so faulted runs
    stay eligible for the batched tiers; a pre-``compiled`` scenario
    must have been compiled under a plan with the same signature.
    """
    if sims < 0:
        raise ModelError(f"sims must be >= 0, got {sims}")
    if engine not in ("auto", "columnar", "compiled", "simulator"):
        raise ModelError(
            f"unknown engine {engine!r}; choose from "
            f"('auto', 'columnar', 'compiled', 'simulator')"
        )
    resolved = _resolve_policy(policy)
    if rng is None:
        rng = random.Random(seed)
    compile_s = 0.0
    if compiled is None:
        compiled = CompiledScenario(
            system, task, semantics=semantics, faults=faults
        )
        compile_s = compiled.compile_s
    elif compiled.task != task:
        raise ModelError(
            f"compiled scenario monitors {compiled.task!r}, not {task!r}"
        )
    elif compiled.semantics != semantics:
        raise ModelError(
            f"compiled scenario replays {compiled.semantics!r} semantics, "
            f"not {semantics!r}"
        )
    elif compiled._faults_sig != (faults.signature() if faults else ()):
        raise ModelError(
            "compiled scenario was compiled under a different fault plan; "
            "recompile with compile_scenario(..., faults=...)"
        )
    t0 = _time.perf_counter()
    periods = compiled.periods
    n = compiled.n

    columnar_reasons: Optional[List[str]] = None
    if engine in ("auto", "columnar"):
        columnar_reasons = list(compiled.ineligible_reasons)
        if _np is None:
            columnar_reasons.append("numpy unavailable")
        else:
            from repro.sim import columnar as _columnar

            columnar_reasons.extend(
                _columnar.ineligibility_reasons(compiled, resolved)
            )
        if engine == "columnar" and columnar_reasons:
            raise ModelError(
                "columnar engine unavailable: "
                + "; ".join(columnar_reasons)
            )
    if columnar_reasons is not None and not columnar_reasons:
        from repro.sim import columnar as _columnar

        draws = [
            (
                rng.randrange(2**31),
                tuple(rng.randint(1, periods[tid]) for tid in range(n)),
            )
            for _ in range(sims)
        ]
        disparities = _columnar.run_columnar(
            compiled, draws, duration, warmup, resolved
        )
        return BatchResult(
            task=task,
            disparities=tuple(disparities),
            engine="columnar",
            compile_s=compile_s,
            run_s=_time.perf_counter() - t0,
            semantics=semantics,
            reason=None,
        )

    force_sim = engine == "simulator"
    if force_sim:
        ran = "simulator"
        reason = compiled.ineligible_reason or "engine='simulator' requested"
    elif compiled.eligible:
        ran = "compiled"
        reason = (
            "; ".join(columnar_reasons)
            if columnar_reasons
            else ("engine='compiled' requested" if engine == "compiled" else None)
        )
    else:
        ran = "simulator"
        reason = compiled.ineligible_reason
    disparities = []
    for _ in range(sims):
        run_seed = rng.randrange(2**31)
        offsets = tuple(rng.randint(1, periods[tid]) for tid in range(n))
        if force_sim:
            disparities.append(
                compiled._fallback_disparity(
                    offsets, run_seed, duration, warmup, resolved
                )
            )
        else:
            # Each replication is one offset-delta view of the shared
            # compiled tables (offsets drawn in [1, T] are always in
            # domain, so this is always the delta replay path).
            disparities.append(
                compiled.with_offsets(offsets).disparity(
                    run_seed, duration, warmup, resolved
                )
            )
    return BatchResult(
        task=task,
        disparities=tuple(disparities),
        engine=ran,
        compile_s=compile_s,
        run_s=_time.perf_counter() - t0,
        semantics=semantics,
        reason=reason,
    )


__all__ = [
    "BatchResult",
    "CompiledScenario",
    "OffsetView",
    "PHASE_TIMES",
    "PolicyLike",
    "SCHED_CACHE_SIZE",
    "ScenarioView",
    "StructuralView",
    "compile_scenario",
    "reset_phase_times",
    "run_batch",
]

"""Discrete-event simulation of cause-effect systems."""

from repro.sim.channels import ChannelState
from repro.sim.engine import (
    Job,
    Observer,
    SimulationResult,
    SimulationStats,
    Simulator,
    randomize_offsets,
    simulate,
)
from repro.sim.exec_time import (
    ExecTimePolicy,
    bcet_policy,
    extremes_policy,
    named_policy,
    per_task_policy,
    uniform_policy,
    wcet_policy,
)
from repro.sim.faults import DropoutWindow, FaultPlan, StalenessMonitor
from repro.sim.gantt import render_gantt
from repro.sim.metrics import (
    BackwardTimeMonitor,
    DataAgeMonitor,
    DisparityMonitor,
    JobRecord,
    JobTableMonitor,
    ObservedRange,
)
from repro.sim.provenance import (
    PackedProvenance,
    Provenance,
    ProvenancePacker,
    Token,
    disparity_of,
    merge_provenance,
    pairwise_disparity_of,
    source_token,
)

__all__ = [
    "ChannelState",
    "Job",
    "Observer",
    "SimulationResult",
    "SimulationStats",
    "Simulator",
    "randomize_offsets",
    "simulate",
    "ExecTimePolicy",
    "bcet_policy",
    "extremes_policy",
    "named_policy",
    "per_task_policy",
    "uniform_policy",
    "wcet_policy",
    "DropoutWindow",
    "FaultPlan",
    "StalenessMonitor",
    "render_gantt",
    "PackedProvenance",
    "ProvenancePacker",
    "BackwardTimeMonitor",
    "DataAgeMonitor",
    "DisparityMonitor",
    "JobRecord",
    "JobTableMonitor",
    "ObservedRange",
    "Provenance",
    "Token",
    "disparity_of",
    "merge_provenance",
    "pairwise_disparity_of",
    "source_token",
]

"""Data tokens and source provenance.

Every data token carries the provenance needed to evaluate Definition 2
exactly: for each *source task* whose raw data the token (transitively)
originates from, the minimum and maximum timestamp among all raw data
items that reached the token through any path.  The time disparity of a
job is then

    disparity = (max over sources of max-timestamp)
              - (min over sources of min-timestamp)

which equals the maximum pairwise timestamp difference over *all* the
job's sources — including two raw data items of the *same* sensor that
arrived through different paths (the counter-intuitive case Section IV
opens with).

Storing ``(min, max)`` per source instead of the full multiset keeps
tokens O(#sources) while preserving the disparity metric exactly (the
maximum pairwise difference only depends on the extremes).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.units import Time

if os.environ.get("REPRO_NO_NUMPY"):  # pragma: no cover - CI leg
    _np = None
else:
    try:  # pragma: no cover - exercised via both branches in CI images
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None

#: Per-source timestamp extremes: source task name -> (min, max).
Provenance = Dict[str, Tuple[Time, Time]]


class Token:
    """A data token in a channel.

    Attributes:
        produced_at: Finish time of the job that wrote the token.
        producer: Name of the producing task.
        producer_release: Release time of the producing job (used to
            reconstruct observed backward times).
        provenance: Source-timestamp extremes (see module docstring).
    """

    __slots__ = ("produced_at", "producer", "producer_release", "provenance")

    def __init__(
        self,
        produced_at: Time,
        producer: str,
        producer_release: Time,
        provenance: Provenance,
    ) -> None:
        self.produced_at = produced_at
        self.producer = producer
        self.producer_release = producer_release
        self.provenance = provenance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Token({self.producer}@{self.produced_at}, "
            f"sources={self.provenance})"
        )


def source_token(source: str, timestamp: Time) -> Token:
    """Token produced by a source task; its timestamp is its release."""
    return Token(
        produced_at=timestamp,
        producer=source,
        producer_release=timestamp,
        provenance={source: (timestamp, timestamp)},
    )


def merge_provenance(parts: Iterable[Provenance]) -> Provenance:
    """Combine the provenance of several read tokens (min/max per source)."""
    merged: Provenance = {}
    for part in parts:
        for source, (lo, hi) in part.items():
            existing = merged.get(source)
            if existing is None:
                merged[source] = (lo, hi)
            else:
                merged[source] = (min(existing[0], lo), max(existing[1], hi))
    return merged


def disparity_of(provenance: Provenance) -> Optional[Time]:
    """Maximum pairwise timestamp difference; ``None`` for no sources.

    A token with a single source timestamp has disparity 0; a token with
    no provenance (produced before any source data arrived) has no
    defined disparity and yields ``None``.
    """
    if not provenance:
        return None
    lo = min(pair[0] for pair in provenance.values())
    hi = max(pair[1] for pair in provenance.values())
    return hi - lo


#: Interned provenance: ``(mask, stamps)`` where bit ``i`` of ``mask``
#: says source index ``i`` contributed, and ``stamps[2*i] / stamps[2*i+1]``
#: hold that source's min/max timestamp (0 when the bit is clear).
PackedProvenance = Tuple[int, Tuple[Time, ...]]


class ProvenancePacker:
    """Interned source-index bitmask form of :data:`Provenance`.

    The simulator's hot path merges provenance mappings once per job;
    with dicts that is hashing and tuple churn per source.  Packing the
    (fixed, known up front) source set into integer indices turns a
    merge into bitmask union plus min/max on a flat stamp array —
    integer ops only, no hashing.  ``pack``/``unpack`` convert at the
    boundary so observers keep seeing plain dicts.

    The packed form is equivalent to the dict form by construction:
    ``unpack(merge(map(pack, parts))) == merge_provenance(parts)``
    (property-tested in ``tests/test_sim_provenance_packed.py``).
    """

    __slots__ = ("sources", "index", "_empty")

    def __init__(self, sources: Sequence[str]) -> None:
        self.sources: Tuple[str, ...] = tuple(sources)
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.sources)
        }
        self._empty: PackedProvenance = (0, (0,) * (2 * len(self.sources)))

    @property
    def empty(self) -> PackedProvenance:
        """The packed form of ``{}``."""
        return self._empty

    def source(self, name: str, timestamp: Time) -> PackedProvenance:
        """Packed ``{name: (timestamp, timestamp)}``."""
        i = self.index[name]
        stamps = list(self._empty[1])
        stamps[2 * i] = timestamp
        stamps[2 * i + 1] = timestamp
        return (1 << i, tuple(stamps))

    def pack(self, provenance: Provenance) -> PackedProvenance:
        """Dict form -> packed form."""
        mask = 0
        stamps = list(self._empty[1])
        for name, (lo, hi) in provenance.items():
            i = self.index[name]
            mask |= 1 << i
            stamps[2 * i] = lo
            stamps[2 * i + 1] = hi
        return (mask, tuple(stamps))

    def unpack(self, packed: PackedProvenance) -> Provenance:
        """Packed form -> dict form (insertion order = source index)."""
        mask, stamps = packed
        out: Provenance = {}
        sources = self.sources
        while mask:
            bit = mask & -mask
            i = bit.bit_length() - 1
            out[sources[i]] = (stamps[2 * i], stamps[2 * i + 1])
            mask ^= bit
        return out

    def merge(self, parts: Iterable[PackedProvenance]) -> PackedProvenance:
        """Packed :func:`merge_provenance`: mask union + min/max folds."""
        acc_mask = -1
        acc: list = []
        for mask, stamps in parts:
            if acc_mask < 0:
                acc_mask = mask
                acc = list(stamps)
                continue
            fresh = mask & ~acc_mask
            shared = mask & acc_mask
            acc_mask |= mask
            while fresh:
                bit = fresh & -fresh
                i2 = 2 * (bit.bit_length() - 1)
                acc[i2] = stamps[i2]
                acc[i2 + 1] = stamps[i2 + 1]
                fresh ^= bit
            while shared:
                bit = shared & -shared
                i2 = 2 * (bit.bit_length() - 1)
                if stamps[i2] < acc[i2]:
                    acc[i2] = stamps[i2]
                if stamps[i2 + 1] > acc[i2 + 1]:
                    acc[i2 + 1] = stamps[i2 + 1]
                shared ^= bit
        if acc_mask < 0:
            return self._empty
        return (acc_mask, tuple(acc))

    def disparity(self, packed: PackedProvenance) -> Optional[Time]:
        """Packed :func:`disparity_of`."""
        mask, stamps = packed
        if not mask:
            return None
        lo: Optional[Time] = None
        hi: Optional[Time] = None
        while mask:
            bit = mask & -mask
            i2 = 2 * (bit.bit_length() - 1)
            if lo is None or stamps[i2] < lo:
                lo = stamps[i2]
            if hi is None or stamps[i2 + 1] > hi:
                hi = stamps[i2 + 1]
            mask ^= bit
        return hi - lo  # type: ignore[operator]


class StampColumns:
    """Columnar packed provenance: one batch of jobs per instance.

    The array form of :class:`ProvenancePacker`'s ``(mask, stamps)``
    tuples, for the columnar batch engine: ``lo`` / ``hi`` are
    ``(sims, jobs, n_sources)`` int64 arrays holding each (sim, job)'s
    per-source timestamp extremes.  The bitmask is implicit — a source
    that never contributed keeps the sentinels ``+SENTINEL`` /
    ``-SENTINEL``, which are absorbing for the min/max folds exactly
    as an unset mask bit is skipped by :meth:`ProvenancePacker.merge`;
    a job whose every source is sentinel corresponds to
    ``ProvenancePacker.empty`` (disparity ``None``).

    Requires numpy; the batch layer only builds these when it is
    available.
    """

    #: Absorbing no-contribution stamp; well above any schedule
    #: instant yet far from int64 overflow under min/max folds.
    SENTINEL = 1 << 62

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi) -> None:
        self.lo = lo
        self.hi = hi

    @classmethod
    def empty(cls, sims: int, jobs: int, n_sources: int) -> "StampColumns":
        """The packed-``empty`` column block (no source contributed)."""
        shape = (sims, jobs, n_sources)
        return cls(
            _np.full(shape, cls.SENTINEL, dtype=_np.int64),
            _np.full(shape, -cls.SENTINEL, dtype=_np.int64),
        )

    @classmethod
    def source(
        cls, sims: int, jobs: int, n_sources: int, index: int, stamps
    ) -> "StampColumns":
        """Columnar :meth:`ProvenancePacker.source`.

        ``stamps`` is the ``(sims, jobs)`` release-timestamp matrix of
        the source task holding source ``index``; every other source
        stays at the sentinels.
        """
        cols = cls.empty(sims, jobs, n_sources)
        cols.lo[:, :, index] = stamps
        cols.hi[:, :, index] = stamps
        return cols

    def merge_read(self, producer: "StampColumns", rows, valid) -> None:
        """Fold one read edge into this consumer block, in place.

        ``rows`` is the ``(sims, jobs)`` index matrix of the producer
        job each consumer job reads (the FIFO head), ``valid`` the
        boolean matrix of consumer jobs that read anything at all
        (``mm > 0`` in the scalar resolver); invalid reads contribute
        the sentinels, i.e. nothing.  Per source this is the
        ``min``/``max`` fold of :meth:`ProvenancePacker.merge`.
        """
        rows3 = rows[:, :, None]
        got_lo = _np.take_along_axis(producer.lo, rows3, axis=1)
        got_hi = _np.take_along_axis(producer.hi, rows3, axis=1)
        valid3 = valid[:, :, None]
        _np.minimum(
            self.lo,
            _np.where(valid3, got_lo, self.SENTINEL),
            out=self.lo,
        )
        _np.maximum(
            self.hi,
            _np.where(valid3, got_hi, -self.SENTINEL),
            out=self.hi,
        )

    def disparity(self):
        """Columnar :meth:`ProvenancePacker.disparity`.

        Returns ``(values, defined)``: per (sim, job) the disparity
        ``max(hi) - min(lo)`` over contributing sources, and the mask
        of jobs with at least one contributor (where ``defined`` is
        false the scalar form yields ``None`` and ``values`` is
        garbage — callers must mask).
        """
        lo_min = self.lo.min(axis=2)
        hi_max = self.hi.max(axis=2)
        return hi_max - lo_min, lo_min < self.SENTINEL


def pairwise_disparity_of(
    provenance: Provenance, source_a: str, source_b: str
) -> Optional[Time]:
    """Max timestamp difference restricted to two sources.

    For ``source_a == source_b`` this is the spread of that source's
    own timestamps (multi-path case).  Returns ``None`` unless both
    sources contributed to the token.
    """
    a = provenance.get(source_a)
    b = provenance.get(source_b)
    if a is None or b is None:
        return None
    if source_a == source_b:
        return a[1] - a[0]
    return max(a[1] - b[0], b[1] - a[0])

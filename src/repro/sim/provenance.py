"""Data tokens and source provenance.

Every data token carries the provenance needed to evaluate Definition 2
exactly: for each *source task* whose raw data the token (transitively)
originates from, the minimum and maximum timestamp among all raw data
items that reached the token through any path.  The time disparity of a
job is then

    disparity = (max over sources of max-timestamp)
              - (min over sources of min-timestamp)

which equals the maximum pairwise timestamp difference over *all* the
job's sources — including two raw data items of the *same* sensor that
arrived through different paths (the counter-intuitive case Section IV
opens with).

Storing ``(min, max)`` per source instead of the full multiset keeps
tokens O(#sources) while preserving the disparity metric exactly (the
maximum pairwise difference only depends on the extremes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.units import Time

#: Per-source timestamp extremes: source task name -> (min, max).
Provenance = Dict[str, Tuple[Time, Time]]


class Token:
    """A data token in a channel.

    Attributes:
        produced_at: Finish time of the job that wrote the token.
        producer: Name of the producing task.
        producer_release: Release time of the producing job (used to
            reconstruct observed backward times).
        provenance: Source-timestamp extremes (see module docstring).
    """

    __slots__ = ("produced_at", "producer", "producer_release", "provenance")

    def __init__(
        self,
        produced_at: Time,
        producer: str,
        producer_release: Time,
        provenance: Provenance,
    ) -> None:
        self.produced_at = produced_at
        self.producer = producer
        self.producer_release = producer_release
        self.provenance = provenance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Token({self.producer}@{self.produced_at}, "
            f"sources={self.provenance})"
        )


def source_token(source: str, timestamp: Time) -> Token:
    """Token produced by a source task; its timestamp is its release."""
    return Token(
        produced_at=timestamp,
        producer=source,
        producer_release=timestamp,
        provenance={source: (timestamp, timestamp)},
    )


def merge_provenance(parts: Iterable[Provenance]) -> Provenance:
    """Combine the provenance of several read tokens (min/max per source)."""
    merged: Provenance = {}
    for part in parts:
        for source, (lo, hi) in part.items():
            existing = merged.get(source)
            if existing is None:
                merged[source] = (lo, hi)
            else:
                merged[source] = (min(existing[0], lo), max(existing[1], hi))
    return merged


def disparity_of(provenance: Provenance) -> Optional[Time]:
    """Maximum pairwise timestamp difference; ``None`` for no sources.

    A token with a single source timestamp has disparity 0; a token with
    no provenance (produced before any source data arrived) has no
    defined disparity and yields ``None``.
    """
    if not provenance:
        return None
    lo = min(pair[0] for pair in provenance.values())
    hi = max(pair[1] for pair in provenance.values())
    return hi - lo


def pairwise_disparity_of(
    provenance: Provenance, source_a: str, source_b: str
) -> Optional[Time]:
    """Max timestamp difference restricted to two sources.

    For ``source_a == source_b`` this is the spread of that source's
    own timestamps (multi-path case).  Returns ``None`` unless both
    sources contributed to the token.
    """
    a = provenance.get(source_a)
    b = provenance.get(source_b)
    if a is None or b is None:
        return None
    if source_a == source_b:
        return a[1] - a[0]
    return max(a[1] - b[0], b[1] - a[0])

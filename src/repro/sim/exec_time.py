"""Execution-time policies for simulated jobs.

The analysis bounds hold for every run-time behaviour with execution
times in ``[B(tau), W(tau)]``; the simulator draws per-job execution
times from a policy.  The paper's evaluation simulates randomized runs
(its ``Sim`` series is "a lower bound of the worst-case time disparity
instead of a safe upper-bound"), so the default policy is uniform.
Adversarial policies (always-WCET, always-BCET, extremes) help push the
observed disparity closer to the analytical worst case in tests.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from repro.model.task import ModelError, Task
from repro.units import Time

#: A policy maps (task, job_index, rng) to an execution time.
ExecTimePolicy = Callable[[Task, int, random.Random], Time]


def uniform_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Uniform draw from ``[B(tau), W(tau)]`` (the default).

    The draw is ``bcet + int(rng.random() * span)`` — the exact stream
    the optimized loops inline — so every loop (classic, fast, general,
    compiled batch) consumes the same number of RNG states and produces
    identical schedules for the same seed.  Degenerate ranges
    (``bcet == wcet``) consume no randomness at all.
    """
    if task.bcet == task.wcet:
        return task.wcet
    return task.bcet + int(rng.random() * (task.wcet - task.bcet + 1))


def wcet_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Every job takes its WCET."""
    return task.wcet


def bcet_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Every job takes its BCET."""
    return task.bcet


def extremes_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Each job takes either BCET or WCET with equal probability.

    Extremal execution times maximize jitter, which widens the observed
    backward-time range and typically raises the observed disparity —
    useful for stress tests that push the simulated lower bound toward
    the analytical bound.
    """
    return task.bcet if rng.random() < 0.5 else task.wcet


def per_task_policy(assignments: Dict[str, ExecTimePolicy],
                    default: ExecTimePolicy = uniform_policy) -> ExecTimePolicy:
    """Compose a policy from per-task overrides (failure injection etc.)."""

    def policy(task: Task, job_index: int, rng: random.Random) -> Time:
        chosen = assignments.get(task.name, default)
        return chosen(task, job_index, rng)

    return policy


_NAMED: Dict[str, ExecTimePolicy] = {
    "uniform": uniform_policy,
    "wcet": wcet_policy,
    "bcet": bcet_policy,
    "extremes": extremes_policy,
}


def named_policy(name: str) -> ExecTimePolicy:
    """Look up a policy by name (CLI / config plumbing)."""
    try:
        return _NAMED[name]
    except KeyError:
        raise ModelError(
            f"unknown execution-time policy {name!r}; "
            f"choose from {sorted(_NAMED)}"
        ) from None

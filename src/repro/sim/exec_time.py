"""Execution-time policies for simulated jobs.

The analysis bounds hold for every run-time behaviour with execution
times in ``[B(tau), W(tau)]``; the simulator draws per-job execution
times from a policy.  The paper's evaluation simulates randomized runs
(its ``Sim`` series is "a lower bound of the worst-case time disparity
instead of a safe upper-bound"), so the default policy is uniform.
Adversarial policies (always-WCET, always-BCET, extremes) help push the
observed disparity closer to the analytical worst case in tests.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, Sequence

from repro.model.task import ModelError, Task
from repro.units import Time

if os.environ.get("REPRO_NO_NUMPY"):  # pragma: no cover - CI leg
    _np = None
else:
    try:  # pragma: no cover - exercised via both branches in CI images
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None

#: A policy maps (task, job_index, rng) to an execution time.
ExecTimePolicy = Callable[[Task, int, random.Random], Time]


def uniform_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Uniform draw from ``[B(tau), W(tau)]`` (the default).

    The draw is ``bcet + int(rng.random() * span)`` — the exact stream
    the optimized loops inline — so every loop (classic, fast, general,
    compiled batch) consumes the same number of RNG states and produces
    identical schedules for the same seed.  Degenerate ranges
    (``bcet == wcet``) consume no randomness at all.
    """
    if task.bcet == task.wcet:
        return task.wcet
    return task.bcet + int(rng.random() * (task.wcet - task.bcet + 1))


def wcet_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Every job takes its WCET."""
    return task.wcet


def bcet_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Every job takes its BCET."""
    return task.bcet


def extremes_policy(task: Task, job_index: int, rng: random.Random) -> Time:
    """Each job takes either BCET or WCET with equal probability.

    Extremal execution times maximize jitter, which widens the observed
    backward-time range and typically raises the observed disparity —
    useful for stress tests that push the simulated lower bound toward
    the analytical bound.
    """
    return task.bcet if rng.random() < 0.5 else task.wcet


def per_task_policy(assignments: Dict[str, ExecTimePolicy],
                    default: ExecTimePolicy = uniform_policy) -> ExecTimePolicy:
    """Compose a policy from per-task overrides (failure injection etc.)."""

    def policy(task: Task, job_index: int, rng: random.Random) -> Time:
        chosen = assignments.get(task.name, default)
        return chosen(task, job_index, rng)

    return policy


#: Columnar-kernel encoding of the named policies: how the batched
#: advance turns one raw U[0,1) variate (or none) into an execution
#: time.  0 — ``bcet + int(u * span)``, one variate per job of a task
#: with ``span > 1``; 1/2 — WCET/BCET, no variates; 3 — one variate
#: per job, ``bcet if u < 0.5 else wcet``.  Policies not listed here
#: (arbitrary callables, per-task compositions) are not batchable and
#: keep the per-replication engines.
BATCH_POLICY_MODES: Dict[ExecTimePolicy, int] = {
    uniform_policy: 0,
    wcet_policy: 1,
    bcet_policy: 2,
    extremes_policy: 3,
}


def draw_batch(seeds: Sequence[int], count: int):
    """Raw U[0,1) variates for a batch, one RNG stream per sim.

    Returns a ``(len(seeds), count)`` float64 ndarray whose row ``i``
    is **bit-for-bit** the stream ``random.Random(seeds[i]).random()``
    would yield over ``count`` calls — the contract that keeps the
    columnar batch engine byte-identical to the per-replication loops.

    CPython and numpy both drive MT19937 but seed it differently
    (``init_by_array`` vs ``init_genrand``), so seeding a
    ``RandomState`` with the same integer diverges immediately.
    Instead the CPython generator's key is injected as raw state:
    ``random.Random(seed).getstate()`` exposes the 624-word vector and
    position, ``RandomState.set_state`` accepts them verbatim, and
    both sides then derive each double from two 32-bit draws the same
    way (53-bit ``(a >> 5) * 2**26 + (b >> 6)) / 2**53``).
    """
    if _np is None:
        raise ModelError("draw_batch requires numpy")
    out = _np.empty((len(seeds), count), dtype=_np.float64)
    state = _np.random.RandomState()
    for i, seed in enumerate(seeds):
        key = random.Random(seed).getstate()[1]
        state.set_state(
            ("MT19937", _np.asarray(key[:624], dtype=_np.uint32), key[624])
        )
        out[i] = state.random_sample(count)
    return out


_NAMED: Dict[str, ExecTimePolicy] = {
    "uniform": uniform_policy,
    "wcet": wcet_policy,
    "bcet": bcet_policy,
    "extremes": extremes_policy,
}


def named_policy(name: str) -> ExecTimePolicy:
    """Look up a policy by name (CLI / config plumbing)."""
    try:
        return _NAMED[name]
    except KeyError:
        raise ModelError(
            f"unknown execution-time policy {name!r}; "
            f"choose from {sorted(_NAMED)}"
        ) from None

"""Columnar batch replay: advance and derive a whole batch at once.

The third engine tier behind :func:`repro.sim.batch.run_batch`.  Where
the compiled loop replays replications one at a time (python event
loop per sim), this module processes the batch as struct-of-arrays:

* **draw** — every replication's execution-time variates come from one
  :func:`repro.sim.exec_time.draw_batch` call, bit-for-bit the streams
  ``random.Random(seed)`` would produce;
* **advance** — all NP-FP schedules advance in one call into the
  runtime-compiled C kernel (``_ckernel.c`` via
  :mod:`repro.sim.ckernel`), each sim reading its own row of the
  batched release streams and writing ``(sims, slots)`` start/finish/
  cascade columns;
* **derive** — provenance and disparity come from vectorized
  column algebra over those arrays (:class:`~repro.sim.provenance
  .StampColumns` blocks folded in topological order), replacing the
  per-sim memoized resolver.

Every step reproduces the scalar reference exactly: the variate
streams are bit-identical, the C kernel is a transliteration of
``CompiledScenario._schedule``, and the derive implements the same
FIFO-head / cascade-visibility rules as ``_prov_resolver`` — enforced
by the differential suite in ``tests/test_batch_columnar.py``.

Job columns are padded to the offset-0 bound ``duration // T + 1`` per
task; slots a replication never filled keep the ``PAD`` time (beyond
any schedulable instant), which sorts after every real record and is
masked out of the final disparity fold, so shorter replications never
contaminate longer ones.
"""

from __future__ import annotations

import ctypes
import os
import time as _time
from collections import deque
from typing import Dict, List, Sequence, Tuple

if os.environ.get("REPRO_NO_NUMPY"):  # pragma: no cover - CI leg
    _np = None
else:
    try:  # pragma: no cover - exercised via both branches in CI images
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None

from repro.model.task import ModelError
from repro.sim import batch as _batch
from repro.sim import ckernel
from repro.sim.exec_time import BATCH_POLICY_MODES, draw_batch
from repro.sim.provenance import StampColumns
from repro.sim.release import max_jobs
from repro.units import Time

#: The C kernel's ready masks are one ``uint64`` per unit.
MAX_RANKS = 64

_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_I32 = ctypes.POINTER(ctypes.c_int32)
_P_U64 = ctypes.POINTER(ctypes.c_uint64)
_P_F64 = ctypes.POINTER(ctypes.c_double)


def _p64(a):
    return a.ctypes.data_as(_P_I64)


def _p32(a):
    return a.ctypes.data_as(_P_I32)


def _pu64(a):
    return a.ctypes.data_as(_P_U64)


def _pf64(a):
    return a.ctypes.data_as(_P_F64)


def ineligibility_reasons(compiled, policy) -> List[str]:
    """Why the columnar tier cannot replay ``compiled`` (empty = can).

    Collected on top of ``compiled.ineligible_reasons`` (the compiled
    loop's own rules, which the columnar tier inherits): the policy
    must be one of the named batchable singletons, per-unit rank
    counts must fit the kernel's 64-bit ready masks, and the advance
    kernel must load (first call compiles it; see
    :func:`repro.sim.ckernel.load_kernel`).
    """
    reasons: List[str] = []
    if _np is None:
        reasons.append("numpy unavailable")
    if BATCH_POLICY_MODES.get(policy) is None:
        reasons.append(
            "policy is not a batchable named policy "
            "(uniform/wcet/bcet/extremes)"
        )
    if any(len(members) > MAX_RANKS for members in compiled.rank_tid):
        reasons.append(
            f"a unit hosts more than {MAX_RANKS} compute tasks "
            f"(kernel ready masks are 64-bit)"
        )
    kernel, why = ckernel.load_kernel()
    if kernel is None:
        reasons.append(f"advance kernel unavailable: {why}")
    return reasons


def run_columnar(
    compiled,
    draws: Sequence[Tuple[int, Tuple[Time, ...]]],
    duration: Time,
    warmup: Time,
    policy,
) -> List[Time]:
    """Per-replication disparities for ``draws`` ((seed, offsets) pairs).

    The columnar equivalent of evaluating
    ``compiled.with_offsets(offsets).disparity(seed, ...)`` per pair —
    same values, one batched advance plus one bulk derive.  Offsets
    must lie in ``[0, T]`` (callers draw them in ``[1, T]``).
    """
    if _np is None:
        raise ModelError("columnar engine requires numpy")
    if not draws:
        return []
    seeds = [seed for seed, _offs in draws]
    offs = _np.array([offsets for _seed, offsets in draws], dtype=_np.int64)
    adv = _advance(compiled, seeds, offs, duration, policy)
    return _derive(compiled, adv, offs, duration, warmup)


# ----------------------------------------------------------------------
# phase 1: batched schedule advance
# ----------------------------------------------------------------------


def _job_cap(compiled, tid: int, duration: Time) -> int:
    """Job-slot bound of one task: the most releases any sim can see.

    ``duration // T + 1`` (the offset-0 release count) for periodic and
    jittered models, ``duration // min_gap + 1`` for sporadic ones —
    :func:`repro.sim.release.max_jobs`, which the padded job columns,
    release tables, and variate budgets must all agree on.
    """
    return max_jobs(compiled.tasks[tid], duration)


def _draw_budget(compiled, duration: Time, mode: int) -> int:
    """Offset-independent upper bound on the variates one sim consumes.

    Uniform draws once per dispatch of a ``span > 1`` task, extremes
    once per dispatch of any compute task, WCET/BCET never; dispatches
    per task are bounded by the release-count bound :func:`_job_cap`
    (fault masks only shrink it).  The kernel's cursor errors out if a
    sim ever outruns this budget (an invariant, not an input
    condition).
    """
    if mode in (1, 2):
        return 0
    total = 0
    for tid in range(compiled.n):
        if compiled.inst[tid]:
            continue
        if mode == 0 and compiled.spans[tid] <= 1:
            continue
        total += _job_cap(compiled, tid, duration)
    return total


def _release_streams(compiled, seeds, offs, duration: Time):
    """Batched ``_release_stream``: ``(sims, W)`` rows in pop order.

    The packed single-key path applies each sim's offset vector as a
    row of shift vectors over the shared ``_stream_tables`` and
    argsorts per row; the lex path broadcasts the five-key lexsort.
    Both append the ``duration + 1`` sentinel column the kernel's
    event loop terminates on.  Row ``i`` equals
    ``compiled._release_stream(offsets_i, duration)`` exactly.

    Returns ``(rel_times, rel_tids, rels_rows)``.  In table mode
    (fault plan or non-periodic release models) each row is the
    scalar loop's :meth:`CompiledScenario._release_tables` stream —
    drawn per ``(seed, task)``, fault-masked, padded to the widest row
    with sentinels — and ``rels_rows[i]`` holds sim ``i``'s per-task
    kept-release tables for the derive phase; on the arithmetic path
    ``rels_rows`` is ``None``.
    """
    sims = offs.shape[0]
    sentinel = duration + 1
    if compiled._needs_tables:
        rows = [
            compiled._release_tables(
                tuple(int(x) for x in offs[i]), seeds[i], duration
            )
            for i in range(sims)
        ]
        width = max((len(r[0]) for r in rows), default=0) + 1
        rel_times = _np.full((sims, width), sentinel, dtype=_np.int64)
        rel_tids = _np.full((sims, width), -1, dtype=_np.int32)
        for i, (times, tids, _rels) in enumerate(rows):
            if times:
                rel_times[i, : len(times)] = times
                rel_tids[i, : len(times)] = tids
        return rel_times, rel_tids, [r[2] for r in rows]
    tables = compiled._stream_tables(duration)
    if tables[0] == "empty":
        return (
            _np.full((sims, 1), sentinel, dtype=_np.int64),
            _np.full((sims, 1), -1, dtype=_np.int32),
            None,
        )
    n = compiled.n
    inst = compiled.inst
    if tables[0] == "packed":
        _, base_key, tid_all, idx2 = tables
        # Per-sim (-offset, tid) ranks of the compute tasks: the tie
        # break of rescheduled releases, vectorized via rank-of-sort.
        compute = _np.fromiter(
            (tid for tid in range(n) if not inst[tid]), dtype=_np.int64
        )
        sub = offs[:, compute]
        order_c = _np.lexsort(
            (_np.broadcast_to(compute, sub.shape), -sub), axis=-1
        )
        ranks = _np.empty_like(order_c)
        _np.put_along_axis(
            ranks,
            order_c,
            _np.broadcast_to(
                _np.arange(compute.shape[0], dtype=_np.int64), sub.shape
            ),
            axis=1,
        )
        low = _np.zeros((sims, n), dtype=_np.int64)
        low[:, compute] = ranks
        shifted = offs << 13
        vec2 = _np.concatenate((shifted, shifted + low), axis=1)
        key_all = base_key[None, :] + vec2[:, idx2]
        order = _np.argsort(key_all, axis=1)
        times = _np.take_along_axis(key_all, order, axis=1) >> 13
        tids = tid_all[order]
    else:
        _, t0_all, flag_all, negper_all, tid_all = tables
        scattered = offs[:, tid_all]
        t_all = t0_all[None, :] + scattered
        shape = t_all.shape
        order = _np.lexsort(
            (
                _np.broadcast_to(tid_all, shape),
                -scattered,
                _np.broadcast_to(negper_all, shape),
                _np.broadcast_to(flag_all, shape),
                t_all,
            ),
            axis=-1,
        )
        times = _np.take_along_axis(t_all, order, axis=1)
        tids = _np.take_along_axis(
            _np.broadcast_to(tid_all, shape), order, axis=1
        )
    rel_times = _np.concatenate(
        (times, _np.full((sims, 1), sentinel, dtype=_np.int64)), axis=1
    )
    rel_tids = _np.concatenate(
        (tids, _np.full((sims, 1), -1, dtype=tids.dtype)), axis=1
    )
    return (
        _np.ascontiguousarray(rel_times, dtype=_np.int64),
        _np.ascontiguousarray(rel_tids, dtype=_np.int32),
        None,
    )


def _advance(compiled, seeds, offs, duration: Time, policy):
    """All replications' recorded schedules, via one C kernel call.

    Returns ``(starts, fins, casc, rec, job_base, job_cap, pad,
    rels)``: ``(sims, slots)`` start/finish/cascade columns over the
    kept compute tasks' job slots (``job_base``/``job_cap`` map task
    to slot range), ``(sims, n)`` dispatch counts, the ``pad`` time
    filling never-dispatched slots, and — in table mode — per kept
    task the ``(sims, cap)`` kept-release columns (``None`` on the
    arithmetic path).  Memoized on the scenario's
    ``_adv_cache`` — keyed like the scalar schedule memo, so
    capacity-derived siblings (which alias the cache) and repeated
    probes replay the recorded columns without re-advancing, and
    deterministic policies normalize the seeds away (seed sweeps under
    WCET/BCET advance once).

    LET deadline violations surface exactly as in the scalar engine:
    the error of the lowest violating replication index (the first
    the sequential reference would hit) with the engine's message.
    """
    mode = BATCH_POLICY_MODES[policy]
    # Non-periodic release models draw their tables from the seed, so
    # deterministic policies stop being seed-independent there.
    seeds_key = (
        tuple(seeds) if mode in (0, 3) or compiled._nonperiodic else ()
    )
    key = ("columnar", seeds_key, offs.tobytes(), duration, mode)
    cache = compiled._adv_cache
    found = cache.get(key)
    if found is not None:
        return found
    kernel, why = ckernel.load_kernel()
    if kernel is None:  # pragma: no cover - callers check eligibility
        raise ModelError(f"columnar advance kernel unavailable: {why}")
    sims, n = offs.shape

    t0 = _time.perf_counter()
    n_draws = _draw_budget(compiled, duration, mode)
    if n_draws:
        variates = draw_batch(seeds, n_draws)
    else:
        variates = _np.zeros((sims, 1), dtype=_np.float64)
    _batch.PHASE_TIMES["draw_s"] += _time.perf_counter() - t0

    t0 = _time.perf_counter()
    rel_times, rel_tids, rels_rows = _release_streams(
        compiled, seeds, offs, duration
    )

    job_base = _np.full(n, -1, dtype=_np.int64)
    job_cap = _np.zeros(n, dtype=_np.int64)
    slots = 0
    for tid in range(n):
        if compiled.keep[tid] and not compiled.inst[tid]:
            job_base[tid] = slots
            job_cap[tid] = _job_cap(compiled, tid, duration)
            slots += int(job_cap[tid])

    # Beyond any real record (start <= duration, finish <= duration +
    # wcet) *and* any arithmetic read instant (release <= duration +
    # period), so padded slots sort last and the row-biased bisect of
    # the derive stays within each sim's row.
    pad = (
        duration
        + max(
            max(compiled.wcets, default=0),
            max(compiled.periods, default=0),
        )
        + 1
    )

    # Table mode: per-(sim, task) kept-release columns for the derive
    # phase (padded with ``pad``, so the row-biased bisects stay in
    # range), plus — under LET — flat per-sim deadline rows the kernel
    # indexes by ``(task, dispatch - 1)`` in place of the arithmetic
    # ``offset + rec * period``.
    rels_arrs = None
    dl_tab = _np.zeros(1, dtype=_np.int64)
    dl_base = _np.full(n, -1, dtype=_np.int64)
    dl_slots = 0
    if rels_rows is not None:
        rels_arrs = {}
        for g in range(n):
            if not compiled.keep[g]:
                continue
            arr = _np.full(
                (sims, max(_job_cap(compiled, g, duration), 1)),
                pad,
                dtype=_np.int64,
            )
            for i in range(sims):
                row = rels_rows[i][g]
                if row:
                    arr[i, : len(row)] = row
            rels_arrs[g] = arr
        if compiled._let:
            for tid in range(n):
                if not compiled.inst[tid]:
                    dl_base[tid] = dl_slots
                    dl_slots += _job_cap(compiled, tid, duration)
            dl_tab = _np.full(
                (sims, max(dl_slots, 1)), pad, dtype=_np.int64
            )
            for i in range(sims):
                rels_i = rels_rows[i]
                for tid in range(n):
                    if compiled.inst[tid]:
                        continue
                    row = rels_i[tid]
                    if row:
                        base = int(dl_base[tid])
                        dl_tab[i, base : base + len(row)] = [
                            at + compiled.periods[tid] for at in row
                        ]

    starts = _np.full((sims, max(slots, 1)), pad, dtype=_np.int64)
    fins = _np.full((sims, max(slots, 1)), pad, dtype=_np.int64)
    casc = _np.zeros((sims, max(slots, 1)), dtype=_np.int32)
    rec = _np.zeros((sims, n), dtype=_np.int64)
    viol = _np.full((sims, 4), -1, dtype=_np.int64)

    max_ranks = max(
        (len(members) for members in compiled.rank_tid), default=0
    ) or 1
    rank_tid = _np.full(
        (max(compiled.n_units, 1), max_ranks), -1, dtype=_np.int32
    )
    for u, members in enumerate(compiled.rank_tid):
        if members:
            rank_tid[u, : len(members)] = members

    bcet = _np.asarray(compiled.bcets, dtype=_np.int64)
    wcet = _np.asarray(compiled.wcets, dtype=_np.int64)
    span = _np.asarray(compiled.spans, dtype=_np.int64)
    periods = _np.asarray(compiled.periods, dtype=_np.int64)
    unit_of = _np.asarray(compiled.unit_of, dtype=_np.int32)
    bit_of = _np.asarray(compiled.bit_of, dtype=_np.uint64)
    offs_c = _np.ascontiguousarray(offs)

    rc = kernel.advance(
        sims,
        n,
        compiled.n_units,
        rel_times.shape[1],
        _p64(rel_times),
        _p32(rel_tids),
        duration,
        _p64(bcet),
        _p64(wcet),
        _p64(span),
        _p64(periods),
        _p32(unit_of),
        _pu64(bit_of),
        _p32(rank_tid),
        max_ranks,
        mode,
        int(compiled._let),
        int(compiled._track),
        _pf64(variates),
        n_draws,
        _p64(offs_c),
        _p64(dl_tab),
        _p64(dl_base),
        dl_slots,
        _p64(job_base),
        _p64(job_cap),
        slots,
        _p64(starts),
        _p64(fins),
        _p32(casc),
        _p64(rec),
        _p64(viol),
    )
    _batch.PHASE_TIMES["advance_s"] += _time.perf_counter() - t0
    if rc != 0:
        raise ModelError(
            f"columnar advance kernel failed in replication {-rc - 1} "
            f"(internal invariant broke; please report)"
        )
    if compiled._let:
        bad = _np.nonzero(viol[:, 0] >= 0)[0]
        if bad.size:
            tid, job, at, deadline = (int(x) for x in viol[int(bad[0])])
            raise ModelError(
                f"LET violation: job {compiled.names[tid]}#{job} "
                f"finished at {at} past its deadline {deadline}"
            )
    found = (starts, fins, casc, rec, job_base, job_cap, pad, rels_arrs)
    cache.put(key, found)
    return found


# ----------------------------------------------------------------------
# phase 2: bulk provenance / disparity derivation
# ----------------------------------------------------------------------


def _topo_kept(compiled) -> List[int]:
    """Kept tasks in topological order (producers before consumers)."""
    keep = compiled.keep
    kept = [g for g in range(compiled.n) if keep[g]]
    indeg = {g: len(compiled.in_edges[g]) for g in kept}
    succs: Dict[int, List[int]] = {g: [] for g in kept}
    for g in kept:
        for pg, _cap in compiled.in_edges[g]:
            succs[pg].append(g)
    queue = deque(g for g in kept if not indeg[g])
    out: List[int] = []
    while queue:
        g = queue.popleft()
        out.append(g)
        for h in succs[g]:
            indeg[h] -= 1
            if not indeg[h]:
                queue.append(h)
    return out


def _row_bisect_right(rows, queries, pad):
    """Per-row ``bisect_right``: one global searchsorted, row-biased.

    ``rows`` is ``(sims, K)`` nondecreasing per row, ``queries``
    ``(sims, Q)``; both hold values in ``[0, pad]``.  Adding
    ``row * (pad + 1)`` makes every row's range disjoint, so a single
    sorted search over the flattened matrix answers all rows at once.
    """
    sims, width = rows.shape
    bias = _np.arange(sims, dtype=_np.int64)[:, None] * (pad + 1)
    pos = _np.searchsorted(
        (rows + bias).ravel(), (queries + bias).ravel(), side="right"
    )
    return pos.reshape(sims, queries.shape[1]) - _np.arange(
        sims, dtype=_np.int64
    )[:, None] * width


def _row_bisect_left(rows, queries, pad):
    """Per-row ``bisect_left``, same row-biased trick as the right form."""
    sims, width = rows.shape
    bias = _np.arange(sims, dtype=_np.int64)[:, None] * (pad + 1)
    pos = _np.searchsorted(
        (rows + bias).ravel(), (queries + bias).ravel(), side="left"
    )
    return pos.reshape(sims, queries.shape[1]) - _np.arange(
        sims, dtype=_np.int64
    )[:, None] * width


def _derive(compiled, adv, offs, duration: Time, warmup: Time) -> List[Time]:
    """Bulk ``_prov_resolver`` + monitored disparity over the columns.

    Walks the kept tasks in topological order, building one
    :class:`StampColumns` block of shape ``(sims, duration // T + 1,
    n_sources)`` per task: sources get their arithmetic release
    stamps, every other task folds its input edges — the visible-write
    count ``mm`` per (sim, job) comes from the same arithmetic (LET /
    instantaneous producers) or finish-column bisect plus cascade
    fix-up (implicit compute producers) as the scalar resolver, and
    the FIFO head ``max(0, mm - capacity)`` gathers the producer's
    stamps.  Blocks free as soon as their last consumer folds them.

    Padded job slots flow through as garbage but are clipped in
    bounds and masked out of the final fold: the monitored task's
    per-sim maximum ranges over ``k in [k0(warmup), count)`` exactly
    as the scalar loop does.
    """
    t0 = _time.perf_counter()
    starts, fins, casc, rec, job_base, job_cap, pad, rels = adv
    sims = offs.shape[0]
    periods = compiled.periods
    inst = compiled.inst
    is_source = compiled.is_source
    in_edges = compiled.in_edges
    let_mode = compiled._let
    track = compiled._track
    gid = compiled.m_gid

    order = _topo_kept(compiled)
    src_cols = {g: i for i, g in enumerate(g for g in order if is_source[g])}
    n_src = len(src_cols)
    heights = {g: _job_cap(compiled, g, duration) for g in order}

    ks_memo: Dict[int, object] = {}

    def ks_of(height: int):
        got = ks_memo.get(height)
        if got is None:
            got = _np.arange(height, dtype=_np.int64)[None, :]
            ks_memo[height] = got
        return got

    completed_memo: Dict[int, object] = {}

    def completed_of(pg: int):
        """Per-sim completed-job counts of a kept compute task."""
        got = completed_memo.get(pg)
        if got is None:
            base = int(job_base[pg])
            cap = int(job_cap[pg])
            r = rec[:, pg]
            idx = _np.clip(base + r - 1, base, base + cap - 1)
            last = _np.take_along_axis(fins, idx[:, None], axis=1)[:, 0]
            got = r - ((r > 0) & (last > duration))
            completed_memo[pg] = got
        return got

    refs = {g: 0 for g in order}
    for g in order:
        for pg, _cap in in_edges[g]:
            refs[pg] += 1

    blocks: Dict[int, StampColumns] = {}
    for g in order:
        height = heights[g]
        if is_source[g]:
            if rels is not None:
                stamps = rels[g]
            else:
                stamps = offs[:, g : g + 1] + ks_of(height) * periods[g]
            blocks[g] = StampColumns.source(
                sims, height, n_src, src_cols[g], stamps
            )
        else:
            block = StampColumns.empty(sims, height, n_src)
            if let_mode or inst[g]:
                if rels is not None:
                    at = rels[g]
                else:
                    at = offs[:, g : g + 1] + ks_of(height) * periods[g]
                rkey = 1
            else:
                base = int(job_base[g])
                at = starts[:, base : base + height]
                if track:
                    rkey = (
                        3 * casc[:, base : base + height].astype(_np.int64)
                        + 2
                    )
                else:
                    rkey = 2
            for pg, cap in in_edges[g]:
                hp = heights[pg]
                po = offs[:, pg : pg + 1]
                per_p = periods[pg]
                if let_mode:
                    if rels is not None:
                        if is_source[pg]:
                            mm = _row_bisect_right(rels[pg], at, pad)
                        else:
                            # Publications at kept release + period:
                            # count kept releases <= at - period,
                            # guarding the clip against counting a
                            # release at 0 when the query is negative.
                            raw = at - per_p
                            mm = _row_bisect_right(
                                rels[pg], _np.clip(raw, 0, pad), pad
                            )
                            mm = _np.where(raw < 0, 0, mm)
                            if not inst[pg]:
                                mm = _np.minimum(
                                    mm, completed_of(pg)[:, None]
                                )
                    elif is_source[pg]:
                        mm = _np.where(at < po, 0, (at - po) // per_p + 1)
                    else:
                        mm = _np.where(at < po, 0, (at - po) // per_p)
                        if not inst[pg]:
                            mm = _np.minimum(mm, completed_of(pg)[:, None])
                elif inst[pg]:
                    if rels is not None:
                        mm = _row_bisect_right(rels[pg], at, pad)
                    else:
                        mm = _np.where(at < po, 0, (at - po) // per_p + 1)
                else:
                    pb = int(job_base[pg])
                    f_pg = fins[:, pb : pb + hp]
                    mm = _row_bisect_right(f_pg, at, pad)
                    if track:
                        # Cascade fix-up: same-instant zero-time
                        # writes deeper in the sub-batch than this
                        # read are not yet visible; step back over
                        # them (vectorized scalar while-loop, one
                        # round per cascade level).  Padded consumer
                        # slots (at == pad > duration) are excluded —
                        # the scalar resolver never evaluates them.
                        s_pg = starts[:, pb : pb + hp]
                        c_pg = casc[:, pb : pb + hp]
                        live = at <= duration
                        while True:
                            idx = _np.clip(mm - 1, 0, hp - 1)
                            cond = (
                                live
                                & (mm > 0)
                                & (
                                    _np.take_along_axis(f_pg, idx, axis=1)
                                    == at
                                )
                                & (
                                    _np.take_along_axis(s_pg, idx, axis=1)
                                    == at
                                )
                                & (
                                    3
                                    * (
                                        _np.take_along_axis(
                                            c_pg, idx, axis=1
                                        )
                                        + 1
                                    )
                                    > rkey
                                )
                            )
                            if not cond.any():
                                break
                            mm = mm - cond
                valid = mm > 0
                kk = _np.clip(mm - cap, 0, hp - 1)
                block.merge_read(blocks[pg], kk, valid)
            blocks[g] = block
        for pg, _cap in in_edges[g]:
            refs[pg] -= 1
            if not refs[pg] and pg != gid:
                del blocks[pg]

    values, defined = blocks[gid].disparity()
    height = heights[gid]
    off_m = offs[:, gid]
    per_m = periods[gid]
    if inst[gid]:
        if rels is not None:
            count = (rels[gid] <= duration).sum(axis=1)
        else:
            count = _np.where(
                off_m > duration, 0, (duration - off_m) // per_m + 1
            )
    else:
        count = completed_of(gid)
    if rels is not None:
        k0 = _row_bisect_left(
            rels[gid],
            _np.full((sims, 1), warmup, dtype=_np.int64),
            pad,
        )[:, 0]
    else:
        k0 = _np.where(off_m < warmup, -((off_m - warmup) // per_m), 0)
    ks = ks_of(height)
    mask = defined & (ks >= k0[:, None]) & (ks < count[:, None])
    best = _np.where(mask, values, -1).max(axis=1)
    out = _np.maximum(best, 0)
    _batch.PHASE_TIMES["derive_s"] += _time.perf_counter() - t0
    return [int(x) for x in out]


__all__ = [
    "MAX_RANKS",
    "ineligibility_reasons",
    "run_columnar",
]

"""Fault injection: release dropouts (extension).

Automotive sensor stacks must tolerate transient sensor loss — a
camera blinded by glare, a LiDAR packet burst dropped by the switch.
In the cause-effect model this is a *release dropout*: during a fault
window the task releases no jobs, so its consumers keep reading the
last token written before the fault (overwrite registers never empty),
and the data age and time disparity of everything downstream grow
linearly until the sensor recovers.

:class:`FaultPlan` describes per-task dropout windows; the simulator
consults it at every release.  The :class:`StalenessMonitor` measures
the consumer-visible effect: the maximum age of the data a job reads,
per (consumer, source).

Use cases: failure-injection testing of the provenance machinery
(stale timestamps propagate correctly), and quantifying how quickly a
disparity requirement is violated under sensor loss (see
``examples/fault_injection.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.task import ModelError
from repro.sim.engine import Job, Observer
from repro.sim.provenance import Token
from repro.units import Time


@dataclass(frozen=True)
class DropoutWindow:
    """A half-open interval ``[start, end)`` of suppressed releases."""

    start: Time
    end: Time

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ModelError(
                f"invalid dropout window [{self.start}, {self.end})"
            )

    def contains(self, time: Time) -> bool:
        """True when ``time`` lies inside the window."""
        return self.start <= time < self.end


class FaultPlan:
    """Per-task release-dropout schedule."""

    def __init__(self) -> None:
        self._windows: Dict[str, List[DropoutWindow]] = {}

    def drop(self, task: str, start: Time, end: Time) -> "FaultPlan":
        """Suppress all releases of ``task`` in ``[start, end)``.

        Windows are normalized to a sorted, **disjoint** form:
        overlapping, adjacent, and duplicate windows merge into one, so
        the stored shape — and everything derived from it
        (:meth:`windows_for` order, release masks, cache signatures) —
        depends only on the *set* of suppressed instants, never on
        insertion order.
        """
        window = DropoutWindow(start=start, end=end)
        merged: List[DropoutWindow] = []
        for current in sorted(
            self._windows.get(task, []) + [window],
            key=lambda w: (w.start, w.end),
        ):
            if merged and current.start <= merged[-1].end:
                last = merged[-1]
                if current.end > last.end:
                    merged[-1] = DropoutWindow(start=last.start, end=current.end)
            else:
                merged.append(current)
        self._windows[task] = merged
        return self

    def is_dropped(self, task: str, release: Time) -> bool:
        """Whether the release of ``task`` at ``release`` is suppressed.

        A release at exactly ``DropoutWindow.end`` is **not** suppressed
        (windows are half-open); every simulation tier applies the same
        rule, pinned by ``tests/test_faults.py``.
        """
        windows = self._windows.get(task)
        if not windows:
            return False
        return any(window.contains(release) for window in windows)

    def windows_for(self, task: str) -> Tuple[DropoutWindow, ...]:
        """The normalized (sorted, disjoint) windows of one task."""
        return tuple(self._windows.get(task, ()))

    def signature(self) -> Tuple:
        """Hashable identity of the suppressed-instant set.

        Two plans with the same signature drop exactly the same
        releases; the batch tiers key their schedule/advance memos on
        it (plans are mutable, so the object itself cannot be the key).
        """
        return tuple(
            sorted(
                (name, tuple((w.start, w.end) for w in windows))
                for name, windows in self._windows.items()
                if windows
            )
        )

    @property
    def tasks(self) -> Tuple[str, ...]:
        """Names of the tasks with at least one dropout window."""
        return tuple(self._windows)

    def validate(self, task_names: Sequence[str]) -> None:
        """Reject plans naming tasks absent from the system."""
        unknown = set(self._windows) - set(task_names)
        if unknown:
            raise ModelError(f"fault plan names unknown tasks: {sorted(unknown)}")

    def __bool__(self) -> bool:
        return bool(self._windows)


class StalenessMonitor(Observer):
    """Max age of the data each job *reads*, per (consumer, source).

    Age of a read = job start (implicit) or release (LET) minus the
    source timestamp; under a dropout the age keeps growing because the
    register still holds the pre-fault token.  The monitor records the
    maximum over the run, plus the time at which it occurred.
    """

    def __init__(
        self, consumers: Optional[Sequence[str]] = None, *, warmup: Time = 0
    ) -> None:
        self._consumers: Optional[Set[str]] = (
            set(consumers) if consumers is not None else None
        )
        self._warmup = warmup
        self.max_age: Dict[Tuple[str, str], Time] = {}
        self.max_age_at: Dict[Tuple[str, str], Time] = {}

    def on_job_complete(self, job: Job, token: Token) -> None:
        name = job.task.name
        if self._consumers is not None and name not in self._consumers:
            return
        if job.release < self._warmup:
            return
        reference = job.start if job.start is not None else job.release
        for read in job.reads:
            for source, (min_ts, _max_ts) in read.provenance.items():
                age = reference - min_ts
                key = (name, source)
                if age > self.max_age.get(key, -1):
                    self.max_age[key] = age
                    self.max_age_at[key] = reference

    def age_for(self, consumer: str, source: str) -> Optional[Time]:
        """Max observed read age for ``(consumer, source)`` (None if unseen)."""
        return self.max_age.get((consumer, source))

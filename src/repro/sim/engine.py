"""Discrete-event simulator for cause-effect systems.

Simulates the run-time behaviour of Section II-B exactly:

* every task releases jobs periodically from its offset;
* each ECU (and the bus) schedules its jobs **non-preemptively by fixed
  priority**: when the unit idles, the highest-priority ready job
  starts and runs to completion;
* **implicit communication**: a job reads all of its input channels
  when it *starts* and writes its output token to all of its output
  channels when it *finishes*;
* channels are overwrite registers (capacity 1) or FIFOs (Section IV),
  see :mod:`repro.sim.channels`;
* source tasks are external stimuli: their jobs complete instantly at
  release, off-CPU, producing a token stamped with the release time.

Event ordering at equal timestamps is chosen so that "finishes no later
than the start" (Definition 1) is honoured: at each time point all
releases are processed first, then all finishes (which perform writes),
then zero-execution-time completions in topological order, and only
then are idle units dispatched (whose starting jobs perform reads).  A
write at time ``t`` is therefore always visible to a read at time ``t``.

Per-job execution times are drawn from an
:mod:`execution-time policy <repro.sim.exec_time>`; the simulated
disparity is a *lower* bound on the true worst case (as the paper's
``Sim`` series is), while the analytical bounds are upper bounds.

**LET semantics (extension).**  With ``semantics="let"`` the simulator
follows the Logical Execution Time paradigm instead: a job reads all
inputs at its *release* and its output token is published at its
*deadline* (release + period), independent of when the job actually
executes.  Scheduling still happens (the job must finish before its
deadline — violating that raises), but the data flow becomes fully
time-deterministic.  Source tasks still publish at release (a sensor
stamps and emits immediately).  Per-instant ordering: publishes first,
then releases, then source emissions, then the LET reads of the jobs
released at this instant.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task
from repro.sim.channels import ChannelState
from repro.sim.exec_time import ExecTimePolicy, uniform_policy
from repro.sim.provenance import Token, merge_provenance, source_token
from repro.units import Time

_PHASE_PUBLISH = 0
_PHASE_RELEASE = 1
_PHASE_FINISH = 2

_SEMANTICS = ("implicit", "let")


class Job:
    """One activation of a task at run time."""

    __slots__ = ("task", "index", "release", "start", "finish", "exec_time", "reads")

    def __init__(self, task: Task, index: int, release: Time) -> None:
        self.task = task
        self.index = index
        self.release = release
        self.start: Optional[Time] = None
        self.finish: Optional[Time] = None
        self.exec_time: Optional[Time] = None
        self.reads: Tuple[Token, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.task.name}#{self.index} r={self.release})"


class Observer:
    """Base class for simulation observers (metrics collectors).

    Subclasses override the hooks they need; the engine calls
    ``on_job_complete`` for *every* completed job (including
    instantaneous source jobs) with the output token the job wrote.
    """

    def on_job_complete(self, job: Job, token: Token) -> None:  # pragma: no cover
        pass

    def on_end(self, now: Time) -> None:  # pragma: no cover
        pass

    @property
    def interested_tasks(self) -> Optional[frozenset]:
        """Tasks whose completions this observer needs, ``None`` for all.

        The engine's fast path skips ``on_job_complete`` for tasks no
        observer is interested in; monitors that filter internally
        expose their filter here so the engine can pre-dispatch.
        """
        return None


class _UnitState:
    """Run-time state of one processing unit."""

    __slots__ = ("name", "ready", "running", "busy_time", "dispatches")

    def __init__(self, name: str) -> None:
        self.name = name
        # Heap of (priority, seq, job); priorities are unique per unit.
        self.ready: List[Tuple[int, int, Job]] = []
        self.running: Optional[Job] = None
        self.busy_time: Time = 0
        self.dispatches = 0


@dataclass
class SimulationStats:
    """Aggregate counters of one simulation run."""

    duration: Time = 0
    jobs_released: int = 0
    jobs_completed: int = 0
    jobs_dropped: int = 0
    events_processed: int = 0
    busy_time: Dict[str, Time] = field(default_factory=dict)

    def utilization(self, unit: str) -> float:
        """Fraction of the horizon ``unit`` spent executing."""
        if self.duration == 0:
            return 0.0
        return self.busy_time.get(unit, 0) / self.duration


@dataclass
class SimulationResult:
    """Everything a run produced: stats plus the observers (queried by caller)."""

    stats: SimulationStats
    observers: Tuple[Observer, ...]


class Simulator:
    """Event-driven simulator for one cause-effect system.

    Args:
        system: The validated system (or use :meth:`from_graph`).
        duration: Simulated horizon in nanoseconds; events beyond it are
            not processed (running jobs may be left unfinished).
        seed: Seed for the per-run random generator (offsets are *not*
            randomized here — set task offsets before building the
            system, or use :func:`randomize_offsets`).
        policy: Execution-time policy; default uniform in [BCET, WCET].
        observers: Metric collectors notified on each job completion.
        semantics: ``"implicit"`` (AUTOSAR read-at-start /
            write-at-finish, the paper's model) or ``"let"`` (Logical
            Execution Time: read at release, publish at deadline).
        faults: Optional release-dropout schedule
            (:class:`repro.sim.faults.FaultPlan`); suppressed releases
            produce no job, so consumers keep reading stale data.
    """

    def __init__(
        self,
        system: System,
        duration: Time,
        *,
        seed: int = 0,
        policy: ExecTimePolicy = uniform_policy,
        observers: Sequence[Observer] = (),
        semantics: str = "implicit",
        faults=None,
    ) -> None:
        if duration <= 0:
            raise ModelError(f"duration must be positive, got {duration}")
        if semantics not in _SEMANTICS:
            raise ModelError(
                f"unknown semantics {semantics!r}; choose from {_SEMANTICS}"
            )
        self._semantics = semantics
        self._faults = faults
        if faults is not None:
            faults.validate(system.graph.task_names)
        self._system = system
        self._graph = system.graph
        self._duration = duration
        self._rng = random.Random(seed)
        self._policy = policy
        self._observers: Tuple[Observer, ...] = tuple(observers)

        self._channels: Dict[Tuple[str, str], ChannelState] = {
            (c.src, c.dst): ChannelState(c.src, c.dst, c.capacity)
            for c in self._graph.channels
        }
        self._in_channels: Dict[str, List[ChannelState]] = {
            name: [self._channels[(p, name)] for p in self._graph.predecessors(name)]
            for name in self._graph.task_names
        }
        self._out_channels: Dict[str, List[ChannelState]] = {
            name: [self._channels[(name, s)] for s in self._graph.successors(name)]
            for name in self._graph.task_names
        }
        self._topo_index = {
            name: i for i, name in enumerate(self._graph.topological_order())
        }
        units = {
            task.ecu for task in self._graph.tasks if task.ecu is not None
        }
        self._units: Dict[str, _UnitState] = {u: _UnitState(u) for u in sorted(units)}
        self._events: List[Tuple[Time, int, int, object]] = []
        self._seq = 0
        self._job_counters: Dict[str, int] = {}
        self._stats = SimulationStats(duration=duration)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: CauseEffectGraph,
        duration: Time,
        **kwargs,
    ) -> "Simulator":
        """Build a simulator from a raw graph (validates and analyzes it)."""
        return cls(System.build(graph), duration, **kwargs)

    def channel_state(self, src: str, dst: str) -> ChannelState:
        """Inspect a channel's run-time state (tests/debugging)."""
        return self._channels[(src, dst)]

    def run(self) -> SimulationResult:
        """Run to the horizon and return stats plus the observers."""
        for task in self._graph.tasks:
            self._push(task.offset, _PHASE_RELEASE, task)
        if self._semantics == "implicit" and self._faults is None:
            # The Fig. 6 harness spends >99% of its wall time here, so
            # the common case (implicit communication, no fault plan)
            # runs on a specialized loop with the per-event helpers
            # inlined; the general loop below keeps the readable,
            # hook-by-hook form for LET and fault-injection runs.
            self._run_events_implicit()
        else:
            self._run_events_general()
        for unit in self._units.values():
            self._stats.busy_time[unit.name] = unit.busy_time
        for observer in self._observers:
            observer.on_end(min(self._duration, self._now_or_duration()))
        return SimulationResult(stats=self._stats, observers=self._observers)

    def _run_events_general(self) -> None:
        """Event loop handling every semantics/fault combination."""
        let_mode = self._semantics == "let"
        while self._events:
            now = self._events[0][0]
            if now > self._duration:
                break
            publishes: List[Tuple[str, Token]] = []
            releases: List[Task] = []
            finishes: List[Tuple[str, Job]] = []
            instantaneous: List[Job] = []
            released_jobs: List[Job] = []
            while self._events and self._events[0][0] == now:
                _, phase, _, payload = heapq.heappop(self._events)
                self._stats.events_processed += 1
                if phase == _PHASE_PUBLISH:
                    publishes.append(payload)  # type: ignore[arg-type]
                elif phase == _PHASE_RELEASE:
                    releases.append(payload)  # type: ignore[arg-type]
                else:
                    finishes.append(payload)  # type: ignore[arg-type]

            # 1. LET publications become visible first: a job released
            #    at t reads tokens published no later than t.
            for name, token in publishes:
                self._write_outputs(name, token)

            touched: List[str] = []
            for task in releases:
                job = self._release(task, now)
                if job is None:
                    continue  # release suppressed by the fault plan
                if task.is_instantaneous:
                    instantaneous.append(job)
                else:
                    assert task.ecu is not None
                    unit = self._units[task.ecu]
                    heapq.heappush(
                        unit.ready, (task.priority or 0, self._next_seq(), job)
                    )
                    released_jobs.append(job)
                    touched.append(task.ecu)

            # 2. Under implicit semantics, finished jobs write before
            #    anything dispatched at this instant reads.  Under LET,
            #    a finish only schedules the publication at the
            #    deadline.
            for unit_name, job in finishes:
                self._complete(job, now)
                self._units[unit_name].running = None
                touched.append(unit_name)

            # 3. Source emissions (and zero-WCET relays) in topological
            #    order, so a sensor sample stamped at t is readable at t.
            instantaneous.sort(key=lambda j: self._topo_index[j.task.name])
            for job in instantaneous:
                self._run_instantaneous(job, now)

            # 4. LET reads happen at release, after all same-instant
            #    publications and source emissions.
            if let_mode:
                for job in released_jobs:
                    job.reads = self._read_inputs(job.task.name)

            for unit_name in touched:
                self._dispatch(self._units[unit_name], now)

    def _run_events_implicit(self) -> None:
        """Specialized event loop: implicit semantics, no fault plan.

        Semantically identical to :meth:`_run_events_general` (same
        per-instant phase ordering: releases queue, finishes write,
        instantaneous jobs emit in topological order, then idle units
        dispatch), with hot lookups bound to locals and the per-event
        helpers collapsed into closures.  Deliberate fast paths:

        * instants carrying a single event (the overwhelmingly common
          case) skip the batching scaffolding entirely — with one event
          the phase ordering is trivially preserved;
        * a job with a single input reuses its parent token's
          provenance dict instead of merging a copy — provenance
          mappings are immutable by convention (see
          :mod:`repro.sim.provenance`), so sharing is safe;
        * the default :func:`uniform_policy` draw is inlined from
          precomputed ``[BCET, WCET]`` spans, skipping the per-job
          range re-validation (the range holds by construction);
        * observers are pre-dispatched per task via
          :attr:`Observer.interested_tasks`, so completions nobody
          monitors skip the notification loop entirely.
        """
        events = self._events
        heappush = heapq.heappush
        heappop = heapq.heappop
        duration = self._duration
        units = self._units
        in_channels = self._in_channels
        out_channels = self._out_channels
        job_counters = self._job_counters
        policy = self._policy
        rng = self._rng
        rng_random = rng.random
        fast_uniform = policy is uniform_policy
        sources = set(self._graph.sources())
        instantaneous_flag = {
            task.name: task.is_instantaneous for task in self._graph.tasks
        }
        exec_span = {
            task.name: (task.bcet, task.wcet - task.bcet + 1)
            for task in self._graph.tasks
        }
        notify_for: Dict[str, Tuple[Observer, ...]] = {
            task.name: tuple(
                observer
                for observer in self._observers
                if observer.interested_tasks is None
                or task.name in observer.interested_tasks
            )
            for task in self._graph.tasks
        }
        topo_key = self._topo_index.__getitem__
        seq = self._seq
        events_processed = 0
        jobs_released = 0
        jobs_completed = 0

        def dispatch(unit, now):
            """Start the highest-priority ready job on an idle unit."""
            nonlocal seq
            _, _, job = heappop(unit.ready)
            job.start = now
            task = job.task
            name = task.name
            reads = []
            for channel in in_channels[name]:
                buffer = channel._buffer
                if buffer:
                    reads.append(buffer[0])
            job.reads = tuple(reads)
            if fast_uniform:
                bcet, span = exec_span[name]
                exec_time = bcet + int(rng_random() * span) if span > 1 else bcet
            else:
                exec_time = policy(task, job.index, rng)
                if not task.bcet <= exec_time <= task.wcet:
                    raise ModelError(
                        f"policy returned execution time {exec_time} outside "
                        f"[{task.bcet}, {task.wcet}] for {name!r}"
                    )
            job.exec_time = exec_time
            unit.running = job
            unit.busy_time += exec_time
            unit.dispatches += 1
            seq += 1
            heappush(
                events, (now + exec_time, _PHASE_FINISH, seq, (unit.name, job))
            )

        def complete(job, now):
            """Finish a CPU job: write its token, notify observers."""
            nonlocal jobs_completed
            job.finish = now
            reads = job.reads
            if len(reads) == 1:
                provenance = reads[0].provenance
            elif not reads:
                provenance = {}
            else:
                provenance = merge_provenance(t.provenance for t in reads)
            name = job.task.name
            token = Token(now, name, job.release, provenance)
            for channel in out_channels[name]:
                buffer = channel._buffer
                if len(buffer) == channel.capacity:
                    buffer.popleft()
                    channel.evictions += 1
                buffer.append(token)
                channel.writes += 1
            jobs_completed += 1
            for observer in notify_for[name]:
                observer.on_job_complete(job, token)

        def run_instantaneous(job, now):
            """Source / zero-WCET job: read, produce, finish at ``now``."""
            nonlocal jobs_completed
            job.start = now
            job.finish = now
            job.exec_time = 0
            name = job.task.name
            if name in sources:
                release = job.release
                token = Token(release, name, release, {name: (release, release)})
            else:
                reads = []
                for channel in in_channels[name]:
                    buffer = channel._buffer
                    if buffer:
                        reads.append(buffer[0])
                job.reads = tuple(reads)
                if len(reads) == 1:
                    provenance = reads[0].provenance
                elif not reads:
                    provenance = {}
                else:
                    provenance = merge_provenance(t.provenance for t in reads)
                token = Token(now, name, job.release, provenance)
            for channel in out_channels[name]:
                buffer = channel._buffer
                if len(buffer) == channel.capacity:
                    buffer.popleft()
                    channel.evictions += 1
                buffer.append(token)
                channel.writes += 1
            jobs_completed += 1
            for observer in notify_for[name]:
                observer.on_job_complete(job, token)

        def release_job(task, now):
            """Schedule the next release and materialize this one's job."""
            nonlocal seq, jobs_released
            next_release = now + task.period
            if next_release <= duration:
                seq += 1
                heappush(events, (next_release, _PHASE_RELEASE, seq, task))
            name = task.name
            index = job_counters.get(name, 0)
            job_counters[name] = index + 1
            jobs_released += 1
            return Job(task, index, now)

        while events:
            head = events[0]
            now = head[0]
            if now > duration:
                break
            heappop(events)
            events_processed += 1

            if not events or events[0][0] != now:
                # Single-event instant: with one event the phase
                # ordering is trivially preserved, so skip the batching.
                if head[1] == _PHASE_RELEASE:
                    task = head[3]
                    job = release_job(task, now)
                    if instantaneous_flag[task.name]:
                        run_instantaneous(job, now)
                    else:
                        unit = units[task.ecu]
                        seq += 1
                        heappush(unit.ready, (task.priority or 0, seq, job))
                        if unit.running is None:
                            dispatch(unit, now)
                else:
                    unit_name, job = head[3]
                    complete(job, now)
                    unit = units[unit_name]
                    unit.running = None
                    if unit.ready:
                        dispatch(unit, now)
                continue

            # Multi-event instant: gather and process by phase, exactly
            # as the general loop does.
            releases: List[Task] = []
            finishes: List[Tuple[str, Job]] = []
            if head[1] == _PHASE_RELEASE:
                releases.append(head[3])
            else:
                finishes.append(head[3])
            while events and events[0][0] == now:
                _, phase, _, payload = heappop(events)
                events_processed += 1
                if phase == _PHASE_RELEASE:
                    releases.append(payload)
                else:
                    finishes.append(payload)

            touched: List[str] = []
            instantaneous: List[Job] = []
            for task in releases:
                job = release_job(task, now)
                if instantaneous_flag[task.name]:
                    instantaneous.append(job)
                else:
                    unit = units[task.ecu]
                    seq += 1
                    heappush(unit.ready, (task.priority or 0, seq, job))
                    touched.append(task.ecu)

            for unit_name, job in finishes:
                complete(job, now)
                units[unit_name].running = None
                touched.append(unit_name)

            if instantaneous:
                if len(instantaneous) > 1:
                    instantaneous.sort(key=lambda j: topo_key(j.task.name))
                for job in instantaneous:
                    run_instantaneous(job, now)

            for unit_name in touched:
                unit = units[unit_name]
                if unit.running is None and unit.ready:
                    dispatch(unit, now)

        self._seq = seq
        self._stats.events_processed += events_processed
        self._stats.jobs_released += jobs_released
        self._stats.jobs_completed += jobs_completed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _now_or_duration(self) -> Time:
        return self._duration

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, time: Time, phase: int, payload: object) -> None:
        heapq.heappush(self._events, (time, phase, self._next_seq(), payload))

    def _release(self, task: Task, now: Time) -> Optional[Job]:
        next_release = now + task.period
        if next_release <= self._duration:
            self._push(next_release, _PHASE_RELEASE, task)
        if self._faults is not None and self._faults.is_dropped(task.name, now):
            self._stats.jobs_dropped += 1
            return None
        index = self._job_counters.get(task.name, 0)
        self._job_counters[task.name] = index + 1
        self._stats.jobs_released += 1
        return Job(task, index, now)

    def _read_inputs(self, name: str) -> Tuple[Token, ...]:
        tokens = []
        for channel in self._in_channels[name]:
            token = channel.read()
            if token is not None:
                tokens.append(token)
        return tuple(tokens)

    def _run_instantaneous(self, job: Job, now: Time) -> None:
        """Source / zero-WCET jobs: read, produce, finish — all at ``now``.

        Sources publish immediately under both semantics (a sensor
        stamps and emits at sampling time).  Zero-WCET relays follow
        the active semantics: immediate write under implicit
        communication, deadline publication under LET.
        """
        job.start = now
        job.finish = now
        job.exec_time = 0
        name = job.task.name
        if self._graph.is_source(name):
            token = source_token(name, job.release)
            self._write_outputs(name, token)
        else:
            job.reads = self._read_inputs(name)
            token = Token(
                produced_at=now,
                producer=name,
                producer_release=job.release,
                provenance=merge_provenance(t.provenance for t in job.reads),
            )
            if self._semantics == "let":
                self._push(
                    job.release + job.task.period, _PHASE_PUBLISH, (name, token)
                )
            else:
                self._write_outputs(name, token)
        self._notify(job, token)

    def _dispatch(self, unit: _UnitState, now: Time) -> None:
        if unit.running is not None or not unit.ready:
            return
        _, _, job = heapq.heappop(unit.ready)
        job.start = now
        if self._semantics != "let":
            # Implicit communication reads at start; under LET the
            # inputs were already captured at release.
            job.reads = self._read_inputs(job.task.name)
        exec_time = self._policy(job.task, job.index, self._rng)
        if not job.task.bcet <= exec_time <= job.task.wcet:
            raise ModelError(
                f"policy returned execution time {exec_time} outside "
                f"[{job.task.bcet}, {job.task.wcet}] for {job.task.name!r}"
            )
        job.exec_time = exec_time
        unit.running = job
        unit.busy_time += exec_time
        unit.dispatches += 1
        self._push(now + exec_time, _PHASE_FINISH, (unit.name, job))

    def _complete(self, job: Job, now: Time) -> None:
        job.finish = now
        token = Token(
            produced_at=now,
            producer=job.task.name,
            producer_release=job.release,
            provenance=merge_provenance(t.provenance for t in job.reads),
        )
        if self._semantics == "let":
            deadline = job.release + job.task.period
            if now > deadline:
                raise ModelError(
                    f"LET violation: job {job.task.name}#{job.index} "
                    f"finished at {now} past its deadline {deadline}"
                )
            self._push(deadline, _PHASE_PUBLISH, (job.task.name, token))
        else:
            self._write_outputs(job.task.name, token)
        self._notify(job, token)

    def _write_outputs(self, name: str, token: Token) -> None:
        for channel in self._out_channels[name]:
            channel.write(token)

    def _notify(self, job: Job, token: Token) -> None:
        self._stats.jobs_completed += 1
        for observer in self._observers:
            observer.on_job_complete(job, token)


def randomize_offsets(
    graph: CauseEffectGraph, rng: random.Random
) -> CauseEffectGraph:
    """Give every task a random release offset in ``[1, T(tau)]``.

    Matches the paper's evaluation setup ("the release offset of each
    task is randomly picked from the range of [1, T_i]").
    """
    shifted = graph.copy()
    for task in shifted.tasks:
        shifted.replace_task(task.with_offset(rng.randint(1, task.period)))
    return shifted


def simulate(
    system: System,
    duration: Time,
    *,
    seed: int = 0,
    policy: ExecTimePolicy = uniform_policy,
    observers: Sequence[Observer] = (),
    semantics: str = "implicit",
    faults=None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        system,
        duration,
        seed=seed,
        policy=policy,
        observers=observers,
        semantics=semantics,
        faults=faults,
    ).run()

"""Discrete-event simulator for cause-effect systems.

Simulates the run-time behaviour of Section II-B exactly:

* every task releases jobs periodically from its offset;
* each ECU (and the bus) schedules its jobs **non-preemptively by fixed
  priority**: when the unit idles, the highest-priority ready job
  starts and runs to completion;
* **implicit communication**: a job reads all of its input channels
  when it *starts* and writes its output token to all of its output
  channels when it *finishes*;
* channels are overwrite registers (capacity 1) or FIFOs (Section IV),
  see :mod:`repro.sim.channels`;
* source tasks are external stimuli: their jobs complete instantly at
  release, off-CPU, producing a token stamped with the release time.

Event ordering at equal timestamps is chosen so that "finishes no later
than the start" (Definition 1) is honoured: at each time point all
releases are processed first, then all finishes (which perform writes),
then zero-execution-time completions in topological order, and only
then are idle units dispatched (whose starting jobs perform reads).  A
write at time ``t`` is therefore always visible to a read at time ``t``.

Per-job execution times are drawn from an
:mod:`execution-time policy <repro.sim.exec_time>`; the simulated
disparity is a *lower* bound on the true worst case (as the paper's
``Sim`` series is), while the analytical bounds are upper bounds.

**LET semantics (extension).**  With ``semantics="let"`` the simulator
follows the Logical Execution Time paradigm instead: a job reads all
inputs at its *release* and its output token is published at its
*deadline* (release + period), independent of when the job actually
executes.  Scheduling still happens (the job must finish before its
deadline — violating that raises), but the data flow becomes fully
time-deterministic.  Source tasks still publish at release (a sensor
stamps and emits immediately).  Per-instant ordering: publishes first,
then releases, then source emissions, then the LET reads of the jobs
released at this instant.
"""

from __future__ import annotations

import heapq
import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.graph import CauseEffectGraph
from repro.model.system import System
from repro.model.task import ModelError, Task
from repro.sim.channels import ChannelState
from repro.sim.exec_time import ExecTimePolicy, uniform_policy
from repro.sim.provenance import (
    ProvenancePacker,
    Token,
    merge_provenance,
    source_token,
)
from repro.sim.release import kept_mask, needs_tables, release_table
from repro.units import Time

_PHASE_PUBLISH = 0
_PHASE_RELEASE = 1
_PHASE_FINISH = 2

_SEMANTICS = ("implicit", "let")
_LOOPS = ("auto", "fast", "classic", "general")


class Job:
    """One activation of a task at run time."""

    __slots__ = ("task", "index", "release", "start", "finish", "exec_time", "reads")

    def __init__(self, task: Task, index: int, release: Time) -> None:
        self.task = task
        self.index = index
        self.release = release
        self.start: Optional[Time] = None
        self.finish: Optional[Time] = None
        self.exec_time: Optional[Time] = None
        self.reads: Tuple[Token, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.task.name}#{self.index} r={self.release})"


class Observer:
    """Base class for simulation observers (metrics collectors).

    Subclasses override the hooks they need; the engine calls
    ``on_job_complete`` for *every* completed job (including
    instantaneous source jobs) with the output token the job wrote.
    """

    def on_job_complete(self, job: Job, token: Token) -> None:  # pragma: no cover
        pass

    def on_end(self, now: Time) -> None:  # pragma: no cover
        pass

    @property
    def interested_tasks(self) -> Optional[frozenset]:
        """Tasks whose completions this observer needs, ``None`` for all.

        The engine's fast path skips ``on_job_complete`` for tasks no
        observer is interested in; monitors that filter internally
        expose their filter here so the engine can pre-dispatch.
        """
        return None


class _UnitState:
    """Run-time state of one processing unit."""

    __slots__ = ("name", "ready", "running", "busy_time", "dispatches")

    def __init__(self, name: str) -> None:
        self.name = name
        # Heap of (priority, seq, job); priorities are unique per unit.
        self.ready: List[Tuple[int, int, Job]] = []
        self.running: Optional[Job] = None
        self.busy_time: Time = 0
        self.dispatches = 0


@dataclass
class SimulationStats:
    """Aggregate counters of one simulation run."""

    duration: Time = 0
    jobs_released: int = 0
    jobs_completed: int = 0
    jobs_dropped: int = 0
    events_processed: int = 0
    busy_time: Dict[str, Time] = field(default_factory=dict)

    def utilization(self, unit: str) -> float:
        """Fraction of the horizon ``unit`` spent executing."""
        if self.duration == 0:
            return 0.0
        return self.busy_time.get(unit, 0) / self.duration


@dataclass
class SimulationResult:
    """Everything a run produced: stats plus the observers (queried by caller)."""

    stats: SimulationStats
    observers: Tuple[Observer, ...]


class Simulator:
    """Event-driven simulator for one cause-effect system.

    Args:
        system: The validated system (or use :meth:`from_graph`).
        duration: Simulated horizon in nanoseconds; events beyond it are
            not processed (running jobs may be left unfinished).
        seed: Seed for the per-run random generator (offsets are *not*
            randomized here — set task offsets before building the
            system, or use :func:`randomize_offsets`).
        policy: Execution-time policy; default uniform in [BCET, WCET].
        observers: Metric collectors notified on each job completion.
        semantics: ``"implicit"`` (AUTOSAR read-at-start /
            write-at-finish, the paper's model) or ``"let"`` (Logical
            Execution Time: read at release, publish at deadline).
        faults: Optional release-dropout schedule
            (:class:`repro.sim.faults.FaultPlan`); suppressed releases
            produce no job, so consumers keep reading stale data.
        loop: Event-loop selection, primarily a testing aid.  ``"auto"``
            (default) picks the fastest exact loop for the run: the
            two-phase fast path for implicit *and* LET semantics
            (zero-BCET CPU tasks included — their same-instant finish
            cascades are replayed from a recorded depth table).  Fault
            plans and non-periodic release models compile to per-task
            release tables consumed by every loop, so they stay
            fast-path eligible; only unmapped CPU tasks fall back to
            the general loop.  ``"fast"``, ``"classic"`` and
            ``"general"`` force a specific loop; all loops produce
            identical results.  The loop/semantics/faults combination
            is validated here in the constructor, so a misconfigured
            run (``loop="classic"`` with LET, a fault plan, or a
            non-periodic release model) raises :class:`ModelError` at
            construction, not at :meth:`run`.
    """

    def __init__(
        self,
        system: System,
        duration: Time,
        *,
        seed: int = 0,
        policy: ExecTimePolicy = uniform_policy,
        observers: Sequence[Observer] = (),
        semantics: str = "implicit",
        faults=None,
        loop: str = "auto",
    ) -> None:
        if duration <= 0:
            raise ModelError(f"duration must be positive, got {duration}")
        if semantics not in _SEMANTICS:
            raise ModelError(
                f"unknown semantics {semantics!r}; choose from {_SEMANTICS}"
            )
        if loop not in _LOOPS:
            raise ModelError(f"unknown loop {loop!r}; choose from {_LOOPS}")
        self._loop = loop
        self._fastflow: Optional["_FastFlow"] = None
        self._fast_channels_done: Set[Tuple[str, str]] = set()
        self._semantics = semantics
        self._faults = faults
        if faults is not None:
            faults.validate(system.graph.task_names)
        self._system = system
        self._graph = system.graph
        self._duration = duration
        self._seed = seed
        self._rng = random.Random(seed)
        self._policy = policy
        self._observers: Tuple[Observer, ...] = tuple(observers)

        self._channels: Dict[Tuple[str, str], ChannelState] = {
            (c.src, c.dst): ChannelState(c.src, c.dst, c.capacity)
            for c in self._graph.channels
        }
        self._in_channels: Dict[str, List[ChannelState]] = {
            name: [self._channels[(p, name)] for p in self._graph.predecessors(name)]
            for name in self._graph.task_names
        }
        self._out_channels: Dict[str, List[ChannelState]] = {
            name: [self._channels[(name, s)] for s in self._graph.successors(name)]
            for name in self._graph.task_names
        }
        self._topo_index = {
            name: i for i, name in enumerate(self._graph.topological_order())
        }
        units = {
            task.ecu for task in self._graph.tasks if task.ecu is not None
        }
        self._units: Dict[str, _UnitState] = {u: _UnitState(u) for u in sorted(units)}
        self._events: List[Tuple[Time, int, int, object]] = []
        self._seq = 0
        self._job_counters: Dict[str, int] = {}
        self._stats = SimulationStats(duration=duration)
        # Release tables: when any task releases non-periodically or a
        # fault plan is active, every release instant (and its "kept"
        # flag) is pre-drawn here and all loops consume the table —
        # the one source of truth that keeps the tiers byte-identical.
        # Strictly periodic fault-free runs skip the tables entirely
        # and keep the original arithmetic release paths.
        self._use_tables = needs_tables(self._graph.tasks, faults)
        self._rel_full: Dict[str, List[Time]] = {}
        self._rel_keep: Dict[str, List[bool]] = {}
        self._rel_idx: Dict[str, int] = {}
        if self._use_tables:
            for task in self._graph.tasks:
                full = release_table(task, seed, duration)
                self._rel_full[task.name] = full
                self._rel_keep[task.name] = kept_mask(faults, task.name, full)
                self._rel_idx[task.name] = 0
        # Resolve (and validate) the loop now: a misconfigured
        # loop/semantics/faults combination should fail at
        # construction, not midway through a sweep.
        self._resolved_loop = self._select_loop()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: CauseEffectGraph,
        duration: Time,
        **kwargs,
    ) -> "Simulator":
        """Build a simulator from a raw graph (validates and analyzes it)."""
        return cls(System.build(graph), duration, **kwargs)

    def channel_state(self, src: str, dst: str) -> ChannelState:
        """Inspect a channel's run-time state (tests/debugging).

        After a fast-path run the channel contents are reconstructed
        lazily on first access (the fast path never materializes
        per-channel buffers during the run).
        """
        state = self._channels[(src, dst)]
        if self._fastflow is not None and (src, dst) not in self._fast_channels_done:
            self._fast_channels_done.add((src, dst))
            self._fastflow.fill_channel(state)
        return state

    def _select_loop(self) -> str:
        """Resolve the ``loop`` argument against this run's features.

        Called from ``__init__`` so misconfiguration raises at
        construction (the resolved loop is cached for :meth:`run`).
        """
        choice = self._loop
        if choice == "general":
            return "general"
        # The two-phase fast path resolves data flow after the fact:
        # under implicit semantics by "writes at t are visible to
        # reads at t" bisection over recorded finish times (with a
        # cascade-depth side table replaying same-instant zero-BCET
        # sub-batches), under LET from the time-deterministic
        # publication/read instants.  Scheduling never depends on
        # data under either semantics, so phase 1 is shared.  The
        # only requirement is a unit assignment for every CPU task.
        eligible = all(
            task.ecu is not None
            for task in self._graph.tasks
            if not task.is_instantaneous
        )
        if self._semantics == "let":
            if choice == "classic":
                raise ModelError(
                    "loop 'classic' requires implicit semantics; LET "
                    "runs use the fast or general loop"
                )
            if choice == "fast":
                if not eligible:
                    raise ModelError(
                        "loop 'fast' requires every CPU task to have "
                        "a unit assignment"
                    )
                return "fast"
            return "fast" if eligible else "general"
        if choice == "classic":
            # The classic loop derives releases arithmetically and has
            # no fault hook; table runs use the fast or general loop.
            if self._use_tables:
                raise ModelError(
                    "loop 'classic' requires strictly periodic releases "
                    "and no fault plan; this run uses release tables"
                )
            return "classic"
        if choice == "fast":
            if not eligible:
                raise ModelError(
                    "loop 'fast' requires every CPU task to have "
                    "a unit assignment"
                )
            return "fast"
        if self._use_tables:
            return "fast" if eligible else "general"
        return "fast" if eligible else "classic"

    def run(self) -> SimulationResult:
        """Run to the horizon and return stats plus the observers."""
        loop = self._resolved_loop
        if loop == "fast":
            # The Fig. 6 harness spends >99% of its wall time in the
            # simulator, so the common case (implicit or LET
            # semantics, no fault plan) runs on a two-phase fast
            # path: a schedule-only event loop over integer tuples,
            # then lazy data-flow reconstruction for the jobs
            # observers actually monitor.
            self._run_fastpath()
        else:
            for task in self._graph.tasks:
                if self._use_tables:
                    table = self._rel_full[task.name]
                    if table:
                        self._rel_idx[task.name] = 1
                        self._push(table[0], _PHASE_RELEASE, task)
                else:
                    self._push(task.offset, _PHASE_RELEASE, task)
            if loop == "classic":
                self._run_events_implicit()
            else:
                self._run_events_general()
        for unit in self._units.values():
            self._stats.busy_time[unit.name] = unit.busy_time
        for observer in self._observers:
            observer.on_end(min(self._duration, self._now_or_duration()))
        return SimulationResult(stats=self._stats, observers=self._observers)

    def _run_events_general(self) -> None:
        """Event loop handling every semantics/fault combination."""
        let_mode = self._semantics == "let"
        while self._events:
            now = self._events[0][0]
            if now > self._duration:
                break
            publishes: List[Tuple[str, Token]] = []
            releases: List[Task] = []
            finishes: List[Tuple[str, Job]] = []
            instantaneous: List[Job] = []
            released_jobs: List[Job] = []
            while self._events and self._events[0][0] == now:
                _, phase, _, payload = heapq.heappop(self._events)
                self._stats.events_processed += 1
                if phase == _PHASE_PUBLISH:
                    publishes.append(payload)  # type: ignore[arg-type]
                elif phase == _PHASE_RELEASE:
                    releases.append(payload)  # type: ignore[arg-type]
                else:
                    finishes.append(payload)  # type: ignore[arg-type]

            # 1. LET publications become visible first: a job released
            #    at t reads tokens published no later than t.
            for name, token in publishes:
                self._write_outputs(name, token)

            touched: List[str] = []
            for task in releases:
                job = self._release(task, now)
                if job is None:
                    continue  # release suppressed by the fault plan
                if task.is_instantaneous:
                    instantaneous.append(job)
                else:
                    assert task.ecu is not None
                    unit = self._units[task.ecu]
                    heapq.heappush(
                        unit.ready, (task.priority or 0, self._next_seq(), job)
                    )
                    released_jobs.append(job)
                    touched.append(task.ecu)

            # 2. Under implicit semantics, finished jobs write before
            #    anything dispatched at this instant reads.  Under LET,
            #    a finish only schedules the publication at the
            #    deadline.
            for unit_name, job in finishes:
                self._complete(job, now)
                self._units[unit_name].running = None
                touched.append(unit_name)

            # 3. Source emissions (and zero-WCET relays) in topological
            #    order, so a sensor sample stamped at t is readable at t.
            instantaneous.sort(key=lambda j: self._topo_index[j.task.name])
            for job in instantaneous:
                self._run_instantaneous(job, now)

            # 4. LET reads happen at release, after all same-instant
            #    publications and source emissions.
            if let_mode:
                for job in released_jobs:
                    job.reads = self._read_inputs(job.task.name)

            for unit_name in touched:
                self._dispatch(self._units[unit_name], now)

    def _run_events_implicit(self) -> None:
        """Specialized event loop: implicit semantics, no fault plan.

        Semantically identical to :meth:`_run_events_general` (same
        per-instant phase ordering: releases queue, finishes write,
        instantaneous jobs emit in topological order, then idle units
        dispatch), with hot lookups bound to locals and the per-event
        helpers collapsed into closures.  Deliberate fast paths:

        * instants carrying a single event (the overwhelmingly common
          case) skip the batching scaffolding entirely — with one event
          the phase ordering is trivially preserved;
        * a job with a single input reuses its parent token's
          provenance dict instead of merging a copy — provenance
          mappings are immutable by convention (see
          :mod:`repro.sim.provenance`), so sharing is safe;
        * the default :func:`uniform_policy` draw is inlined from
          precomputed ``[BCET, WCET]`` spans, skipping the per-job
          range re-validation (the range holds by construction);
        * observers are pre-dispatched per task via
          :attr:`Observer.interested_tasks`, so completions nobody
          monitors skip the notification loop entirely.
        """
        events = self._events
        heappush = heapq.heappush
        heappop = heapq.heappop
        duration = self._duration
        units = self._units
        in_channels = self._in_channels
        out_channels = self._out_channels
        job_counters = self._job_counters
        policy = self._policy
        rng = self._rng
        rng_random = rng.random
        fast_uniform = policy is uniform_policy
        sources = set(self._graph.sources())
        instantaneous_flag = {
            task.name: task.is_instantaneous for task in self._graph.tasks
        }
        exec_span = {
            task.name: (task.bcet, task.wcet - task.bcet + 1)
            for task in self._graph.tasks
        }
        notify_for: Dict[str, Tuple[Observer, ...]] = {
            task.name: tuple(
                observer
                for observer in self._observers
                if observer.interested_tasks is None
                or task.name in observer.interested_tasks
            )
            for task in self._graph.tasks
        }
        topo_key = self._topo_index.__getitem__
        seq = self._seq
        events_processed = 0
        jobs_released = 0
        jobs_completed = 0

        def dispatch(unit, now):
            """Start the highest-priority ready job on an idle unit."""
            nonlocal seq
            _, _, job = heappop(unit.ready)
            job.start = now
            task = job.task
            name = task.name
            reads = []
            for channel in in_channels[name]:
                buffer = channel._buffer
                if buffer:
                    reads.append(buffer[0])
            job.reads = tuple(reads)
            if fast_uniform:
                bcet, span = exec_span[name]
                exec_time = bcet + int(rng_random() * span) if span > 1 else bcet
            else:
                exec_time = policy(task, job.index, rng)
                if not task.bcet <= exec_time <= task.wcet:
                    raise ModelError(
                        f"policy returned execution time {exec_time} outside "
                        f"[{task.bcet}, {task.wcet}] for {name!r}"
                    )
            job.exec_time = exec_time
            unit.running = job
            unit.busy_time += exec_time
            unit.dispatches += 1
            seq += 1
            heappush(
                events, (now + exec_time, _PHASE_FINISH, seq, (unit.name, job))
            )

        def complete(job, now):
            """Finish a CPU job: write its token, notify observers."""
            nonlocal jobs_completed
            job.finish = now
            reads = job.reads
            if len(reads) == 1:
                provenance = reads[0].provenance
            elif not reads:
                provenance = {}
            else:
                provenance = merge_provenance(t.provenance for t in reads)
            name = job.task.name
            token = Token(now, name, job.release, provenance)
            for channel in out_channels[name]:
                buffer = channel._buffer
                if len(buffer) == channel.capacity:
                    buffer.popleft()
                    channel.evictions += 1
                buffer.append(token)
                channel.writes += 1
            jobs_completed += 1
            for observer in notify_for[name]:
                observer.on_job_complete(job, token)

        def run_instantaneous(job, now):
            """Source / zero-WCET job: read, produce, finish at ``now``."""
            nonlocal jobs_completed
            job.start = now
            job.finish = now
            job.exec_time = 0
            name = job.task.name
            if name in sources:
                release = job.release
                token = Token(release, name, release, {name: (release, release)})
            else:
                reads = []
                for channel in in_channels[name]:
                    buffer = channel._buffer
                    if buffer:
                        reads.append(buffer[0])
                job.reads = tuple(reads)
                if len(reads) == 1:
                    provenance = reads[0].provenance
                elif not reads:
                    provenance = {}
                else:
                    provenance = merge_provenance(t.provenance for t in reads)
                token = Token(now, name, job.release, provenance)
            for channel in out_channels[name]:
                buffer = channel._buffer
                if len(buffer) == channel.capacity:
                    buffer.popleft()
                    channel.evictions += 1
                buffer.append(token)
                channel.writes += 1
            jobs_completed += 1
            for observer in notify_for[name]:
                observer.on_job_complete(job, token)

        def release_job(task, now):
            """Schedule the next release and materialize this one's job."""
            nonlocal seq, jobs_released
            next_release = now + task.period
            if next_release <= duration:
                seq += 1
                heappush(events, (next_release, _PHASE_RELEASE, seq, task))
            name = task.name
            index = job_counters.get(name, 0)
            job_counters[name] = index + 1
            jobs_released += 1
            return Job(task, index, now)

        while events:
            head = events[0]
            now = head[0]
            if now > duration:
                break
            heappop(events)
            events_processed += 1

            if not events or events[0][0] != now:
                # Single-event instant: with one event the phase
                # ordering is trivially preserved, so skip the batching.
                if head[1] == _PHASE_RELEASE:
                    task = head[3]
                    job = release_job(task, now)
                    if instantaneous_flag[task.name]:
                        run_instantaneous(job, now)
                    else:
                        unit = units[task.ecu]
                        seq += 1
                        heappush(unit.ready, (task.priority or 0, seq, job))
                        if unit.running is None:
                            dispatch(unit, now)
                else:
                    unit_name, job = head[3]
                    complete(job, now)
                    unit = units[unit_name]
                    unit.running = None
                    if unit.ready:
                        dispatch(unit, now)
                continue

            # Multi-event instant: gather and process by phase, exactly
            # as the general loop does.
            releases: List[Task] = []
            finishes: List[Tuple[str, Job]] = []
            if head[1] == _PHASE_RELEASE:
                releases.append(head[3])
            else:
                finishes.append(head[3])
            while events and events[0][0] == now:
                _, phase, _, payload = heappop(events)
                events_processed += 1
                if phase == _PHASE_RELEASE:
                    releases.append(payload)
                else:
                    finishes.append(payload)

            touched: List[str] = []
            instantaneous: List[Job] = []
            for task in releases:
                job = release_job(task, now)
                if instantaneous_flag[task.name]:
                    instantaneous.append(job)
                else:
                    unit = units[task.ecu]
                    seq += 1
                    heappush(unit.ready, (task.priority or 0, seq, job))
                    touched.append(task.ecu)

            for unit_name, job in finishes:
                complete(job, now)
                units[unit_name].running = None
                touched.append(unit_name)

            if instantaneous:
                if len(instantaneous) > 1:
                    instantaneous.sort(key=lambda j: topo_key(j.task.name))
                for job in instantaneous:
                    run_instantaneous(job, now)

            for unit_name in touched:
                unit = units[unit_name]
                if unit.running is None and unit.ready:
                    dispatch(unit, now)

        self._seq = seq
        self._stats.events_processed += events_processed
        self._stats.jobs_released += jobs_released
        self._stats.jobs_completed += jobs_completed

    def _run_fastpath(self) -> None:
        """Two-phase fast path: schedule first, data flow lazily after.

        Under both implicit and LET communication, scheduling never
        depends on data (reads never block), so phase 1 simulates the
        schedule alone —
        an event loop over plain integer tuples with no jobs, tokens,
        channels or provenance, and with the release streams of
        off-CPU instantaneous tasks (sources, zero-WCET relays) taken
        out of the event queue entirely and generated arithmetically.
        Execution times are drawn at dispatch in the same global
        chronological order as the classic loop, so the schedule is
        bit-identical for any policy and seed.

        Phase 2 (:class:`_FastFlow`) reconstructs data flow only where
        something observes it: the write visible to a read at time
        ``t`` is found by bisecting the producer's completion times
        (FIFO head = ``max(0, writes - capacity)``), and provenance is
        merged as interned bitmasks (:class:`ProvenancePacker`),
        memoized over the backward closure of the monitored jobs.
        Channel states are rebuilt on first :meth:`channel_state`
        access.

        Zero-BCET CPU tasks are handled with a cascade-depth side
        table: a job that executes in zero time finishes at its own
        start instant, so its write lands in a later sub-batch of that
        instant and must stay invisible to jobs dispatched in earlier
        sub-batches.  Phase 1 records, per dispatched job, the number
        of zero-time finishes on its unit that chained into this
        dispatch at the same instant (``casc``); phase 2 turns those
        depths into intra-instant ordering keys so the bisection
        replays the classic loop's sub-batch visibility exactly.
        Systems where every CPU task has BCET >= 1 never populate the
        table and skip the extra checks entirely.

        Under LET semantics phase 1 is the same schedule-only loop
        plus an inline deadline check at every finish (a LET job must
        finish by release + period; the general loop raises the same
        :class:`ModelError`).  The cascade table is not needed: LET
        data flow depends only on publication/read *instants*
        (deadline / release), never on same-instant finish ordering.
        Phase 2 resolves LET reads arithmetically (see
        :class:`_FastFlow`).

        The loop exploits three structural invariants for speed, all
        order-preserving (the execution-time draws stay in the exact
        global chronological dispatch order of the classic loop):

        * popping an event and pushing its successor (a release
          reschedules the next release; a finish on a unit with a
          non-empty ready queue dispatches the next job) collapse into
          one ``heapreplace`` sift;
        * a unit that is idle between instants always has an empty
          ready queue (whenever a unit goes idle the loop immediately
          dispatches from its queue if possible), so a single release
          arriving at an idle unit dispatches directly, skipping the
          ready-heap round-trip entirely;
        * a finish event at an instant is only ever followed by other
          finish events at that instant (releases sort first at equal
          times), and same-instant finishes on *other* units cannot
          change this unit's ready queue — so the head finish can
          complete and re-dispatch before its siblings are drained.

        The completion stream handed to observers is filtered *during*
        the run to the tasks any observer is interested in; most
        completions are then a counter increment and nothing else.
        """
        graph = self._graph
        duration = self._duration
        tasks = tuple(graph.tasks)
        n = len(tasks)
        inst = [task.is_instantaneous for task in tasks]
        periods = [task.period for task in tasks]
        offsets = [task.offset for task in tasks]
        prios = [task.priority or 0 for task in tasks]
        bcets = [task.bcet for task in tasks]
        spans = [task.wcet - task.bcet + 1 for task in tasks]

        unit_names = sorted(self._units)
        unit_index = {name: i for i, name in enumerate(unit_names)}
        unit_of = [
            unit_index[task.ecu] if task.ecu is not None else -1
            for task in tasks
        ]
        n_units = len(unit_names)
        ready: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_units)]
        running = [-1] * n_units
        busy = [0] * n_units
        unit_dispatches = [0] * n_units

        # Zero-BCET support: when any CPU task can execute in zero
        # time, same-instant finish->dispatch cascades become possible
        # and intra-instant ordering matters to data flow.  ``casc``
        # maps (gid, job index) -> cascade depth (>= 1) for jobs whose
        # dispatch was triggered by a zero-time finish at the same
        # instant; ``cur_batch`` holds the depth of each unit's most
        # recent dispatch.  Systems with BCET >= 1 everywhere skip all
        # of this (``track`` is False and ``casc`` stays None), and so
        # do LET runs: LET visibility depends only on publication and
        # read instants, never on same-instant finish ordering.
        let_mode = self._semantics == "let"
        track = not let_mode and any(
            bcets[tid] == 0 for tid in range(n) if not inst[tid]
        )
        casc: Optional[Dict[Tuple[int, int], int]] = {} if track else None
        cur_batch = [0] * n_units

        names = [task.name for task in tasks]

        # Release tables (fault plans / non-periodic release models):
        # the full instant list feeds the release heap, the keep mask
        # suppresses jobs, and the kept list (the instants that *did*
        # produce a job) is what phase 2 and the deadline check index
        # by job number.  ``rel_tab is None`` keeps the strictly
        # periodic arithmetic paths byte-for-byte untouched.
        rel_tab: Optional[List[List[Time]]] = None
        keep_tab: List[List[bool]] = []
        kept_rel: List[List[Time]] = []
        if self._use_tables:
            rel_tab = [self._rel_full[name] for name in names]
            keep_tab = [self._rel_keep[name] for name in names]
            kept_rel = [
                [at for at, ok in zip(full, keep) if ok]
                for full, keep in zip(rel_tab, keep_tab)
            ]
        rel_ptr = [1] * n  # next table index to push, per task

        def check_deadline(tid: int, now: Time) -> None:
            """LET deadline check at a finish, mirroring ``_complete``."""
            k = len(starts[tid]) - 1
            if rel_tab is None:
                deadline = offsets[tid] + (k + 1) * periods[tid]
            else:
                deadline = kept_rel[tid][k] + periods[tid]
            if now > deadline:
                raise ModelError(
                    f"LET violation: job {names[tid]}#{k} "
                    f"finished at {now} past its deadline {deadline}"
                )

        starts: List[List[Time]] = [[] for _ in range(n)]
        execs: List[List[Time]] = [[] for _ in range(n)]
        completed = [0] * n
        comp_times: List[Time] = []
        comp_gids: List[int] = []
        ct_append = comp_times.append
        cg_append = comp_gids.append

        # Which tasks' completions any observer wants: the completion
        # stream is filtered while the run is hot instead of afterwards.
        monitored: Optional[Set[str]] = set()
        for observer in self._observers:
            interested = observer.interested_tasks
            if interested is None:
                monitored = None
                break
            monitored.update(interested)
        if not self._observers:
            record = [False] * n
        elif monitored is None:
            record = [True] * n
        else:
            record = [task.name in monitored for task in tasks]

        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        policy = self._policy
        rng = self._rng
        rng_random = rng.random
        fast_uniform = policy is uniform_policy
        seq = 0

        # Releases and finishes live in separate heaps: the release
        # heap holds one entry per CPU task, the finish heap one entry
        # per *busy unit* (usually just a handful), so finish sifts are
        # near-free.  "Releases before finishes at equal times" — the
        # phase ordering the single-heap loops encode in the tuple —
        # becomes the ``<=`` in the head comparison below; the shared
        # ``seq`` counter keeps every same-phase tie in the exact order
        # the classic loop would process.  A sentinel beyond the
        # horizon keeps both heaps non-empty (no emptiness checks).
        sentinel = duration + 1
        rel_heap: List[Tuple[Time, int, int]] = []
        for tid in range(n):
            if not inst[tid]:
                if rel_tab is None:
                    seq += 1
                    rel_heap.append((offsets[tid], seq, tid))
                elif rel_tab[tid]:
                    seq += 1
                    rel_heap.append((rel_tab[tid][0], seq, tid))
        rel_heap.append((sentinel, 0, -1))
        heapq.heapify(rel_heap)
        fin_heap: List[Tuple[Time, int, int]] = [(sentinel, 0, -1)]

        def draw(tid: int, index: int) -> Time:
            """Non-default policy draw, with the range re-check."""
            task = tasks[tid]
            exec_time = policy(task, index, rng)
            if not task.bcet <= exec_time <= task.wcet:
                raise ModelError(
                    f"policy returned execution time {exec_time} outside "
                    f"[{task.bcet}, {task.wcet}] for {task.name!r}"
                )
            return exec_time

        def dispatch(u: int, now: Time, nb: int = 0) -> None:
            """Start the next ready job (multi-event instants only).

            ``nb`` is the cascade depth of this dispatch: 0 when it
            follows a release or a positive-time finish, depth + 1
            when a zero-time finish at the same instant triggered it.
            """
            nonlocal seq
            _, _, tid = heappop(ready[u])
            task_starts = starts[tid]
            task_starts.append(now)
            if fast_uniform:
                span = spans[tid]
                exec_time = (
                    bcets[tid] + int(rng_random() * span)
                    if span > 1
                    else bcets[tid]
                )
            else:
                exec_time = draw(tid, len(task_starts) - 1)
            execs[tid].append(exec_time)
            if track:
                cur_batch[u] = nb
                if nb:
                    casc[(tid, len(task_starts) - 1)] = nb
            running[u] = tid
            seq += 1
            heappush(fin_heap, (now + exec_time, seq, u))

        while True:
            head = rel_heap[0]
            now = head[0]
            if now <= fin_heap[0][0]:
                # Release event (at equal times releases go first).
                if now > duration:
                    break
                tid = head[2]
                if rel_tab is None:
                    next_release = now + periods[tid]
                    if next_release <= duration:
                        seq += 1
                        heapreplace(rel_heap, (next_release, seq, tid))
                    else:
                        heappop(rel_heap)
                else:
                    table = rel_tab[tid]
                    nxt = rel_ptr[tid]
                    rel_ptr[tid] = nxt + 1
                    if nxt < len(table):
                        seq += 1
                        heapreplace(rel_heap, (table[nxt], seq, tid))
                    else:
                        heappop(rel_heap)
                    if not keep_tab[tid][nxt - 1]:
                        # Suppressed release: the heap advanced, no job
                        # exists — same-instant siblings are handled by
                        # the following iterations (intra-instant order
                        # among releases never affects the schedule).
                        continue
                u = unit_of[tid]
                if rel_heap[0][0] == now or fin_heap[0][0] == now:
                    # Multi-event instant: queue this release and fall
                    # through to the batched path (it may be outranked
                    # by a same-instant higher-priority release).
                    seq += 1
                    heappush(ready[u], (prios[tid], seq, tid))
                    touched = [u]
                    while rel_heap[0][0] == now:
                        tid2 = heappop(rel_heap)[2]
                        if rel_tab is None:
                            nr = now + periods[tid2]
                            if nr <= duration:
                                seq += 1
                                heappush(rel_heap, (nr, seq, tid2))
                        else:
                            table = rel_tab[tid2]
                            nxt = rel_ptr[tid2]
                            rel_ptr[tid2] = nxt + 1
                            if nxt < len(table):
                                seq += 1
                                heappush(rel_heap, (table[nxt], seq, tid2))
                            if not keep_tab[tid2][nxt - 1]:
                                continue  # suppressed: queue nothing
                        u2 = unit_of[tid2]
                        seq += 1
                        heappush(ready[u2], (prios[tid2], seq, tid2))
                        touched.append(u2)
                    while fin_heap[0][0] == now:
                        u2 = heappop(fin_heap)[2]
                        tid2 = running[u2]
                        if let_mode:
                            check_deadline(tid2, now)
                        if record[tid2]:
                            ct_append(now)
                            cg_append(tid2)
                        running[u2] = -1
                        touched.append(u2)
                    for u2 in touched:
                        if running[u2] < 0 and ready[u2]:
                            dispatch(u2, now)
                elif running[u] < 0:
                    # Idle unit => empty ready queue (the loop always
                    # drains the queue when a unit goes idle), so this
                    # release dispatches directly — no heap round-trip.
                    task_starts = starts[tid]
                    task_starts.append(now)
                    if fast_uniform:
                        span = spans[tid]
                        exec_time = (
                            bcets[tid] + int(rng_random() * span)
                            if span > 1
                            else bcets[tid]
                        )
                    else:
                        exec_time = draw(tid, len(task_starts) - 1)
                    execs[tid].append(exec_time)
                    if track:
                        cur_batch[u] = 0
                    running[u] = tid
                    seq += 1
                    heappush(fin_heap, (now + exec_time, seq, u))
                else:
                    seq += 1
                    heappush(ready[u], (prios[tid], seq, tid))
            else:
                # Finish event.  Any same-instant siblings are finishes
                # too (releases sort first), and they cannot touch this
                # unit's ready queue — complete and re-dispatch here,
                # folding the pop + next-finish push into one sift.
                head = fin_heap[0]
                now = head[0]
                if now > duration:
                    break
                u = head[2]
                tid = running[u]
                if let_mode:
                    check_deadline(tid, now)
                if record[tid]:
                    ct_append(now)
                    cg_append(tid)
                rq = ready[u]
                if rq:
                    if track:
                        nb = (
                            cur_batch[u] + 1 if execs[tid][-1] == 0 else 0
                        )
                    _, _, tid = heappop(rq)
                    task_starts = starts[tid]
                    task_starts.append(now)
                    if fast_uniform:
                        span = spans[tid]
                        exec_time = (
                            bcets[tid] + int(rng_random() * span)
                            if span > 1
                            else bcets[tid]
                        )
                    else:
                        exec_time = draw(tid, len(task_starts) - 1)
                    execs[tid].append(exec_time)
                    if track:
                        cur_batch[u] = nb
                        if nb:
                            casc[(tid, len(task_starts) - 1)] = nb
                    running[u] = tid
                    seq += 1
                    heapreplace(fin_heap, (now + exec_time, seq, u))
                else:
                    running[u] = -1
                    heappop(fin_heap)
                if fin_heap[0][0] == now:
                    # Remaining same-instant finishes, batched: complete
                    # all (their writes land at ``now`` regardless of
                    # processing order), then dispatch idle units in the
                    # same order the classic loop would.
                    fin2: List[int] = []
                    while fin_heap[0][0] == now:
                        fin2.append(heappop(fin_heap)[2])
                    if track:
                        nbs: List[int] = []
                        for u2 in fin2:
                            tid2 = running[u2]
                            nbs.append(
                                cur_batch[u2] + 1
                                if execs[tid2][-1] == 0
                                else 0
                            )
                            if record[tid2]:
                                ct_append(now)
                                cg_append(tid2)
                            running[u2] = -1
                        for u2, nb2 in zip(fin2, nbs):
                            if running[u2] < 0 and ready[u2]:
                                dispatch(u2, now, nb2)
                    else:
                        for u2 in fin2:
                            tid2 = running[u2]
                            if let_mode:
                                check_deadline(tid2, now)
                            if record[tid2]:
                                ct_append(now)
                                cg_append(tid2)
                            running[u2] = -1
                        for u2 in fin2:
                            if running[u2] < 0 and ready[u2]:
                                dispatch(u2, now)

        # Every per-event counter the live loops maintain is derivable
        # from the recorded schedule, so the hot loop skips them all:
        # per-task finish times are monotonic (jobs of one task execute
        # sequentially on one unit), hence only the *last* dispatched
        # job of a task can outlive the horizon, and busy time /
        # dispatch counts are plain sums over the start/exec arrays.
        releases_processed = 0
        jobs_released = 0
        jobs_dropped = 0
        finishes_processed = 0
        for tid in range(n):
            if inst[tid]:
                continue
            if rel_tab is None:
                offset = offsets[tid]
                if offset <= duration:
                    count = (duration - offset) // periods[tid] + 1
                    releases_processed += count
                    jobs_released += count
            else:
                releases_processed += len(rel_tab[tid])
                jobs_released += len(kept_rel[tid])
                jobs_dropped += len(rel_tab[tid]) - len(kept_rel[tid])
            task_starts = starts[tid]
            task_execs = execs[tid]
            done = len(task_starts)
            if done and task_starts[-1] + task_execs[-1] > duration:
                done -= 1
            completed[tid] = done
            finishes_processed += done
            u = unit_of[tid]
            busy[u] += sum(task_execs)
            unit_dispatches[u] += len(task_starts)

        for name, u in unit_index.items():
            state = self._units[name]
            state.busy_time = busy[u]
            state.dispatches = unit_dispatches[u]

        # Instantaneous tasks never entered the event queue; their
        # release/completion counters are pure arithmetic (or table
        # lengths under release tables).
        inst_releases = 0
        inst_jobs = 0
        for tid in range(n):
            if not inst[tid]:
                continue
            if rel_tab is None:
                if offsets[tid] <= duration:
                    count = (duration - offsets[tid]) // periods[tid] + 1
                    inst_releases += count
                    inst_jobs += count
            else:
                inst_releases += len(rel_tab[tid])
                inst_jobs += len(kept_rel[tid])
                jobs_dropped += len(rel_tab[tid]) - len(kept_rel[tid])

        # Under LET the general loop also processes one publication
        # event per completed non-source job whose deadline falls
        # within the horizon; mirror that in the event counter.
        pubs_processed = 0
        if let_mode:
            for tid in range(n):
                if graph.is_source(names[tid]):
                    continue
                if rel_tab is None:
                    offset = offsets[tid]
                    if offset > duration:
                        continue
                    horizon_pubs = (duration - offset) // periods[tid]
                else:
                    horizon_pubs = bisect_right(
                        kept_rel[tid], duration - periods[tid]
                    )
                if inst[tid]:
                    pubs_processed += horizon_pubs
                else:
                    done = completed[tid]
                    pubs_processed += (
                        done if done < horizon_pubs else horizon_pubs
                    )
        self._stats.events_processed += (
            releases_processed + finishes_processed + inst_releases
            + pubs_processed
        )
        self._stats.jobs_released += jobs_released + inst_jobs
        self._stats.jobs_dropped += jobs_dropped
        self._stats.jobs_completed += finishes_processed + inst_jobs

        self._fastflow = flow = _FastFlow(
            graph=graph,
            duration=duration,
            tasks=tasks,
            inst=inst,
            periods=periods,
            offsets=offsets,
            starts=starts,
            execs=execs,
            completed=completed,
            topo_index=self._topo_index,
            casc=casc,
            semantics=self._semantics,
            rels=kept_rel if rel_tab is not None else None,
        )
        if self._observers:
            self._fastpath_notify(flow, comp_times, comp_gids)

    def _fastpath_notify(
        self,
        flow: "_FastFlow",
        comp_times: List[Time],
        comp_gids: List[int],
    ) -> None:
        """Replay the completion stream of monitored tasks, in order.

        The classic loop notifies per completion in global chronological
        order — positive-time CPU finishes in processed order first,
        then same-instant instantaneous completions in topological
        order, then zero-time CPU finishes (which the classic loop
        only processes in later sub-batches of the instant) in cascade
        order.  Restricting that stream to the tasks any observer is
        interested in preserves the relative order the observers would
        have seen.
        """
        tasks = flow.tasks
        name_of = [task.name for task in tasks]
        monitored: Optional[Set[str]] = set()
        for observer in self._observers:
            interested = observer.interested_tasks
            if interested is None:
                monitored = None
                break
            monitored.update(interested)
        notify_for: Dict[str, Tuple[Observer, ...]] = {
            task.name: tuple(
                observer
                for observer in self._observers
                if observer.interested_tasks is None
                or task.name in observer.interested_tasks
            )
            for task in tasks
        }

        # (time, 0=CPU/1=instantaneous/2=zero-time CPU, tie-break,
        # gid, job index)
        stream: List[Tuple[Time, int, int, int, int]] = []
        counters = [0] * len(tasks)
        execs = flow._execs
        for order, gid in enumerate(comp_gids):
            index = counters[gid]
            counters[gid] = index + 1
            if monitored is None or name_of[gid] in monitored:
                sub = 0 if execs[gid][index] else 2
                stream.append((comp_times[order], sub, order, gid, index))
        topo = flow.topo_index
        for gid, task in enumerate(tasks):
            if not flow.inst[gid]:
                continue
            if monitored is not None and task.name not in monitored:
                continue
            key = topo[task.name]
            for index in range(flow.n_releases(gid)):
                stream.append((flow.release_of(gid, index), 1, key, gid, index))
        stream.sort()

        for _, _, _, gid, index in stream:
            job, token = flow.materialize(gid, index)
            for observer in notify_for[name_of[gid]]:
                observer.on_job_complete(job, token)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _now_or_duration(self) -> Time:
        return self._duration

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, time: Time, phase: int, payload: object) -> None:
        heapq.heappush(self._events, (time, phase, self._next_seq(), payload))

    def _release(self, task: Task, now: Time) -> Optional[Job]:
        name = task.name
        if self._use_tables:
            # Table mode: successor and "kept" flag come from the
            # pre-drawn release table (the fault plan is already folded
            # into the keep mask).
            table = self._rel_full[name]
            nxt = self._rel_idx[name]
            self._rel_idx[name] = nxt + 1
            if nxt < len(table):
                self._push(table[nxt], _PHASE_RELEASE, task)
            if not self._rel_keep[name][nxt - 1]:
                self._stats.jobs_dropped += 1
                return None
        else:
            next_release = now + task.period
            if next_release <= self._duration:
                self._push(next_release, _PHASE_RELEASE, task)
            if self._faults is not None and self._faults.is_dropped(name, now):
                self._stats.jobs_dropped += 1
                return None
        index = self._job_counters.get(name, 0)
        self._job_counters[name] = index + 1
        self._stats.jobs_released += 1
        return Job(task, index, now)

    def _read_inputs(self, name: str) -> Tuple[Token, ...]:
        tokens = []
        for channel in self._in_channels[name]:
            token = channel.read()
            if token is not None:
                tokens.append(token)
        return tuple(tokens)

    def _run_instantaneous(self, job: Job, now: Time) -> None:
        """Source / zero-WCET jobs: read, produce, finish — all at ``now``.

        Sources publish immediately under both semantics (a sensor
        stamps and emits at sampling time).  Zero-WCET relays follow
        the active semantics: immediate write under implicit
        communication, deadline publication under LET.
        """
        job.start = now
        job.finish = now
        job.exec_time = 0
        name = job.task.name
        if self._graph.is_source(name):
            token = source_token(name, job.release)
            self._write_outputs(name, token)
        else:
            job.reads = self._read_inputs(name)
            token = Token(
                produced_at=now,
                producer=name,
                producer_release=job.release,
                provenance=merge_provenance(t.provenance for t in job.reads),
            )
            if self._semantics == "let":
                self._push(
                    job.release + job.task.period, _PHASE_PUBLISH, (name, token)
                )
            else:
                self._write_outputs(name, token)
        self._notify(job, token)

    def _dispatch(self, unit: _UnitState, now: Time) -> None:
        if unit.running is not None or not unit.ready:
            return
        _, _, job = heapq.heappop(unit.ready)
        job.start = now
        if self._semantics != "let":
            # Implicit communication reads at start; under LET the
            # inputs were already captured at release.
            job.reads = self._read_inputs(job.task.name)
        exec_time = self._policy(job.task, job.index, self._rng)
        if not job.task.bcet <= exec_time <= job.task.wcet:
            raise ModelError(
                f"policy returned execution time {exec_time} outside "
                f"[{job.task.bcet}, {job.task.wcet}] for {job.task.name!r}"
            )
        job.exec_time = exec_time
        unit.running = job
        unit.busy_time += exec_time
        unit.dispatches += 1
        self._push(now + exec_time, _PHASE_FINISH, (unit.name, job))

    def _complete(self, job: Job, now: Time) -> None:
        job.finish = now
        token = Token(
            produced_at=now,
            producer=job.task.name,
            producer_release=job.release,
            provenance=merge_provenance(t.provenance for t in job.reads),
        )
        if self._semantics == "let":
            deadline = job.release + job.task.period
            if now > deadline:
                raise ModelError(
                    f"LET violation: job {job.task.name}#{job.index} "
                    f"finished at {now} past its deadline {deadline}"
                )
            self._push(deadline, _PHASE_PUBLISH, (job.task.name, token))
        else:
            self._write_outputs(job.task.name, token)
        self._notify(job, token)

    def _write_outputs(self, name: str, token: Token) -> None:
        for channel in self._out_channels[name]:
            channel.write(token)

    def _notify(self, job: Job, token: Token) -> None:
        self._stats.jobs_completed += 1
        for observer in self._observers:
            observer.on_job_complete(job, token)


class _FastFlow:
    """Lazy data-flow reconstruction over a completed fast-path run.

    Phase 1 recorded, per task, the start/execution times of every
    dispatched job (CPU tasks) or nothing at all (instantaneous tasks,
    whose behaviour is pure arithmetic over ``offset + k * period``).
    This resolver answers "what did job ``k`` of task ``v`` read?"
    after the fact:

    * under implicit semantics the number of writes of producer ``u``
      visible to a read at time ``s`` is
      ``bisect_right(finish_times(u), s)`` (writes at ``t`` are
      visible to reads at ``t``, matching the per-instant phase
      ordering of the live loops);
    * under LET semantics both sides are arithmetic: job ``k`` of a
      consumer reads at its release ``offset + k * period``, and a
      non-source producer's ``j``-th publication lands at its deadline
      ``offset + (j + 1) * period`` (sources still publish at
      release); a CPU producer only publishes jobs it completed within
      the horizon, so the count is capped by ``completed``;
    * the FIFO head among ``m`` visible writes on a channel of
      capacity ``c`` is write ``max(0, m - c)`` — eviction only ever
      removes the oldest token;
    * provenance is folded bottom-up over that read relation as
      interned bitmask + stamp-array values
      (:class:`~repro.sim.provenance.ProvenancePacker`), memoized per
      ``(task, job)``, so only the backward closure of the jobs
      somebody observes is ever resolved.

    Tokens and jobs are materialized (with plain dict provenance) only
    at the observer/channel boundary, keeping observer and test
    compatibility with the live loops.
    """

    __slots__ = (
        "tasks",
        "inst",
        "periods",
        "offsets",
        "topo_index",
        "duration",
        "_names",
        "_gid",
        "_starts",
        "_execs",
        "_completed",
        "_finishes",
        "_in_ch",
        "_is_source",
        "_packer",
        "_prov",
        "_reads",
        "_tokens",
        "_casc",
        "_let",
        "_rels",
    )

    def __init__(
        self,
        *,
        graph: CauseEffectGraph,
        duration: Time,
        tasks: Tuple[Task, ...],
        inst: List[bool],
        periods: List[Time],
        offsets: List[Time],
        starts: List[List[Time]],
        execs: List[List[Time]],
        completed: List[int],
        topo_index: Dict[str, int],
        casc: Optional[Dict[Tuple[int, int], int]] = None,
        semantics: str = "implicit",
        rels: Optional[List[List[Time]]] = None,
    ) -> None:
        self.tasks = tasks
        self.inst = inst
        self.periods = periods
        self.offsets = offsets
        self.topo_index = topo_index
        self.duration = duration
        self._names = [task.name for task in tasks]
        self._gid = {task.name: i for i, task in enumerate(tasks)}
        self._starts = starts
        self._execs = execs
        self._completed = completed
        self._finishes: List[Optional[List[Time]]] = [None] * len(tasks)
        gid = self._gid
        self._in_ch: List[List[Tuple[int, int]]] = [
            [
                (gid[p], graph.channel(p, task.name).capacity)
                for p in graph.predecessors(task.name)
            ]
            for task in tasks
        ]
        sources = graph.sources()
        self._is_source = [task.name in set(sources) for task in tasks]
        self._packer = ProvenancePacker(sources)
        self._prov: Dict[Tuple[int, int], tuple] = {}
        self._reads: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}
        self._tokens: Dict[Tuple[int, int], Token] = {}
        self._casc = casc
        self._let = semantics == "let"
        # Kept release instants per task under release tables (fault
        # plans / non-periodic models); None keeps every geometry
        # question arithmetic over ``offset + k * period``.
        self._rels = rels

    # -- write/read geometry -------------------------------------------

    def n_releases(self, gid: int) -> int:
        """Releases of task ``gid`` producing a job within the horizon."""
        rels = self._rels
        if rels is not None:
            return len(rels[gid])
        offset = self.offsets[gid]
        if offset > self.duration:
            return 0
        return (self.duration - offset) // self.periods[gid] + 1

    def release_of(self, gid: int, index: int) -> Time:
        """Release instant of job ``index`` of task ``gid``."""
        rels = self._rels
        if rels is not None:
            return rels[gid][index]
        return self.offsets[gid] + index * self.periods[gid]

    def _finish_times(self, gid: int) -> List[Time]:
        found = self._finishes[gid]
        if found is None:
            starts = self._starts[gid]
            execs = self._execs[gid]
            found = [
                starts[k] + execs[k] for k in range(self._completed[gid])
            ]
            self._finishes[gid] = found
        return found

    def _writes_upto(self, gid: int, time: Time, rkey: int = 2) -> int:
        """Writes of ``gid`` visible to a read at ``time``.

        Writes strictly before ``time`` are always visible.  At
        ``time`` itself the intra-instant sub-batch order decides:
        every event carries an ordering key — 0 for positive-time CPU
        finishes (processed in the instant's first batch), 1 for
        instantaneous-task emissions (after those finishes, before any
        dispatch), ``3 * depth + 2`` for a CPU read dispatched at
        cascade depth ``depth``, and ``3 * (depth + 1)`` for the write
        of a zero-time job dispatched at depth ``depth`` (its finish
        is processed one batch later).  A same-instant write is
        visible iff its key does not exceed the reader's ``rkey``.
        Without zero-BCET tasks (``casc`` is None) every same-instant
        write has key <= 1 and the plain bisection stands.

        Under LET the count is arithmetic instead: sources publish at
        release (``offset + j * period``), every other producer at its
        deadline (``offset + (j + 1) * period``), a publication at
        ``t`` being visible to a read at ``t``; CPU producers publish
        only jobs they completed within the horizon.
        """
        rels = self._rels
        if self._let:
            if rels is not None:
                # Sources publish at release; every other producer at
                # its deadline (release + period), counted over the
                # *kept* releases.
                if self._is_source[gid]:
                    return bisect_right(rels[gid], time)
                m = bisect_right(rels[gid], time - self.periods[gid])
            else:
                offset = self.offsets[gid]
                if time < offset:
                    return 0
                if self._is_source[gid]:
                    return (time - offset) // self.periods[gid] + 1
                m = (time - offset) // self.periods[gid]
            if not self.inst[gid]:
                done = self._completed[gid]
                if m > done:
                    m = done
            return m
        if self.inst[gid]:
            if rels is not None:
                return bisect_right(rels[gid], time)
            offset = self.offsets[gid]
            if time < offset:
                return 0
            return (time - offset) // self.periods[gid] + 1
        fts = self._finish_times(gid)
        i = bisect_right(fts, time)
        casc = self._casc
        if casc is not None:
            execs = self._execs[gid]
            while (
                i
                and fts[i - 1] == time
                and execs[i - 1] == 0
                and 3 * (casc.get((gid, i - 1), 0) + 1) > rkey
            ):
                i -= 1
        return i

    def total_writes(self, gid: int) -> int:
        """All writes of ``gid`` within the horizon."""
        if self._let and not self._is_source[gid]:
            # Publications processed within the horizon: deadlines
            # ``release + period <= duration``, capped by the
            # completed count for CPU producers.
            rels = self._rels
            if rels is not None:
                m = bisect_right(rels[gid], self.duration - self.periods[gid])
            else:
                offset = self.offsets[gid]
                if self.duration < offset:
                    return 0
                m = (self.duration - offset) // self.periods[gid]
            if not self.inst[gid]:
                done = self._completed[gid]
                if m > done:
                    m = done
            return m
        if self.inst[gid]:
            return self.n_releases(gid)
        return self._completed[gid]

    def reads_of(self, gid: int, index: int) -> Tuple[Tuple[int, int], ...]:
        """``(producer gid, producer write index)`` read by job ``index``."""
        key = (gid, index)
        found = self._reads.get(key)
        if found is None:
            if self._let:
                # LET jobs read at release, CPU and relay alike.
                at = self.release_of(gid, index)
                rkey = 2  # unused: LET visibility ignores sub-batches
            elif self.inst[gid]:
                at = self.release_of(gid, index)
                rkey = 1
            else:
                at = self._starts[gid][index]
                casc = self._casc
                rkey = (
                    3 * casc.get(key, 0) + 2 if casc is not None else 2
                )
            reads = []
            for producer, capacity in self._in_ch[gid]:
                m = self._writes_upto(producer, at, rkey)
                if m:
                    reads.append(
                        (producer, m - capacity if m > capacity else 0)
                    )
            found = tuple(reads)
            self._reads[key] = found
        return found

    # -- provenance / materialization ----------------------------------

    def _prov_of(self, gid: int, index: int) -> tuple:
        key = (gid, index)
        found = self._prov.get(key)
        if found is None:
            if self._is_source[gid]:
                stamp = self.release_of(gid, index)
                found = self._packer.source(self._names[gid], stamp)
            else:
                reads = self.reads_of(gid, index)
                if not reads:
                    found = self._packer.empty
                elif len(reads) == 1:
                    found = self._prov_of(*reads[0])
                else:
                    found = self._packer.merge(
                        self._prov_of(p, k) for p, k in reads
                    )
            self._prov[key] = found
        return found

    def token(self, gid: int, index: int) -> Token:
        """The output token of completed job ``index`` of task ``gid``."""
        key = (gid, index)
        found = self._tokens.get(key)
        if found is None:
            name = self._names[gid]
            release = self.release_of(gid, index)
            if self._is_source[gid]:
                found = Token(release, name, release, {name: (release, release)})
            else:
                produced_at = (
                    release
                    if self.inst[gid]
                    else self._finish_times(gid)[index]
                )
                found = Token(
                    produced_at,
                    name,
                    release,
                    self._packer.unpack(self._prov_of(gid, index)),
                )
            self._tokens[key] = found
        return found

    def materialize(self, gid: int, index: int) -> Tuple[Job, Token]:
        """A ``(job, token)`` pair as the live loops hand to observers."""
        task = self.tasks[gid]
        release = self.release_of(gid, index)
        job = Job(task, index, release)
        if self.inst[gid]:
            job.start = release
            job.finish = release
            job.exec_time = 0
        else:
            job.start = self._starts[gid][index]
            job.exec_time = self._execs[gid][index]
            job.finish = job.start + job.exec_time
        if not self._is_source[gid]:
            job.reads = tuple(
                self.token(p, k) for p, k in self.reads_of(gid, index)
            )
        return job, self.token(gid, index)

    def fill_channel(self, state: ChannelState) -> None:
        """Rebuild a channel's counters and final buffer contents."""
        gid = self._gid[state.src]
        total = self.total_writes(gid)
        state.writes = total
        capacity = state.capacity
        state.evictions = total - capacity if total > capacity else 0
        for k in range(total - capacity if total > capacity else 0, total):
            state._buffer.append(self.token(gid, k))


def randomize_offsets(
    graph: CauseEffectGraph, rng: random.Random
) -> CauseEffectGraph:
    """Give every task a random release offset in ``[1, T(tau)]``.

    Matches the paper's evaluation setup ("the release offset of each
    task is randomly picked from the range of [1, T_i]").
    """
    shifted = graph.copy()
    for task in shifted.tasks:
        shifted.replace_task(task.with_offset(rng.randint(1, task.period)))
    return shifted


def simulate(
    system: System,
    duration: Time,
    *,
    seed: int = 0,
    policy: ExecTimePolicy = uniform_policy,
    observers: Sequence[Observer] = (),
    semantics: str = "implicit",
    faults=None,
    loop: str = "auto",
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        system,
        duration,
        seed=seed,
        policy=policy,
        observers=observers,
        semantics=semantics,
        faults=faults,
        loop=loop,
    ).run()

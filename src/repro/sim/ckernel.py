"""Build and bind the columnar advance kernel (``_ckernel.c``).

The columnar batch engine advances every replication's NP-FP schedule
in one call into a small C kernel, compiled **on first use** with the
host toolchain (``$CC``, else ``cc``/``gcc``/``clang``) into a cached
shared object — no build-time extension, no new dependency.  Loading
is strictly best-effort: any failure (no compiler, sandboxed tmpdir,
ABI drift) records a reason and the batch layer silently falls back to
the per-replication compiled loop, so the kernel is a pure
accelerator, never a requirement.

Environment knobs:

* ``REPRO_NO_CKERNEL=1`` — disable the kernel (forces the fallback
  tiers; used by differential tests and the no-accelerator CI leg).
* ``REPRO_CKERNEL_CACHE`` — directory for the compiled ``.so``
  (default: ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``, falling
  back to a per-user tempdir).  The object name embeds a hash of the C
  source, so stale caches are never loaded after a source change.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

#: ABI stamp; must match ``REPRO_CKERNEL_ABI`` in ``_ckernel.c``.
ABI_VERSION = 3

_SOURCE = Path(__file__).with_name("_ckernel.c")

#: ``(kernel, reason)`` memo of :func:`load_kernel` — ``None`` until
#: the first call, then a stable answer for the process lifetime.
_STATE: Optional[Tuple[Optional["Kernel"], Optional[str]]] = None

_I64 = ctypes.c_int64
_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_I32 = ctypes.POINTER(ctypes.c_int32)
_P_U64 = ctypes.POINTER(ctypes.c_uint64)
_P_F64 = ctypes.POINTER(ctypes.c_double)

#: ``columnar_advance`` signature (see ``_ckernel.c`` for the layout).
_ADVANCE_ARGTYPES = [
    _I64, _I64, _I64,          # sims, n, n_units
    _I64, _P_I64, _P_I32,      # stream_w, rel_times, rel_tids
    _I64,                      # duration
    _P_I64, _P_I64, _P_I64,    # bcet, wcet, span
    _P_I64,                    # periods
    _P_I32, _P_U64,            # unit_of, bit_of
    _P_I32, _I64,              # rank_tid, max_ranks
    _I64, _I64, _I64,          # policy_mode, let_mode, track
    _P_F64, _I64,              # variates, n_draws
    _P_I64,                    # offsets
    _P_I64, _P_I64, _I64,      # dl_tab, dl_base, dl_slots
    _P_I64, _P_I64, _I64,      # job_base, job_cap, slots
    _P_I64, _P_I64, _P_I32,    # starts_out, fins_out, casc_out
    _P_I64, _P_I64,            # rec_out, viol_out
]


class Kernel:
    """A loaded kernel: the ctypes library plus its bound entry point."""

    __slots__ = ("path", "lib", "advance")

    def __init__(self, path: Path, lib: ctypes.CDLL) -> None:
        self.path = path
        self.lib = lib
        advance = lib.columnar_advance
        advance.argtypes = _ADVANCE_ARGTYPES
        advance.restype = _I64
        self.advance = advance


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    home = Path.home()
    if home != Path("/"):
        return home / ".cache" / "repro"
    return Path(tempfile.gettempdir()) / f"repro-ckernel-{os.getuid()}"


def _compilers() -> List[str]:
    """Candidate compiler commands, most specific first."""
    candidates = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates.extend(["cc", "gcc", "clang"])
    found = []
    for name in candidates:
        resolved = shutil.which(name)
        if resolved and resolved not in found:
            found.append(resolved)
    return found


def _build(source: Path, target: Path) -> Optional[str]:
    """Compile ``source`` into ``target``; return a reason on failure."""
    compilers = _compilers()
    if not compilers:
        return "no C compiler on PATH (set $CC or install cc/gcc/clang)"
    target.parent.mkdir(parents=True, exist_ok=True)
    last = "compile failed"
    for cc in compilers:
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        cmd = [cc, "-O2", "-fPIC", "-shared", "-o", str(tmp), str(source)]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.SubprocessError) as exc:
            last = f"{cc}: {exc}"
            continue
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout or "").strip()[-200:]
            last = f"{cc} exited {proc.returncode}: {tail}"
            tmp.unlink(missing_ok=True)
            continue
        os.replace(tmp, target)  # atomic: concurrent builders agree
        return None
    return last


def load_kernel() -> Tuple[Optional[Kernel], Optional[str]]:
    """The process-wide kernel, building it on first use.

    Returns ``(kernel, None)`` on success or ``(None, reason)`` when
    the kernel is disabled or unavailable; the answer is memoized, so
    a failed build is attempted once per process.
    """
    global _STATE
    if _STATE is not None:
        return _STATE
    _STATE = _load_uncached()
    return _STATE


def _load_uncached() -> Tuple[Optional[Kernel], Optional[str]]:
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None, "disabled via REPRO_NO_CKERNEL"
    try:
        source_bytes = _SOURCE.read_bytes()
    except OSError as exc:
        return None, f"kernel source unreadable: {exc}"
    digest = hashlib.sha256(source_bytes).hexdigest()[:16]
    try:
        target = _cache_dir() / f"ckernel-abi{ABI_VERSION}-{digest}.so"
        if not target.exists():
            reason = _build(_SOURCE, target)
            if reason is not None:
                return None, reason
        lib = ctypes.CDLL(str(target))
        abi = lib.repro_ckernel_abi
        abi.restype = _I64
        abi.argtypes = []
        got = int(abi())
        if got != ABI_VERSION:
            return None, f"kernel ABI {got} != expected {ABI_VERSION}"
        return Kernel(target, lib), None
    except OSError as exc:
        return None, f"kernel build/load failed: {exc}"


def reset_kernel_state() -> None:
    """Forget the memoized load result (tests flip the env knobs)."""
    global _STATE
    _STATE = None


__all__ = [
    "ABI_VERSION",
    "Kernel",
    "load_kernel",
    "reset_kernel_state",
]

/* Columnar NP-FP advance kernel.
 *
 * One C transliteration of ``CompiledScenario._schedule`` (see
 * ``repro/sim/batch.py``) applied to every replication of a batch in a
 * single call.  The replications share the read-only compiled tables
 * (execution-time ranges, unit mapping, priority-rank bitmasks) and
 * differ only in their release-stream row, offset vector, and
 * execution-time variates, so the batch is a plain outer loop over
 * sims with no Python in the inner event loop.
 *
 * The Python side (``repro/sim/ckernel.py``) compiles this file on
 * first use with the host C compiler and binds ``columnar_advance``
 * via ctypes; the schedule it records must stay byte-identical to the
 * scalar loop (enforced by ``tests/test_batch_columnar.py``).  The
 * scalar loop's finish *heap* is replaced by a per-unit
 * ``(fin_time, fin_seq)`` pair plus a sentinel-aware min scan
 * (``rehead``): the heap never holds more than one live entry per
 * unit, so the scan is O(n_units) and reproduces the heap's
 * ``(time, push sequence)`` pop order exactly.
 *
 * Error protocol: ``columnar_advance`` returns 0 on success and
 * ``-(sim + 1)`` when an internal invariant broke in ``sim`` (variate
 * underrun or job-slot overflow — caller sizing bugs, never expected).
 * LET deadline violations are not errors at this layer: the violating
 * sim stops, its ``viol_out`` row records ``(tid, job, at, deadline)``,
 * and the caller raises the engine-identical ModelError for the lowest
 * violating sim index.
 */

#include <stdint.h>
#include <stdlib.h>

#define REPRO_CKERNEL_ABI 3

/* Read-only tables shared by every replication. */
typedef struct {
    int64_t n;          /* tasks */
    int64_t n_units;    /* processing units */
    int64_t duration;   /* horizon */
    int64_t sentinel;   /* duration + 1 */
    int64_t policy_mode; /* 0 uniform, 1 wcet, 2 bcet, 3 extremes */
    int64_t let_mode;   /* LET semantics: deadline-check each finish */
    int64_t track;      /* implicit + zero-BCET: record cascade depths */
    int64_t max_ranks;  /* columns of rank_tid */
    int64_t n_draws;    /* variate columns per sim */
    int64_t slots;      /* job-record columns per sim */
    const int64_t *bcet;
    const int64_t *wcet;
    const int64_t *span;     /* wcet - bcet + 1 */
    const int64_t *periods;
    const int32_t *unit_of;
    const uint64_t *bit_of;  /* ready-mask bit per task (rank bit) */
    const int32_t *rank_tid; /* n_units x max_ranks, -1 padded */
    const int64_t *job_base; /* first record slot per task, -1 if none */
    const int64_t *job_cap;  /* record slots per task */
    const int64_t *dl_base;  /* first deadline slot per task (LET tables) */
    int64_t dl_slots;        /* deadline columns per sim, 0 = arithmetic */
} Tables;

/* One replication's mutable state (scratch reused across sims). */
typedef struct {
    const Tables *tb;
    const int64_t *offs; /* n: this sim's offsets */
    const int64_t *dl;   /* dl_slots: this sim's LET deadline row */
    const double *var;   /* n_draws: this sim's U[0,1) variates */
    int64_t cursor;
    uint64_t *ready;     /* n_units: pending-task rank bitmask */
    int32_t *running;    /* n_units: running tid or -1 */
    int64_t *fin_time;   /* n_units: finish instant of running job */
    int64_t *fin_seq;    /* n_units: dispatch sequence of running job */
    uint8_t *zrun;       /* n_units: running job executes in zero time */
    int32_t *cur_batch;  /* n_units: running job's sub-batch depth */
    int64_t *pend;       /* n: queued job count per task */
    int64_t *starts;     /* slots: this sim's start row */
    int64_t *fins;       /* slots: this sim's finish row */
    int32_t *casc;       /* slots: this sim's cascade-depth row */
    int64_t *rec;        /* n: dispatch count per task (= LET ndisp) */
    int64_t *viol;       /* 4: LET violation (tid, job, at, deadline) */
    int64_t seq;
    int64_t fin_head;    /* earliest finish instant (or sentinel) */
    int64_t fin_head_u;  /* its unit, -1 for the sentinel */
    int64_t err;         /* 0 ok, 1 LET violation, 2 invariant broke */
} Sim;

/* Recompute the earliest (fin_time, fin_seq) over busy units.  The
 * sentinel compares as (sentinel, seq 0), before any real finish at
 * the same instant — exactly the scalar heap's permanent entry. */
static void rehead(Sim *s)
{
    const Tables *tb = s->tb;
    int64_t best_t = tb->sentinel;
    int64_t best_q = 0;
    int64_t best_u = -1;
    int64_t u;
    for (u = 0; u < tb->n_units; u++) {
        if (s->running[u] >= 0) {
            int64_t t = s->fin_time[u];
            if (t < best_t || (t == best_t && s->fin_seq[u] < best_q)) {
                best_t = t;
                best_q = s->fin_seq[u];
                best_u = u;
            }
        }
    }
    s->fin_head = best_t;
    s->fin_head_u = best_u;
}

/* Pop the highest-priority pending task of unit u (lowest set rank
 * bit); the bit clears only when the task's last queued job leaves. */
static int32_t pop_ready(Sim *s, int64_t u)
{
    const Tables *tb = s->tb;
    uint64_t m = s->ready[u];
    uint64_t b = m & (~m + 1ULL);
    int32_t tid = tb->rank_tid[u * tb->max_ranks + __builtin_ctzll(b)];
    if (--s->pend[tid] == 0)
        s->ready[u] = m ^ b;
    return tid;
}

/* LET: each finish must meet its job's deadline (one period past the
 * release).  rec counts dispatches, so the running job's index is
 * rec - 1 and its deadline offs + rec * period == release + period.
 * Under release tables (jitter/sporadic models, fault masks) the
 * arithmetic does not hold: the caller passes per-sim pre-computed
 * deadline rows (kept release + period per dispatched job) instead,
 * signalled by dl_slots > 0. */
static int check_deadline(Sim *s, int64_t u, int64_t now)
{
    const Tables *tb = s->tb;
    int32_t tid;
    int64_t deadline;
    if (!tb->let_mode)
        return 0;
    tid = s->running[u];
    if (tb->dl_slots)
        deadline = s->dl[tb->dl_base[tid] + s->rec[tid] - 1];
    else
        deadline = s->offs[tid] + s->rec[tid] * tb->periods[tid];
    if (now > deadline) {
        s->viol[0] = tid;
        s->viol[1] = s->rec[tid] - 1;
        s->viol[2] = now;
        s->viol[3] = deadline;
        s->err = 1;
        return 1;
    }
    return 0;
}

/* Draw tid's execution time and start it on unit u at ``now`` with
 * sub-batch depth nb.  Returns nonzero when the sim must stop. */
static int dispatch(Sim *s, int64_t u, int32_t tid, int64_t now, int32_t nb)
{
    const Tables *tb = s->tb;
    int64_t e, j, base;
    if (tb->policy_mode == 0) {
        int64_t sp = tb->span[tid];
        if (sp > 1) {
            if (s->cursor >= tb->n_draws) {
                s->err = 2;
                return 1;
            }
            e = tb->bcet[tid] + (int64_t)(s->var[s->cursor++] * (double)sp);
        } else {
            e = tb->bcet[tid];
        }
    } else if (tb->policy_mode == 1) {
        e = tb->wcet[tid];
    } else if (tb->policy_mode == 2) {
        e = tb->bcet[tid];
    } else {
        if (s->cursor >= tb->n_draws) {
            s->err = 2;
            return 1;
        }
        e = s->var[s->cursor++] < 0.5 ? tb->bcet[tid] : tb->wcet[tid];
    }
    j = s->rec[tid]++;
    base = tb->job_base[tid];
    if (base >= 0) {
        if (j >= tb->job_cap[tid]) {
            s->err = 2;
            return 1;
        }
        s->starts[base + j] = now;
        s->fins[base + j] = now + e;
        if (nb)
            s->casc[base + j] = nb;
    }
    if (tb->track) {
        s->cur_batch[u] = nb;
        s->zrun[u] = (e == 0);
    }
    s->running[u] = tid;
    s->seq += 1;
    s->fin_time[u] = now + e;
    s->fin_seq[u] = s->seq;
    return 0;
}

/* One replication's event loop — a line-for-line port of the scalar
 * ``_schedule``: releases win ties, multi-event instants gather every
 * same-instant release and finish before dispatching idle units, and
 * sibling finishes at a finish instant all complete before any
 * replacement dispatch (zero-time replacements cascade with depth
 * cur_batch + 1, replayed by the fast path's side table). */
static void run_sim(Sim *s, const int64_t *rt, const int32_t *rd,
                    int32_t *touched, int32_t *fin2)
{
    const Tables *tb = s->tb;
    const int64_t duration = tb->duration;
    int64_t ri = 0;
    int64_t u, i;

    for (u = 0; u < tb->n_units; u++) {
        s->ready[u] = 0;
        s->running[u] = -1;
        s->zrun[u] = 0;
        s->cur_batch[u] = 0;
    }
    for (i = 0; i < tb->n; i++)
        s->pend[i] = 0;
    s->seq = 0;
    s->cursor = 0;
    s->err = 0;
    s->fin_head = tb->sentinel;
    s->fin_head_u = -1;

    for (;;) {
        int64_t now = rt[ri];
        if (now <= s->fin_head) {
            /* Release event (at equal times releases go first). */
            int32_t tid;
            if (now > duration)
                break;
            tid = rd[ri];
            ri += 1;
            u = tb->unit_of[tid];
            if (rt[ri] == now || s->fin_head == now) {
                /* Multi-event instant: gather every same-instant
                 * release and finish, then dispatch idle units. */
                int64_t tn = 0;
                s->pend[tid] += 1;
                s->ready[u] |= tb->bit_of[tid];
                touched[tn++] = (int32_t)u;
                while (rt[ri] == now) {
                    int32_t t2 = rd[ri];
                    int64_t u2 = tb->unit_of[t2];
                    ri += 1;
                    s->pend[t2] += 1;
                    s->ready[u2] |= tb->bit_of[t2];
                    touched[tn++] = (int32_t)u2;
                }
                while (s->fin_head == now) {
                    int64_t u2 = s->fin_head_u;
                    if (check_deadline(s, u2, now))
                        return;
                    s->running[u2] = -1;
                    rehead(s);
                    touched[tn++] = (int32_t)u2;
                }
                for (i = 0; i < tn; i++) {
                    int64_t u2 = touched[i];
                    if (s->running[u2] < 0 && s->ready[u2]) {
                        int32_t t2 = pop_ready(s, u2);
                        if (dispatch(s, u2, t2, now, 0))
                            return;
                        rehead(s);
                    }
                }
            } else if (s->running[u] < 0) {
                /* Idle unit, single release: dispatch directly. */
                if (dispatch(s, u, tid, now, 0))
                    return;
                rehead(s);
            } else {
                /* Busy unit: queue and move on. */
                s->pend[tid] += 1;
                s->ready[u] |= tb->bit_of[tid];
            }
        } else {
            /* Finish event. */
            int32_t nb = 0;
            now = s->fin_head;
            if (now > duration)
                break;
            u = s->fin_head_u;
            if (check_deadline(s, u, now))
                return;
            if (tb->track)
                nb = s->zrun[u] ? s->cur_batch[u] + 1 : 0;
            if (s->ready[u]) {
                int32_t t2 = pop_ready(s, u);
                if (dispatch(s, u, t2, now, nb))
                    return;
                rehead(s);
            } else {
                s->running[u] = -1;
                rehead(s);
            }
            if (s->fin_head == now) {
                /* Sibling finishes at the same instant: complete
                 * them all before dispatching any replacement. */
                int64_t fn = 0;
                while (s->fin_head == now) {
                    int64_t u2 = s->fin_head_u;
                    if (check_deadline(s, u2, now))
                        return;
                    s->running[u2] = -1;
                    rehead(s);
                    fin2[fn++] = (int32_t)u2;
                }
                for (i = 0; i < fn; i++) {
                    int64_t u2 = fin2[i];
                    if (s->running[u2] < 0 && s->ready[u2]) {
                        int32_t nb2 = 0;
                        int32_t t2;
                        if (tb->track)
                            nb2 = s->zrun[u2] ? s->cur_batch[u2] + 1 : 0;
                        t2 = pop_ready(s, u2);
                        if (dispatch(s, u2, t2, now, nb2))
                            return;
                        rehead(s);
                    }
                }
            }
        }
    }
}

int64_t repro_ckernel_abi(void)
{
    return REPRO_CKERNEL_ABI;
}

int64_t columnar_advance(
    int64_t sims, int64_t n, int64_t n_units,
    int64_t stream_w,            /* release-row width incl. sentinel */
    const int64_t *rel_times,    /* sims x stream_w */
    const int32_t *rel_tids,     /* sims x stream_w */
    int64_t duration,
    const int64_t *bcet, const int64_t *wcet, const int64_t *span,
    const int64_t *periods,
    const int32_t *unit_of, const uint64_t *bit_of,
    const int32_t *rank_tid, int64_t max_ranks,
    int64_t policy_mode, int64_t let_mode, int64_t track,
    const double *variates, int64_t n_draws, /* sims x n_draws */
    const int64_t *offsets,      /* sims x n */
    const int64_t *dl_tab,       /* sims x dl_slots (LET tables) */
    const int64_t *dl_base,      /* n, -1 for non-compute tasks */
    int64_t dl_slots,            /* 0 = arithmetic deadlines */
    const int64_t *job_base,     /* n */
    const int64_t *job_cap,      /* n */
    int64_t slots,
    int64_t *starts_out,         /* sims x slots, prefilled by caller */
    int64_t *fins_out,           /* sims x slots, prefilled by caller */
    int32_t *casc_out,           /* sims x slots, zeroed by caller */
    int64_t *rec_out,            /* sims x n, zeroed by caller */
    int64_t *viol_out)           /* sims x 4, -1-filled by caller */
{
    Tables tb;
    Sim s;
    int64_t i;
    int64_t rc = 0;
    uint64_t *ready = malloc((size_t)n_units * sizeof(uint64_t));
    int32_t *running = malloc((size_t)n_units * sizeof(int32_t));
    int64_t *fin_time = malloc((size_t)n_units * sizeof(int64_t));
    int64_t *fin_seq = malloc((size_t)n_units * sizeof(int64_t));
    uint8_t *zrun = malloc((size_t)n_units * sizeof(uint8_t));
    int32_t *cur_batch = malloc((size_t)n_units * sizeof(int32_t));
    int64_t *pend = malloc((size_t)n * sizeof(int64_t));
    int32_t *touched = malloc((size_t)(n + n_units) * sizeof(int32_t));
    int32_t *fin2 = malloc((size_t)n_units * sizeof(int32_t));

    if (!ready || !running || !fin_time || !fin_seq || !zrun ||
        !cur_batch || !pend || !touched || !fin2) {
        rc = -1;
        goto done;
    }

    tb.n = n;
    tb.n_units = n_units;
    tb.duration = duration;
    tb.sentinel = duration + 1;
    tb.policy_mode = policy_mode;
    tb.let_mode = let_mode;
    tb.track = track;
    tb.max_ranks = max_ranks;
    tb.n_draws = n_draws;
    tb.slots = slots;
    tb.bcet = bcet;
    tb.wcet = wcet;
    tb.span = span;
    tb.periods = periods;
    tb.unit_of = unit_of;
    tb.bit_of = bit_of;
    tb.rank_tid = rank_tid;
    tb.job_base = job_base;
    tb.job_cap = job_cap;
    tb.dl_base = dl_base;
    tb.dl_slots = dl_slots;

    s.tb = &tb;
    s.ready = ready;
    s.running = running;
    s.fin_time = fin_time;
    s.fin_seq = fin_seq;
    s.zrun = zrun;
    s.cur_batch = cur_batch;
    s.pend = pend;

    for (i = 0; i < sims; i++) {
        s.offs = offsets + i * n;
        s.dl = dl_tab + i * dl_slots;
        s.var = variates + i * n_draws;
        s.starts = starts_out + i * slots;
        s.fins = fins_out + i * slots;
        s.casc = casc_out + i * slots;
        s.rec = rec_out + i * n;
        s.viol = viol_out + i * 4;
        run_sim(&s, rel_times + i * stream_w, rel_tids + i * stream_w,
                touched, fin2);
        if (s.err == 2) {
            rc = -(i + 1);
            goto done;
        }
        /* err == 1 (LET violation) is recorded in viol_out; later
         * sims are independent, so keep advancing — the caller
         * raises for the lowest violating index. */
    }

done:
    free(ready);
    free(running);
    free(fin_time);
    free(fin_seq);
    free(zrun);
    free(cur_batch);
    free(pend);
    free(touched);
    free(fin2);
    return rc;
}
